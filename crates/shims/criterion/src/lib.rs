//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! median-of-samples wall-clock harness that prints one line per bench.
//!
//! Environment knobs:
//! * `MQ_BENCH_SAMPLES` overrides the per-bench sample count (handy for
//!   CI smoke runs: `MQ_BENCH_SAMPLES=1`).

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = env_samples().unwrap_or(self.sample_size);
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("MQ_BENCH_SAMPLES").ok()?.parse().ok()
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id);
        self
    }

    /// Benchmark a closure against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.label);
        self
    }

    /// Finish the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handle passed to bench closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording wall-clock per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warmup call, then `sample_size` timed calls.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("  {group}/{id}: no samples");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(f64::total_cmp);
        let median = s[s.len() / 2];
        eprintln!(
            "  {group}/{id}: median {:.6} s over {} samples",
            median,
            s.len()
        );
    }
}

/// Define a bench entry point from named settings, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim_smoke");
        let mut runs = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(runs >= 2, "bench closure should have run");
    }
}
