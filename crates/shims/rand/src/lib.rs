//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the API subset the workspace uses: `StdRng` seeded
//! via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen_range`, `gen_bool`, `gen`), and [`SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded by splitmix64 — high quality and
//! deterministic, but **not** bit-compatible with the real `rand` crate.
//! Nothing in the workspace depends on the exact stream, only on
//! determinism for a fixed seed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructors (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256** state.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the full state.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A process-local generator for `thread_rng()` (deterministic per call
/// site is not required; seeded from the address of a stack local).
pub struct ThreadRng(StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Return a non-deterministically seeded generator.
pub fn thread_rng() -> ThreadRng {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    ThreadRng(StdRng::seed_from_u64(t))
}

/// Types samplable from a range, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draw a value in the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                let mut wide = rng.next_u64() as u128;
                if span > u64::MAX as u128 {
                    wide = (wide << 64) | rng.next_u64() as u128;
                }
                self.start + (wide % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                // Wrapping: the full-u128 domain has span 2^128 ≡ 0.
                let span = ((hi - lo) as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain: any draw is valid.
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                }
                let mut wide = rng.next_u64() as u128;
                if span > u64::MAX as u128 {
                    wide = (wide << 64) | rng.next_u64() as u128;
                }
                lo + (wide % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let wide = rng.next_u64() as u128;
                (self.start as i128 + (wide % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let wide = rng.next_u64() as u128;
                (lo as i128 + (wide % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize, u128);
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a value.
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut (impl RngCore + ?Sized)) -> u64 {
        rng.next_u64()
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Draw a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample_standard(self) < p
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// One-stop imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng, SliceRandom, StdRng, ThreadRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(1u128..=(1u128 << 40));
            assert!((1..=1u128 << 40).contains(&u));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
