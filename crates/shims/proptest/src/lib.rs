//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range / tuple / collection / regex-string strategies, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed; there is **no shrinking** — a failing case panics with
//! the case number so it can be replayed by rerunning the test.

use rand::prelude::*;

pub mod strategy;
pub use strategy::Strategy;

pub mod collection;
pub mod regex;

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// Strategy yielding arbitrary booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Arbitrary boolean.
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// Shorthand module mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// The RNG handed to strategies.
pub struct TestRng {
    pub(crate) inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for (test name, case index).
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n.max(1))
    }
}

/// Configuration block (subset: number of cases).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::bool;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; panics with the offending expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            panic!(
                "prop_assert_eq failed: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                left,
                right
            );
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            panic!(
                "prop_assert_ne failed: {} == {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            );
        }
    }};
}

/// The property-test macro. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// docs
///     #[test]
///     fn my_prop(x in 0i64..5, v in prop::collection::vec(0u32..4, 0..8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let run = || -> () { $body };
                run();
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}
