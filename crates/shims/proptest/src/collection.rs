//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `prop::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.start + rng.below(self.size.end - self.size.start);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `prop::collection::btree_set(element, size_range)`.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.start + rng.below(self.size.end - self.size.start);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; retry a bounded number of times so a
        // small element domain cannot loop forever.
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::for_case("vec_sizes_in_range", 0);
        let s = vec(0u32..10, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_respects_bounds() {
        let mut rng = TestRng::for_case("btree_set_respects_bounds", 0);
        let s = btree_set(0u32..6, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn nested_collections() {
        let mut rng = TestRng::for_case("nested_collections", 0);
        let s = vec(btree_set(0u32..6, 1..4), 1..6);
        let v = s.generate(&mut rng);
        assert!((1..6).contains(&v.len()));
    }
}
