//! A tiny regex *generator* (not matcher) for string strategies.
//!
//! Supports the subset used by this workspace's properties: literal
//! characters, `.` (any printable ASCII), character classes `[...]` with
//! ranges and `\`-escapes, groups `(a|b|...)` with alternation, and the
//! quantifiers `{m,n}`, `{m}`, `?`, `*`, `+` (`*`/`+` are capped at 8
//! repetitions). Escapes `\n`, `\t`, `\\` are understood both inside and
//! outside classes.

use crate::TestRng;

#[derive(Clone, Debug)]
enum Node {
    Lit(char),
    AnyChar,
    Class(Vec<(char, char)>),
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, usize, usize),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
        }
    }

    /// Parse a sequence until end of input or a stop character (`|`, `)`).
    fn sequence(&mut self) -> Vec<Node> {
        let mut out = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom();
            out.push(self.quantified(atom));
        }
        out
    }

    fn atom(&mut self) -> Node {
        match self.chars.next().expect("atom") {
            '.' => Node::AnyChar,
            '[' => self.class(),
            '(' => {
                let mut alts = vec![self.sequence()];
                while self.chars.peek() == Some(&'|') {
                    self.chars.next();
                    alts.push(self.sequence());
                }
                assert_eq!(self.chars.next(), Some(')'), "unclosed group");
                Node::Group(alts)
            }
            '\\' => Node::Lit(escape(self.chars.next().expect("escape"))),
            c => Node::Lit(c),
        }
    }

    fn class(&mut self) -> Node {
        let mut ranges = Vec::new();
        loop {
            let c = self.chars.next().expect("unclosed class");
            if c == ']' {
                break;
            }
            let lo = if c == '\\' {
                escape(self.chars.next().expect("class escape"))
            } else {
                c
            };
            // Range `lo-hi` (a trailing `-` is a literal).
            if self.chars.peek() == Some(&'-') {
                let mut look = self.chars.clone();
                look.next();
                if look.peek().is_some() && look.peek() != Some(&']') {
                    self.chars.next(); // consume '-'
                    let h = self.chars.next().expect("range end");
                    let hi = if h == '\\' {
                        escape(self.chars.next().expect("range escape"))
                    } else {
                        h
                    };
                    ranges.push((lo, hi));
                    continue;
                }
            }
            ranges.push((lo, lo));
        }
        assert!(!ranges.is_empty(), "empty character class");
        Node::Class(ranges)
    }

    fn quantified(&mut self, node: Node) -> Node {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut lo = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                    lo.push(self.chars.next().unwrap());
                }
                let lo: usize = lo.parse().expect("repeat lower bound");
                let hi = if self.chars.peek() == Some(&',') {
                    self.chars.next();
                    let mut hi = String::new();
                    while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                        hi.push(self.chars.next().unwrap());
                    }
                    hi.parse().unwrap_or(lo + 8)
                } else {
                    lo
                };
                assert_eq!(self.chars.next(), Some('}'), "unclosed repetition");
                Node::Repeat(Box::new(node), lo, hi)
            }
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(node), 0, 1)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(node), 0, 8)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(node), 1, 8)
            }
            _ => node,
        }
    }
}

fn escape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::AnyChar => {
            // Printable ASCII, like proptest's `.` restricted to one byte.
            out.push((32 + rng.below(95)) as u8 as char);
        }
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len())];
            let span = (hi as u32).saturating_sub(lo as u32) + 1;
            let c = char::from_u32(lo as u32 + rng.below(span as usize) as u32)
                .expect("class range stays in valid chars");
            out.push(c);
        }
        Node::Group(alts) => {
            let alt = &alts[rng.below(alts.len())];
            for n in alt {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

/// Sample one string matching `pattern`.
pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let seq = parser.sequence();
    assert!(
        parser.chars.next().is_none(),
        "unsupported regex tail in {pattern:?}"
    );
    let mut out = String::new();
    for node in &seq {
        emit(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("regex", 1)
    }

    #[test]
    fn literal_and_dot() {
        let mut r = rng();
        let s = sample("ab.", &mut r);
        assert_eq!(s.len(), 3);
        assert!(s.starts_with("ab"));
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample("[a-zA-Z0-9_,\"\\- ]{0,30}", &mut r);
            assert!(s.len() <= 30);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_,\"- ".contains(c)));
        }
    }

    #[test]
    fn group_alternation() {
        let mut r = rng();
        let mut saw_newline = false;
        for _ in 0..300 {
            let s = sample("(.|\\n){0,120}", &mut r);
            assert!(s.chars().count() <= 120);
            saw_newline |= s.contains('\n');
        }
        assert!(saw_newline, "alternation should sometimes pick \\n");
    }

    #[test]
    fn bounded_repeats() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample("[A-Za-z][A-Za-z0-9_']{0,5}", &mut r);
            assert!(!s.is_empty() && s.len() <= 6);
        }
    }
}
