//! The [`Strategy`] trait and implementations for ranges, tuples, and
//! regex string literals.

use crate::TestRng;
use rand::prelude::*;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A string literal is a regex strategy (as in real proptest).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::sample(self, rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::for_case("ranges_and_tuples", 0);
        let s = (0i64..5, 0i64..5);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((0..5).contains(&a) && (0..5).contains(&b));
        }
    }

    #[test]
    fn str_strategy_is_regex() {
        let mut rng = TestRng::for_case("str_strategy_is_regex", 0);
        let s: &str = "[a-c]{2,4}";
        for _ in 0..50 {
            let v = Strategy::generate(s, &mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
