//! Offline shim for the `rayon` crate.
//!
//! Implements the subset the workspace uses: `Vec::into_par_iter()` and
//! slice `par_iter()` supporting `.map(f).collect::<Vec<_>>()`, the
//! [`scope`]/[`Scope::spawn`] task primitive, plus
//! [`current_num_threads`]. Iterator work is distributed over
//! `std::thread::scope` threads in contiguous chunks, and results are
//! concatenated in chunk order, so `collect` preserves input order
//! exactly like real rayon's indexed parallel iterators. Scoped tasks go
//! onto a shared deque drained by worker threads, so callers can build
//! work-stealing schedulers that behave identically under the shim and
//! real rayon.
//!
//! Nested parallelism respects the `MQ_THREADS` budget: inside a scope
//! worker (or a parallel-iterator chunk thread) [`current_num_threads`]
//! reports `1`, so nested parallel calls run inline instead of
//! multiplying the configured thread count.
//!
//! On a single-core machine (or with `MQ_THREADS=1`) everything runs
//! inline on the calling thread.

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Runtime override of the worker count (0 = none). Set via
/// [`set_thread_override`]; exists so tests can force a multi-worker
/// pool without `std::env::set_var` (which is unsound under concurrent
/// env reads on glibc).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force [`current_num_threads`] to return `n` (or `None` to restore
/// detection). Process-global; intended for tests and harnesses.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

thread_local! {
    /// Set while the current thread is a scope worker or a parallel-
    /// iterator chunk thread. Nested [`current_num_threads`] calls then
    /// report `1`: the `MQ_THREADS` budget is already fully committed to
    /// the enclosing parallel region, so nested parallel calls must run
    /// inline rather than spawn `MQ_THREADS` threads *each*.
    static IN_PARALLEL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with the current thread marked as a parallel worker.
fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_PARALLEL_WORKER.with(|c| {
        let prev = c.replace(true);
        let out = f();
        c.set(prev);
        out
    })
}

/// Number of worker threads the pool would use. Resolution order: `1`
/// inside a nested scope/iterator worker (the configured budget is
/// already spent — see [`IN_PARALLEL_WORKER`]), then the
/// [`set_thread_override`] value, then `MQ_THREADS` (read once), then
/// the detected hardware parallelism (cached — probing
/// `available_parallelism` opens procfs on Linux, far too slow for a
/// per-operation check).
pub fn current_num_threads() -> usize {
    if IN_PARALLEL_WORKER.with(Cell::get) {
        return 1;
    }
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if let Some(v) = std::env::var_os("MQ_THREADS") {
            if let Ok(n) = v.into_string().unwrap_or_default().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// An ordered parallel iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> IntoParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Evaluate the map, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

fn run_ordered<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    // Split into owned chunks, map each on its own scoped thread, then
    // concatenate in chunk order (preserves input order).
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        chunks.push(items);
        items = rest;
    }
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || as_worker(|| c.into_iter().map(f).collect::<Vec<R>>())))
            .collect();
        for h in handles {
            results.push(h.join().expect("worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A scoped task queue, mirroring `rayon::Scope`: tasks spawned with
/// [`Scope::spawn`] may borrow from outside the scope (`'scope`) and may
/// themselves spawn further tasks.
///
/// The shim implementation is a shared deque (`Mutex<VecDeque>`): worker
/// threads (at most [`current_num_threads`]) pop tasks front-first and
/// run them to completion, stealing the next task as soon as they finish
/// — dynamic load balancing equivalent to rayon's work-stealing for the
/// coarse task sets this workspace schedules. Unlike real rayon, tasks
/// do not start until the closure passed to [`scope`] returns; [`scope`]
/// still only returns after every task (including nested spawns) has
/// completed, which is the guarantee callers rely on.
pub struct Scope<'scope> {
    queue: Mutex<VecDeque<ScopeTask<'scope>>>,
    /// Tasks spawned but not yet finished (queued or running).
    active: AtomicUsize,
    /// Signaled when a task finishes or a new task is enqueued, so idle
    /// workers park instead of busy-spinning while the slowest task runs.
    idle: Condvar,
}

/// A queued scope task (boxed so heterogeneous closures share the deque).
type ScopeTask<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// Panic-safe task accounting: decrements `active` and wakes idle
/// workers when dropped — **including during unwinding**, so a panicking
/// task releases its siblings (they exit, `std::thread::scope` joins,
/// and the panic propagates) instead of hanging the process.
struct TaskDone<'a, 'scope>(&'a Scope<'scope>);

impl Drop for TaskDone<'_, '_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
        self.0.idle.notify_all();
    }
}

impl<'scope> Scope<'scope> {
    /// Enqueue a task. The task receives the scope so it can spawn more.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.active.fetch_add(1, Ordering::SeqCst);
        self.queue
            .lock()
            .expect("scope queue poisoned")
            .push_back(Box::new(f));
        self.idle.notify_all();
    }

    /// Pop-and-run tasks until the deque is empty and no task is still
    /// running (a running task may spawn more). Idle workers park on the
    /// condvar rather than spinning; a short timeout guards against
    /// missed wakeups.
    fn drain(&self) {
        loop {
            let task = self.queue.lock().expect("scope queue poisoned").pop_front();
            match task {
                Some(t) => {
                    let done = TaskDone(self);
                    t(self);
                    drop(done);
                }
                None => {
                    let queue = self.queue.lock().expect("scope queue poisoned");
                    if self.active.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    if queue.is_empty() {
                        let _ = self
                            .idle
                            .wait_timeout(queue, std::time::Duration::from_millis(1))
                            .expect("scope queue poisoned");
                    }
                }
            }
        }
    }
}

/// Create a task scope, run `op` (which spawns tasks), then execute every
/// spawned task on up to [`current_num_threads`] worker threads and wait
/// for all of them. Returns `op`'s result. With one thread (or none
/// spawned) the tasks run inline on the calling thread.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let sc = Scope {
        queue: Mutex::new(VecDeque::new()),
        active: AtomicUsize::new(0),
        idle: Condvar::new(),
    };
    let out = op(&sc);
    let spawned = sc.active.load(Ordering::SeqCst);
    if spawned == 0 {
        return out;
    }
    let workers = current_num_threads().min(spawned);
    if workers <= 1 {
        as_worker(|| sc.drain());
    } else {
        std::thread::scope(|ts| {
            for _ in 0..workers {
                ts.spawn(|| as_worker(|| sc.drain()));
            }
        });
    }
    out
}

/// Entry points, mirroring `rayon::prelude`.
pub mod prelude {
    use super::*;

    /// Conversion into an ordered parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Start parallel iteration over owned items.
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    /// Borrowing parallel iteration for slices.
    pub trait ParallelSlice<T: Sync> {
        /// Iterate references in parallel.
        fn par_iter(&self) -> IntoParIter<&T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> IntoParIter<&T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 2);
    }

    #[test]
    fn scope_runs_all_tasks_and_nested_spawns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        crate::set_thread_override(Some(3));
        let hits = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..10 {
                s.spawn(|s2| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    // Nested spawn from inside a running task.
                    s2.spawn(|_| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 20);
        crate::set_thread_override(None);
    }

    #[test]
    fn panicking_task_propagates_instead_of_hanging() {
        crate::set_thread_override(Some(2));
        let result = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                s.spawn(|_| panic!("task failed"));
                s.spawn(|_| {}); // sibling must not spin forever
            });
        });
        assert!(result.is_err(), "the task panic must reach the caller");
        crate::set_thread_override(None);
    }

    #[test]
    fn nested_workers_report_one_thread() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        crate::set_thread_override(Some(4));
        assert_eq!(crate::current_num_threads(), 4);
        let inside = AtomicUsize::new(0);
        crate::scope(|s| {
            s.spawn(|_| {
                // The budget is committed to this scope: nested parallel
                // calls must run inline.
                inside.store(crate::current_num_threads(), Ordering::SeqCst);
            });
        });
        assert_eq!(inside.load(Ordering::SeqCst), 1);
        assert_eq!(crate::current_num_threads(), 4, "flag is scope-local");
        crate::set_thread_override(None);
    }
}
