//! Offline shim for the `rayon` crate.
//!
//! Implements the subset the workspace uses: `Vec::into_par_iter()` and
//! slice `par_iter()` supporting `.map(f).collect::<Vec<_>>()`, plus
//! [`current_num_threads`]. Work is distributed over `std::thread::scope`
//! threads in contiguous chunks, and results are concatenated in chunk
//! order, so `collect` preserves input order exactly like real rayon's
//! indexed parallel iterators.
//!
//! On a single-core machine (or with `MQ_THREADS=1`) everything runs
//! inline on the calling thread.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runtime override of the worker count (0 = none). Set via
/// [`set_thread_override`]; exists so tests can force a multi-worker
/// pool without `std::env::set_var` (which is unsound under concurrent
/// env reads on glibc).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force [`current_num_threads`] to return `n` (or `None` to restore
/// detection). Process-global; intended for tests and harnesses.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Number of worker threads the pool would use. Resolution order: the
/// [`set_thread_override`] value, then `MQ_THREADS` (read once), then
/// the detected hardware parallelism (cached — probing
/// `available_parallelism` opens procfs on Linux, far too slow for a
/// per-operation check).
pub fn current_num_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if let Some(v) = std::env::var_os("MQ_THREADS") {
            if let Ok(n) = v.into_string().unwrap_or_default().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// An ordered parallel iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> IntoParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Evaluate the map, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

fn run_ordered<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    // Split into owned chunks, map each on its own scoped thread, then
    // concatenate in chunk order (preserves input order).
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        chunks.push(items);
        items = rest;
    }
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Entry points, mirroring `rayon::prelude`.
pub mod prelude {
    use super::*;

    /// Conversion into an ordered parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Start parallel iteration over owned items.
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    /// Borrowing parallel iteration for slices.
    pub trait ParallelSlice<T: Sync> {
        /// Iterate references in parallel.
        fn par_iter(&self) -> IntoParIter<&T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> IntoParIter<&T> {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 2);
    }
}
