//! Arena-backed frozen row storage: contiguous values, no per-row boxes.
//!
//! [`crate::FrozenRows`] freezes a `Vec<T>` of already-materialized rows;
//! when `T` is a boxed tuple that still means one heap allocation per
//! row, paid again every time a database is cloned or re-frozen. An
//! [`ArenaRows`] instead lays every row's values out back to back in
//! **one** contiguous allocation (the arena) and hands rows back as
//! slices into it: freezing `n` rows costs O(1) allocations instead of
//! O(n), row access costs a bounds check, and iteration is a cache-
//! friendly linear walk.
//!
//! Like `FrozenRows`, the arena sits behind an `Arc`: handle clones are
//! O(1) pointer copies, the storage never mutates once frozen, and the
//! whole value is `Send + Sync`. The service catalog freezes each
//! relation of a registered database into an `ArenaRows<Value>` — the
//! snapshot storage its copy-on-write updates extend and its protocol
//! queries read — without re-boxing a single tuple.

use std::fmt;
use std::sync::Arc;

/// Immutable row storage with all values in one contiguous allocation.
///
/// Rows all share one fixed `arity`; row `i` is the value slice
/// `values[i * arity .. (i + 1) * arity]`. Handle clones are O(1) and
/// share the arena.
pub struct ArenaRows<V> {
    values: Arc<Vec<V>>,
    arity: usize,
    rows: usize,
}

impl<V: Clone> ArenaRows<V> {
    /// Freeze `rows` (each of length `arity`) into one contiguous arena.
    ///
    /// Allocates O(1) times regardless of the row count (the arena plus
    /// its `Arc` header), versus one box per row for `Vec<Box<[V]>>`
    /// storage — pinned down by the allocation-count test in
    /// `tests/no_alloc_kernels.rs`.
    ///
    /// # Panics
    /// Panics if any row's length differs from `arity`.
    pub fn from_rows<R: AsRef<[V]>>(arity: usize, rows: &[R]) -> Self {
        let mut values = Vec::with_capacity(arity * rows.len());
        for row in rows {
            let row = row.as_ref();
            assert_eq!(
                row.len(),
                arity,
                "arena row length {} does not match arity {arity}",
                row.len()
            );
            values.extend_from_slice(row);
        }
        ArenaRows {
            values: Arc::new(values),
            arity,
            rows: rows.len(),
        }
    }

    /// A new arena holding this one's rows followed by `more` — the
    /// append path of a copy-on-write update. The existing arena is
    /// copied with one contiguous `extend_from_slice`; handles to it are
    /// untouched (freezing is immutable).
    ///
    /// # Panics
    /// Panics if any new row's length differs from the arena's arity.
    pub fn extended<R: AsRef<[V]>>(&self, more: &[R]) -> Self {
        let mut values = Vec::with_capacity(self.values.len() + self.arity * more.len());
        values.extend_from_slice(&self.values);
        for row in more {
            let row = row.as_ref();
            assert_eq!(
                row.len(),
                self.arity,
                "arena row length {} does not match arity {}",
                row.len(),
                self.arity
            );
            values.extend_from_slice(row);
        }
        ArenaRows {
            values: Arc::new(values),
            arity: self.arity,
            rows: self.rows + more.len(),
        }
    }
}

impl<V> ArenaRows<V> {
    /// An empty arena of the given arity.
    pub fn empty(arity: usize) -> Self {
        ArenaRows {
            values: Arc::new(Vec::new()),
            arity,
            rows: 0,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the arena holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The fixed row arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Row `i` as a slice into the arena (no allocation).
    #[inline]
    pub fn row(&self, i: usize) -> &[V] {
        debug_assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        &self.values[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate rows in order, as slices into the arena.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[V]> {
        (0..self.rows).map(|i| self.row(i))
    }

    /// The whole arena as one flat value slice.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Whether two handles share the same arena storage.
    #[inline]
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.values, &b.values)
    }
}

impl<V> Clone for ArenaRows<V> {
    #[inline]
    fn clone(&self) -> Self {
        ArenaRows {
            values: Arc::clone(&self.values),
            arity: self.arity,
            rows: self.rows,
        }
    }
}

impl<V: PartialEq> PartialEq for ArenaRows<V> {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.rows == other.rows
            && (Self::ptr_eq(self, other) || *self.values == *other.values)
    }
}

impl<V: Eq> Eq for ArenaRows<V> {}

impl<V: fmt::Debug> fmt::Debug for ArenaRows<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.rows()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(rows: &[&[i32]]) -> Vec<Box<[i32]>> {
        rows.iter().map(|r| r.to_vec().into_boxed_slice()).collect()
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = boxed(&[&[1, 2], &[3, 4], &[5, 6]]);
        let a = ArenaRows::from_rows(2, &rows);
        assert_eq!(a.len(), 3);
        assert_eq!(a.arity(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.row(1), &[3, 4]);
        assert_eq!(a.values(), &[1, 2, 3, 4, 5, 6]);
        let collected: Vec<&[i32]> = a.rows().collect();
        assert_eq!(collected, vec![&[1, 2][..], &[3, 4], &[5, 6]]);
    }

    #[test]
    fn clone_shares_storage_and_extended_does_not() {
        let a = ArenaRows::from_rows(2, &boxed(&[&[1, 2]]));
        let b = a.clone();
        assert!(ArenaRows::ptr_eq(&a, &b));
        assert_eq!(a, b);
        let c = a.extended(&boxed(&[&[3, 4]]));
        assert!(!ArenaRows::ptr_eq(&a, &c));
        assert_eq!(c.len(), 2);
        assert_eq!(c.row(0), &[1, 2]);
        assert_eq!(c.row(1), &[3, 4]);
        // The original handle is untouched.
        assert_eq!(a.len(), 1);
        // Content equality without shared storage.
        let d = ArenaRows::from_rows(2, &boxed(&[&[1, 2], &[3, 4]]));
        assert_eq!(c, d);
        assert_ne!(a, d);
    }

    #[test]
    fn zero_arity_rows_are_well_defined() {
        let rows: Vec<Box<[i32]>> = vec![Box::new([]), Box::new([])];
        let a = ArenaRows::from_rows(0, &rows);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(1), &[] as &[i32]);
        assert_eq!(a.rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match arity")]
    fn arity_mismatch_panics() {
        let _ = ArenaRows::from_rows(2, &boxed(&[&[1, 2, 3]]));
    }

    #[test]
    fn arena_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArenaRows<i64>>();
    }
}
