//! The FxHash-style hasher shared by the whole storage stack.
//!
//! Moved here from `mq_relation::hashjoin` (which re-exports it for
//! compatibility): the join kernels, the per-column-set index caches and
//! the sharded memos all hash with this one deterministic function, so a
//! key hashed by any layer agrees with every other layer.

use std::hash::{BuildHasher, Hasher};

/// An FxHash-style hasher: fast, deterministic within a process, and good
/// enough for hash-join buckets and memo shards (not DoS-resistant; never
/// exposed to untrusted keys).
#[derive(Clone, Default)]
pub struct FxHasher {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }

    /// Resume hashing from a previously captured [`state`](Self::state).
    ///
    /// The pre-avalanche state is foldable: feeding values one column at
    /// a time through save/resume produces exactly the hash of feeding
    /// them row-at-a-time. The batch key-hashing kernels keep one saved
    /// state per row and fold each key column across the whole batch.
    #[inline]
    pub fn from_state(state: u64) -> Self {
        FxHasher { state }
    }

    /// The raw pre-avalanche state, for [`from_state`](Self::from_state).
    /// Not a final hash — call [`finish`](Hasher::finish) for that.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits are usable as table indexes.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.mix(i as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s, for `HashMap`s that must be
/// fast on the tiny fixed-width keys the engine uses (column sets, plan
/// node ids, interned atom keys).
#[derive(Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn deterministic_and_avalanched() {
        let h1 = {
            let mut h = FxHasher::default();
            42u64.hash(&mut h);
            h.finish()
        };
        let h2 = {
            let mut h = FxHasher::default();
            42u64.hash(&mut h);
            h.finish()
        };
        assert_eq!(h1, h2);
        let h3 = {
            let mut h = FxHasher::default();
            43u64.hash(&mut h);
            h.finish()
        };
        assert_ne!(h1, h3);
    }

    #[test]
    fn state_save_resume_matches_one_shot() {
        let one_shot = {
            let mut h = FxHasher::default();
            1u64.hash(&mut h);
            2u64.hash(&mut h);
            3u64.hash(&mut h);
            h.finish()
        };
        let folded = {
            let mut h = FxHasher::default();
            1u64.hash(&mut h);
            let s = h.state();
            let mut h = FxHasher::from_state(s);
            2u64.hash(&mut h);
            3u64.hash(&mut h);
            h.finish()
        };
        assert_eq!(one_shot, folded);
    }

    #[test]
    fn build_hasher_usable_in_hashmap() {
        let mut m = std::collections::HashMap::with_hasher(FxBuildHasher);
        m.insert(vec![1usize, 2], "a");
        assert_eq!(m.get([1usize, 2].as_slice()), Some(&"a"));
    }
}
