//! Poison-recovering lock acquisition — the one place in the workspace
//! allowed to touch [`PoisonError`].
//!
//! The concurrency layers (store, engine, service) share a discipline:
//! a panicking thread must never take the process down a second time by
//! poisoning a lock that other threads then `.unwrap()`. Every guarded
//! critical section in those layers is either (a) a pure read, (b) a
//! first-writer-wins publication, or (c) an idempotent counter/handle
//! update — in all three cases the protected data is consistent at every
//! intermediate step, so recovering the guard from a poisoned lock is
//! sound and strictly better than propagating a second panic.
//!
//! The `poison-safe-locks` rule of `mq-lint` enforces the discipline
//! statically: lock acquisitions in the concurrency layers must route
//! through these helpers — never a bare `.unwrap()`/`.expect()`, and
//! never ad-hoc inline recovery (which is unauditable at scale).

// lint:allow(poison-safe-locks): this module IS the poison-recovering helper
use std::sync::{
    Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Strip the poison wrapper off any [`LockResult`], returning the guard
/// (or owned value, for consuming acquisitions like `Mutex::into_inner`)
/// whether or not a previous holder panicked.
// lint:allow(poison-safe-locks): this function IS the poison-recovering helper
pub fn unpoison<T>(r: LockResult<T>) -> T {
    // lint:allow(poison-safe-locks): the one sanctioned into_inner call
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Acquire `m`, recovering from poisoning.
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    unpoison(m.lock())
}

/// Read-acquire `l`, recovering from poisoning.
pub fn read_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    unpoison(l.read())
}

/// Write-acquire `l`, recovering from poisoning.
pub fn write_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    unpoison(l.write())
}

/// Block on `cv` releasing `guard`, recovering the reacquired guard from
/// poisoning. Standard condvar discipline still applies: callers loop on
/// their predicate, so a spurious (or poisoned) wakeup is re-checked.
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    unpoison(cv.wait(guard))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Poison a mutex by panicking while holding it, then recover.
    #[test]
    fn lock_recover_survives_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7, "data is intact, guard recovered");
        *lock_recover(&m) = 8;
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn rwlock_recovery_roundtrip() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(read_recover(&l).len(), 3);
        write_recover(&l).push(4);
        assert_eq!(read_recover(&l).len(), 4);
    }

    #[test]
    fn wait_recover_sees_notifications() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = lock_recover(m);
            while !*ready {
                ready = wait_recover(cv, ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *lock_recover(m) = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn unpoison_handles_consuming_acquisitions() {
        let m = Mutex::new(5u8);
        assert_eq!(unpoison(m.into_inner()), 5);
    }
}
