//! # mq-store — the storage layer of the metaquery engine
//!
//! Everything above this crate computes over immutable tuple sets; this
//! crate owns *how those sets are stored and shared*. It has no
//! dependency on the relational model — every type is generic — which is
//! what lets it sit **below** `mq-relation` in the workspace while still
//! serving the whole stack:
//!
//! * [`FrozenRows`] — immutable, atomically reference-counted row
//!   storage with O(1) handle clones. `Send + Sync`, so values built on
//!   it (notably `mq_relation::Bindings`) can cross worker threads and
//!   live in cross-worker caches.
//! * [`ArenaRows`] — the arena-backed frozen variant: every row's values
//!   in **one** contiguous allocation, rows handed back as slices.
//!   Freezing `n` rows costs O(1) allocations instead of one box per
//!   row; the service catalog freezes database snapshots into it.
//! * [`ColumnarRows`] — the column-major frozen variant: one contiguous
//!   buffer **per column**, so keyed kernels (probing, grouped index
//!   builds, batch hashing) walk dense column slices instead of hopping
//!   through per-row boxes.
//! * [`ColIndexCache`] — a thread-safe, *hashed* per-column-set cache of
//!   derived indexes over one frozen row store (the replacement for the
//!   old linear-scan `Rc<RefCell<Vec<…>>>` cache in `mq_relation`).
//! * [`ShardedMemo`] — a sharded, lock-striped concurrent map with
//!   first-writer-wins publication and hit/miss counters: the substrate
//!   of the shared memo service that lets every `findRules` scheduler
//!   worker read and publish into **one** global memo instead of warming
//!   a private slice per worker.
//! * [`FxHasher`] / [`FxBuildHasher`] — the FxHash-style hasher the
//!   join kernels already used, now owned by the storage layer so row
//!   stores, index caches and memos hash with one deterministic
//!   function.
//! * [`lock`] — the poison-recovering lock helpers ([`lock_recover`],
//!   [`read_recover`], [`write_recover`], [`wait_recover`]) that every
//!   `Mutex`/`RwLock` acquisition in the concurrency layers must route
//!   through (enforced statically by `mq-lint`'s `poison-safe-locks`
//!   rule).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod columnar;
pub mod frozen;
pub mod fxhash;
pub mod lock;
pub mod memo;

pub use arena::ArenaRows;
pub use columnar::ColumnarRows;
pub use frozen::{ColIndexCache, FrozenRows};
pub use fxhash::{FxBuildHasher, FxHasher};
pub use lock::{lock_recover, read_recover, unpoison, wait_recover, write_recover};
pub use memo::{MemoStats, ShardedMemo};
