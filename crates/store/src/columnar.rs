//! Column-major frozen row storage: one contiguous buffer per column.
//!
//! [`ArenaRows`](crate::ArenaRows) made row storage contiguous; a
//! [`ColumnarRows`] turns the layout ninety degrees. All values of
//! column `c` sit back to back in **one** buffer, so a kernel that only
//! touches the key columns of a relation — hash-join probing, grouped
//! index builds, distinct counting — walks a dense `&[V]` slice instead
//! of hopping through per-row boxes, and batch operations (hash `n`
//! keys in one pass, compare a key column value-by-value) compile to
//! tight, vectorization-friendly loops.
//!
//! Like the other frozen stores, the column set sits behind an `Arc`:
//! handle clones are O(1), the storage never mutates once built, and
//! the whole value is `Send + Sync`. The relational layer keeps a
//! `ColumnarRows<Value>` mirror beside its row-major tuples and routes
//! the keyed kernels through it when the `MQ_COLUMNAR` knob is on.

use std::fmt;
use std::sync::Arc;

/// Immutable column-major row storage: `arity` columns, each one
/// contiguous buffer of `len` values. Handle clones are O(1) and share
/// the column buffers.
pub struct ColumnarRows<V> {
    cols: Arc<[Vec<V>]>,
    rows: usize,
}

impl<V: Clone> ColumnarRows<V> {
    /// Transpose `rows` (each of length `arity`) into column buffers.
    ///
    /// Allocates O(arity) times regardless of the row count — pinned
    /// down by the allocation-count test in `tests/no_alloc_kernels.rs`.
    ///
    /// # Panics
    /// Panics if any row's length differs from `arity`.
    pub fn from_rows<R: AsRef<[V]>>(arity: usize, rows: &[R]) -> Self {
        let mut cols: Vec<Vec<V>> = (0..arity).map(|_| Vec::with_capacity(rows.len())).collect();
        for row in rows {
            let row = row.as_ref();
            assert_eq!(
                row.len(),
                arity,
                "columnar row length {} does not match arity {arity}",
                row.len()
            );
            for (c, v) in row.iter().enumerate() {
                cols[c].push(v.clone());
            }
        }
        ColumnarRows {
            cols: cols.into(),
            rows: rows.len(),
        }
    }

    /// Materialize row `i` by appending its values to `out` (one clone
    /// per value, no allocation beyond `out`'s own growth).
    pub fn push_row_into(&self, i: usize, out: &mut Vec<V>) {
        debug_assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        for col in self.cols.iter() {
            out.push(col[i].clone());
        }
    }

    /// Materialize every row as a boxed tuple (the row-major view).
    pub fn to_rows(&self) -> Vec<Box<[V]>> {
        let mut buf = Vec::with_capacity(self.arity());
        (0..self.rows)
            .map(|i| {
                buf.clear();
                self.push_row_into(i, &mut buf);
                buf.as_slice().into()
            })
            .collect()
    }

    /// A new store holding only the rows whose indexes appear in `keep`,
    /// in `keep` order — the columnar gather behind semijoin/antijoin
    /// style filters. Allocates O(arity) buffers.
    ///
    /// # Panics
    /// Panics if any index in `keep` is out of range.
    pub fn gather(&self, keep: &[usize]) -> Self {
        let cols: Vec<Vec<V>> = self
            .cols
            .iter()
            .map(|col| keep.iter().map(|&i| col[i].clone()).collect())
            .collect();
        ColumnarRows {
            cols: cols.into(),
            rows: keep.len(),
        }
    }
}

impl<V> ColumnarRows<V> {
    /// An empty store of the given arity.
    pub fn empty(arity: usize) -> Self {
        let cols: Vec<Vec<V>> = (0..arity).map(|_| Vec::new()).collect();
        ColumnarRows {
            cols: cols.into(),
            rows: 0,
        }
    }

    /// Wrap already-built column buffers.
    ///
    /// `rows` must be passed explicitly so zero-arity stores (legal:
    /// they count rows with no values) stay well-defined.
    ///
    /// # Panics
    /// Panics if any column's length differs from `rows`.
    pub fn from_columns(rows: usize, cols: Vec<Vec<V>>) -> Self {
        for (c, col) in cols.iter().enumerate() {
            assert_eq!(
                col.len(),
                rows,
                "column {c} holds {} values for {rows} rows",
                col.len()
            );
        }
        ColumnarRows {
            cols: cols.into(),
            rows,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the store holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The fixed row arity (number of columns).
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Column `c` as one contiguous value slice of length [`len`](Self::len).
    #[inline]
    pub fn col(&self, c: usize) -> &[V] {
        &self.cols[c]
    }

    /// The value at row `i`, column `c`.
    #[inline]
    pub fn value(&self, i: usize, c: usize) -> &V {
        &self.cols[c][i]
    }

    /// Whether two handles share the same column storage.
    #[inline]
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.cols, &b.cols)
    }

    /// The address of the shared storage, as an opaque identity: two
    /// *live* handles have equal ids iff they share storage (and hence
    /// hold identical columns). Only meaningful while a handle keeps the
    /// storage alive — a freed address may be reused.
    #[inline]
    pub fn ptr_id(&self) -> usize {
        Arc::as_ptr(&self.cols) as *const Vec<V> as usize
    }
}

impl<V> Clone for ColumnarRows<V> {
    #[inline]
    fn clone(&self) -> Self {
        ColumnarRows {
            cols: Arc::clone(&self.cols),
            rows: self.rows,
        }
    }
}

impl<V: PartialEq> PartialEq for ColumnarRows<V> {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && (Self::ptr_eq(self, other) || *self.cols == *other.cols)
    }
}

impl<V: Eq> Eq for ColumnarRows<V> {}

impl<V: fmt::Debug> fmt::Debug for ColumnarRows<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.cols.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(rows: &[&[i32]]) -> Vec<Box<[i32]>> {
        rows.iter().map(|r| r.to_vec().into_boxed_slice()).collect()
    }

    #[test]
    fn from_rows_transposes() {
        let c = ColumnarRows::from_rows(2, &boxed(&[&[1, 2], &[3, 4], &[5, 6]]));
        assert_eq!(c.len(), 3);
        assert_eq!(c.arity(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.col(0), &[1, 3, 5]);
        assert_eq!(c.col(1), &[2, 4, 6]);
        assert_eq!(*c.value(1, 0), 3);
        assert_eq!(c.to_rows(), boxed(&[&[1, 2], &[3, 4], &[5, 6]]));
    }

    #[test]
    fn clone_shares_storage_and_gather_does_not() {
        let a = ColumnarRows::from_rows(2, &boxed(&[&[1, 2], &[3, 4], &[5, 6]]));
        let b = a.clone();
        assert!(ColumnarRows::ptr_eq(&a, &b));
        assert_eq!(a, b);
        let g = a.gather(&[2, 0]);
        assert!(!ColumnarRows::ptr_eq(&a, &g));
        assert_eq!(g.col(0), &[5, 1]);
        assert_eq!(g.col(1), &[6, 2]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn from_columns_roundtrip_and_push_row() {
        let c = ColumnarRows::from_columns(3, vec![vec![1, 3, 5], vec![2, 4, 6]]);
        let mut out = Vec::new();
        c.push_row_into(2, &mut out);
        assert_eq!(out, vec![5, 6]);
        assert_eq!(
            c,
            ColumnarRows::from_rows(2, &boxed(&[&[1, 2], &[3, 4], &[5, 6]]))
        );
    }

    #[test]
    fn zero_arity_rows_are_well_defined() {
        let c = ColumnarRows::<i32>::from_columns(2, vec![]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.arity(), 0);
        assert_eq!(c.to_rows(), boxed(&[&[], &[]]));
    }

    #[test]
    #[should_panic(expected = "does not match arity")]
    fn arity_mismatch_panics() {
        let _ = ColumnarRows::from_rows(2, &boxed(&[&[1, 2, 3]]));
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn column_length_mismatch_panics() {
        let _ = ColumnarRows::from_columns(2, vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn columnar_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ColumnarRows<i64>>();
    }
}
