//! Sharded, lock-striped concurrent memoization maps.
//!
//! A [`ShardedMemo`] is the substrate of the engine's **shared memo
//! service**: one global cache that every scheduler worker reads and
//! publishes into, instead of each worker warming a private memo slice.
//! Keys are spread over `2^k` shards by their `FxHasher` hash, each shard
//! its own `RwLock<HashMap>`, so concurrent probes of distinct keys
//! almost never contend and hits take one uncontended read lock.
//!
//! Publication is **first-writer-wins**: [`ShardedMemo::publish`] keeps
//! the value already present (if any) and returns the canonical one, so
//! two workers racing to compute the same key converge on a single
//! shared value. This only makes sense for memo caches whose values are
//! a deterministic function of the key — which is exactly the contract
//! of the `findRules` memos (see `ARCHITECTURE.md`).
//!
//! Hit/miss counters ([`ShardedMemo::stats`]) are relaxed atomics:
//! precise enough for perf reporting, free of synchronization cost on
//! the hot path.

use crate::fxhash::FxBuildHasher;
use crate::lock::{read_recover, write_recover};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Default shard count (a power of two). 16 keeps contention negligible
/// for the worker counts this workspace schedules (`MQ_THREADS` ≤ a few
/// dozen) while staying cache-friendly on 1-core boxes.
const DEFAULT_SHARDS: usize = 16;

/// Aggregated hit/miss counters of one or more memos.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Number of probes answered from the cache.
    pub hits: u64,
    /// Number of probes that missed (typically followed by a publish).
    pub misses: u64,
}

impl MemoStats {
    /// Fraction of probes that hit (`0.0` when nothing was probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum, for aggregating several memos' stats.
    pub fn merged(self, other: MemoStats) -> MemoStats {
        MemoStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// A sharded, lock-striped concurrent map with first-writer-wins
/// publication and hit/miss accounting.
pub struct ShardedMemo<K, V> {
    shards: Vec<RwLock<HashMap<K, V, FxBuildHasher>>>,
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq, V: Clone> ShardedMemo<K, V> {
    /// A memo with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A memo with at least `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMemo {
            shards: (0..n)
                .map(|_| RwLock::new(HashMap::with_hasher(FxBuildHasher)))
                .collect(),
            mask: n - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V, FxBuildHasher>> {
        let h = FxBuildHasher.hash_one(key);
        &self.shards[(h as usize) & self.mask]
    }

    /// Look up `key`, counting a hit or a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let hit = read_recover(self.shard(key)).get(key).cloned();
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish `value` under `key`. If another writer got there first the
    /// existing value is kept; either way the canonical cached value is
    /// returned, so racing computors converge on one shared result.
    pub fn publish(&self, key: K, value: V) -> V {
        write_recover(self.shard(&key))
            .entry(key)
            .or_insert(value)
            .clone()
    }

    /// `get` or compute-and-`publish`. The closure runs without any lock
    /// held (a memoized computation may recurse into this same memo), so
    /// racing threads may compute twice; both get the canonical value.
    pub fn get_or_publish(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.publish(key, v)
    }

    /// Keep only the entries for which `keep` returns `true` (write-locks
    /// each shard in turn). Used for maintenance sweeps — e.g. dropping
    /// cache entries whose generation tag went stale; counters are kept.
    pub fn retain(&self, mut keep: impl FnMut(&K, &V) -> bool) {
        for shard in &self.shards {
            write_recover(shard).retain(|k, v| keep(k, v));
        }
    }

    /// Total number of cached entries (sums the shards; O(shards)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_recover(s).len()).sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Reset the hit/miss counters to zero (entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMemo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn get_publish_roundtrip_and_stats() {
        let memo: ShardedMemo<u32, String> = ShardedMemo::new();
        assert_eq!(memo.get(&7), None);
        memo.publish(7, "seven".into());
        assert_eq!(memo.get(&7).as_deref(), Some("seven"));
        // First writer wins.
        let canonical = memo.publish(7, "SEVEN".into());
        assert_eq!(canonical, "seven");
        assert_eq!(memo.len(), 1);
        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        memo.reset_stats();
        assert_eq!(memo.stats(), MemoStats::default());
        assert_eq!(memo.get(&7).as_deref(), Some("seven"), "entries survive");
    }

    #[test]
    fn get_or_publish_computes_once_when_sequential() {
        let memo: ShardedMemo<u8, u64> = ShardedMemo::with_shards(1);
        let computes = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = memo.get_or_publish(3, || {
                computes.fetch_add(1, Ordering::SeqCst);
                99
            });
            assert_eq!(v, 99);
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retain_drops_only_rejected_entries() {
        let memo: ShardedMemo<u32, u32> = ShardedMemo::new();
        for k in 0..20 {
            memo.publish(k, k * 10);
        }
        memo.retain(|&k, _| k % 2 == 0);
        assert_eq!(memo.len(), 10);
        assert_eq!(memo.get(&4), Some(40));
        assert_eq!(memo.get(&5), None);
    }

    /// Many threads hammering overlapping keys must converge on one
    /// canonical value per key and keep counters consistent.
    #[test]
    fn concurrent_publish_converges_on_canonical_values() {
        const THREADS: usize = 8;
        const OPS: usize = 500;
        const KEYS: u64 = 29;
        let memo: Arc<ShardedMemo<u64, Arc<(u64, usize)>>> = Arc::new(ShardedMemo::new());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let memo = Arc::clone(&memo);
                s.spawn(move || {
                    for i in 0..OPS {
                        let k = ((t * OPS + i) as u64 * 7) % KEYS;
                        // The value records the key plus the publishing
                        // thread; the key part must always match.
                        let v = memo.get_or_publish(k, || Arc::new((k, t)));
                        assert_eq!(v.0, k, "foreign value under key {k}");
                        // Once published, every later read agrees.
                        let again = memo.get(&k).expect("published key vanished");
                        assert!(Arc::ptr_eq(&v, &again) || again.0 == k);
                    }
                });
            }
        });
        assert_eq!(memo.len(), KEYS as usize);
        let s = memo.stats();
        assert!(
            s.hits + s.misses >= (THREADS * OPS) as u64,
            "every op probes at least once"
        );
        // Each key's canonical value is stable now.
        for k in 0..KEYS {
            assert_eq!(memo.get(&k).unwrap().0, k);
        }
    }
}
