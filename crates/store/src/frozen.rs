//! Frozen row storage and its per-column-set index cache.
//!
//! A [`FrozenRows`] is an immutable tuple store behind an `Arc`: handle
//! clones are O(1) pointer copies, the storage itself never mutates once
//! frozen (the one escape hatch, [`FrozenRows::make_mut`], is
//! copy-on-write and requires exclusive access to the handle), and the
//! whole value is `Send + Sync`. This is what lets relation values cross
//! worker threads: the engines snapshot intermediate results constantly,
//! and with frozen storage a snapshot is a pointer, shareable with any
//! thread.
//!
//! A [`ColIndexCache`] rides next to a frozen store: derived indexes
//! (hash-join build sides, grouped by a column subset) are built at most
//! once per column set and shared by every clone of the store — across
//! threads — behind a single `RwLock`. Lookup is **hashed** (an
//! `FxHasher` map keyed by the column set), not a linear scan, so stores
//! probed on many distinct column sets pay O(1) per probe rather than
//! O(cached entries).

use crate::fxhash::FxBuildHasher;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, RwLock};

/// Immutable, atomically shared row storage with O(1) handle clones.
///
/// Dereferences to `[T]`; equality compares contents with a same-storage
/// pointer shortcut (two handles to one frozen store are trivially
/// equal).
pub struct FrozenRows<T> {
    rows: Arc<Vec<T>>,
}

impl<T> FrozenRows<T> {
    /// Freeze `rows` into shared storage.
    pub fn new(rows: Vec<T>) -> Self {
        FrozenRows {
            rows: Arc::new(rows),
        }
    }

    /// The rows as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.rows
    }

    /// Whether two handles share the same frozen storage.
    #[inline]
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.rows, &b.rows)
    }

    /// The address of the shared storage, as an opaque identity: two
    /// *live* handles have equal ids iff they share storage (and hence
    /// hold identical rows). Only meaningful while a handle keeps the
    /// storage alive — a freed address may be reused.
    #[inline]
    pub fn ptr_id(&self) -> usize {
        Arc::as_ptr(&self.rows) as usize
    }
}

impl<T: Clone> FrozenRows<T> {
    /// Copy-on-write mutable access: returns the unique storage, cloning
    /// it first if other handles share it. Callers that reorder rows must
    /// drop any derived per-row-id state (indexes) themselves.
    pub fn make_mut(&mut self) -> &mut Vec<T> {
        Arc::make_mut(&mut self.rows)
    }
}

impl<T> Clone for FrozenRows<T> {
    #[inline]
    fn clone(&self) -> Self {
        FrozenRows {
            rows: Arc::clone(&self.rows),
        }
    }
}

impl<T> Deref for FrozenRows<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        &self.rows
    }
}

impl<T: PartialEq> PartialEq for FrozenRows<T> {
    fn eq(&self, other: &Self) -> bool {
        Self::ptr_eq(self, other) || *self.rows == *other.rows
    }
}

impl<T: Eq> Eq for FrozenRows<T> {}

impl<T: fmt::Debug> fmt::Debug for FrozenRows<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.rows.fmt(f)
    }
}

/// A thread-safe cache of derived indexes over one frozen row store,
/// keyed by the column set the index was built on.
///
/// Shared (behind an `Arc`) by every handle to the same store, so a hash
/// table built by one clone — on any thread — serves them all. The
/// builder closure runs *outside* the write lock (holding it would block
/// every reader for the build's duration), so two threads racing on the
/// same column set may both build; the first inserted index wins and
/// both callers get the same `Arc`.
pub struct ColIndexCache<I> {
    map: RwLock<HashMap<Box<[usize]>, Arc<I>, FxBuildHasher>>,
}

impl<I> ColIndexCache<I> {
    /// An empty cache.
    pub fn new() -> Self {
        ColIndexCache {
            map: RwLock::new(HashMap::with_hasher(FxBuildHasher)),
        }
    }

    /// The cached index over `cols`, if one has already been built —
    /// lets callers pick the operand that can be probed without paying
    /// a build (see `Bindings::semijoin_count`).
    pub fn get(&self, cols: &[usize]) -> Option<Arc<I>> {
        crate::lock::read_recover(&self.map)
            .get(cols)
            .map(Arc::clone)
    }

    /// Get the index over `cols`, building (and caching) it on first use.
    pub fn get_or_build(&self, cols: &[usize], build: impl FnOnce() -> I) -> Arc<I> {
        if let Some(idx) = crate::lock::read_recover(&self.map).get(cols) {
            return Arc::clone(idx);
        }
        let built = Arc::new(build());
        let mut map = crate::lock::write_recover(&self.map);
        // Another thread may have built it concurrently; keep the first.
        Arc::clone(map.entry(cols.to_vec().into_boxed_slice()).or_insert(built))
    }

    /// Number of cached column sets.
    pub fn len(&self) -> usize {
        crate::lock::read_recover(&self.map).len()
    }

    /// Whether no index has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<I> Default for ColIndexCache<I> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_rows_clone_shares_storage() {
        let a = FrozenRows::new(vec![1, 2, 3]);
        let b = a.clone();
        assert!(FrozenRows::ptr_eq(&a, &b));
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        assert_eq!(a, b);
        // Content equality without shared storage.
        let c = FrozenRows::new(vec![1, 2, 3]);
        assert!(!FrozenRows::ptr_eq(&a, &c));
        assert_eq!(a, c);
        assert_ne!(a, FrozenRows::new(vec![1, 2]));
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let mut a = FrozenRows::new(vec![3, 1, 2]);
        let b = a.clone();
        a.make_mut().sort();
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        assert_eq!(b.as_slice(), &[3, 1, 2], "shared handle is untouched");
        assert!(!FrozenRows::ptr_eq(&a, &b));
    }

    #[test]
    fn index_cache_builds_once_per_column_set() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache: ColIndexCache<Vec<usize>> = ColIndexCache::new();
        let builds = AtomicUsize::new(0);
        let build = |cols: &[usize]| {
            builds.fetch_add(1, Ordering::SeqCst);
            cols.to_vec()
        };
        let a = cache.get_or_build(&[0, 2], || build(&[0, 2]));
        let b = cache.get_or_build(&[0, 2], || build(&[0, 2]));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let _ = cache.get_or_build(&[1], || build(&[1]));
        assert_eq!(builds.load(Ordering::SeqCst), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn index_cache_shared_across_threads() {
        let cache: Arc<ColIndexCache<usize>> = Arc::new(ColIndexCache::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..64usize {
                        let cols = [i % 4];
                        let idx = cache.get_or_build(&cols, || i % 4);
                        assert_eq!(*idx, i % 4, "thread {t} read a foreign index");
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4);
    }
}
