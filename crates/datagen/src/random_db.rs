//! Seeded random database generators with controlled size, arity, domain
//! and skew — the synthetic workloads behind every scaling experiment
//! (the paper's cost model is stated in exactly these parameters: `n`
//! relations, `d` tuples in the largest relation, arity `b`).

use mq_relation::{Database, Value};
use rand::prelude::*;

/// Specification of a uniform random database.
#[derive(Clone, Debug)]
pub struct RandomDbSpec {
    /// Number of relations `n`.
    pub n_relations: usize,
    /// Arity of every relation `b`.
    pub arity: usize,
    /// Tuples per relation `d` (before deduplication).
    pub rows: usize,
    /// Values are drawn uniformly from `0..domain`.
    pub domain: i64,
    /// RNG seed (all experiments record their seeds).
    pub seed: u64,
}

impl RandomDbSpec {
    /// Generate the database. Relations are named `r0, r1, ...`.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new();
        for i in 0..self.n_relations {
            let rel = db.add_relation(format!("r{i}"), self.arity);
            for _ in 0..self.rows {
                let row: Vec<Value> = (0..self.arity)
                    .map(|_| Value::Int(rng.gen_range(0..self.domain)))
                    .collect();
                db.insert(rel, row.into_boxed_slice());
            }
        }
        db
    }
}

/// A database with a *planted* chain rule: relations `r0..r{n-1}` random,
/// but `head` is built so that `head(X0, Xm) <- r0(X0,X1), ...,
/// r{m-1}(X{m-1},Xm)` holds with confidence close to `confidence`
/// (fraction of body-join tuples whose endpoints were copied into the
/// head). Mining should rediscover the planted rule.
#[derive(Clone, Debug)]
pub struct PlantedChainSpec {
    /// Number of body relations `m` (chain length).
    pub chain_len: usize,
    /// Tuples per body relation.
    pub rows: usize,
    /// Value domain.
    pub domain: i64,
    /// Target confidence of the planted rule, in `[0, 1]`.
    pub confidence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PlantedChainSpec {
    /// Generate the database. Body relations are `r0..r{m-1}`; the planted
    /// head relation is `head`.
    pub fn generate(&self) -> Database {
        assert!(self.chain_len >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = Database::new();
        let rels: Vec<_> = (0..self.chain_len)
            .map(|i| db.add_relation(format!("r{i}"), 2))
            .collect();
        for &rel in &rels {
            for _ in 0..self.rows {
                let row = vec![
                    Value::Int(rng.gen_range(0..self.domain)),
                    Value::Int(rng.gen_range(0..self.domain)),
                ];
                db.insert(rel, row.into_boxed_slice());
            }
        }
        // Materialize the body join endpoints (X0, Xm) by walking chains.
        let head = db.add_relation("head", 2);
        let endpoints = chain_endpoints(&db, self.chain_len);
        let mut inserted = 0usize;
        for (a, b) in &endpoints {
            if rng.gen_bool(self.confidence) {
                db.insert(head, vec![*a, *b].into_boxed_slice());
                inserted += 1;
            }
        }
        // Guarantee a non-empty head so cover/confidence are defined.
        if inserted == 0 {
            if let Some((a, b)) = endpoints.first() {
                db.insert(head, vec![*a, *b].into_boxed_slice());
            } else {
                db.insert(head, vec![Value::Int(0), Value::Int(0)].into_boxed_slice());
            }
        }
        db
    }
}

/// Distinct `(X0, Xm)` endpoint pairs of the chain join over `r0..r{m-1}`.
fn chain_endpoints(db: &Database, m: usize) -> Vec<(Value, Value)> {
    use std::collections::BTreeSet;
    let mut frontier: BTreeSet<(Value, Value)> =
        db.rel("r0").rows().map(|r| (r[0], r[1])).collect();
    for i in 1..m {
        let next: BTreeSet<(Value, Value)> = db
            .rel(&format!("r{i}"))
            .rows()
            .map(|r| (r[0], r[1]))
            .collect();
        let mut out = BTreeSet::new();
        for &(a, mid) in &frontier {
            for &(m2, b) in &next {
                if mid == m2 {
                    out.insert((a, b));
                }
            }
        }
        frontier = out;
    }
    frontier.into_iter().collect()
}

/// A skewed (Zipf-like) random database: value `v` is drawn with weight
/// `1/(v+1)^s`. High skew concentrates join keys, stressing the semijoin
/// reducers with heavy-hitter values.
#[derive(Clone, Debug)]
pub struct SkewedDbSpec {
    /// Number of relations.
    pub n_relations: usize,
    /// Arity of every relation.
    pub arity: usize,
    /// Tuples per relation.
    pub rows: usize,
    /// Domain size.
    pub domain: usize,
    /// Zipf exponent `s >= 0` (0 = uniform).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SkewedDbSpec {
    /// Generate the database.
    pub fn generate(&self) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Cumulative weights.
        let weights: Vec<f64> = (0..self.domain)
            .map(|v| 1.0 / ((v + 1) as f64).powf(self.skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(self.domain);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc / total);
        }
        let draw = |rng: &mut StdRng| -> i64 {
            let x: f64 = rng.gen();
            cumulative
                .iter()
                .position(|&c| x <= c)
                .unwrap_or(self.domain - 1) as i64
        };
        let mut db = Database::new();
        for i in 0..self.n_relations {
            let rel = db.add_relation(format!("r{i}"), self.arity);
            for _ in 0..self.rows {
                let row: Vec<Value> = (0..self.arity)
                    .map(|_| Value::Int(draw(&mut rng)))
                    .collect();
                db.insert(rel, row.into_boxed_slice());
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_db_is_reproducible() {
        let spec = RandomDbSpec {
            n_relations: 3,
            arity: 2,
            rows: 20,
            domain: 10,
            seed: 7,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.num_relations(), 3);
        for (ra, rb) in a.relations().zip(b.relations()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn planted_rule_has_high_confidence() {
        use mq_core::index::confidence;
        use mq_core::rule::Rule;
        use mq_cq::Atom;
        let spec = PlantedChainSpec {
            chain_len: 2,
            rows: 60,
            domain: 12,
            confidence: 0.9,
            seed: 13,
        };
        let db = spec.generate();
        let mut pool = mq_core::ast::VarPool::new();
        let (x0, x1, x2) = (pool.var("X0"), pool.var("X1"), pool.var("X2"));
        let rule = Rule {
            head: Atom::vars_atom(db.rel_id("head").unwrap(), &[x0, x2]),
            body: vec![
                Atom::vars_atom(db.rel_id("r0").unwrap(), &[x0, x1]),
                Atom::vars_atom(db.rel_id("r1").unwrap(), &[x1, x2]),
            ],
            neg_body: vec![],
            var_names: pool,
        };
        let cnf = confidence(&db, &rule);
        assert!(
            cnf.to_f64() > 0.6,
            "planted confidence should be high, got {cnf}"
        );
    }

    #[test]
    fn skew_concentrates_values() {
        let uniform = SkewedDbSpec {
            n_relations: 1,
            arity: 1,
            rows: 600,
            domain: 50,
            skew: 0.0,
            seed: 3,
        }
        .generate();
        let skewed = SkewedDbSpec {
            n_relations: 1,
            arity: 1,
            rows: 600,
            domain: 50,
            skew: 2.0,
            seed: 3,
        }
        .generate();
        // Distinct values surviving dedup: skew should give fewer.
        assert!(skewed.rel("r0").len() < uniform.rel("r0").len());
    }

    #[test]
    fn chain_endpoints_match_join() {
        let spec = RandomDbSpec {
            n_relations: 2,
            arity: 2,
            rows: 15,
            domain: 5,
            seed: 21,
        };
        let db = spec.generate();
        let eps = chain_endpoints(&db, 2);
        // Cross-check against the algebra.
        use mq_relation::{Bindings, Term, VarId};
        let b0 = Bindings::from_atom(db.rel("r0"), &[Term::Var(VarId(0)), Term::Var(VarId(1))]);
        let b1 = Bindings::from_atom(db.rel("r1"), &[Term::Var(VarId(1)), Term::Var(VarId(2))]);
        let join = b0.join(&b1);
        assert_eq!(eps.len(), join.count_distinct(&[VarId(0), VarId(2)]));
    }
}
