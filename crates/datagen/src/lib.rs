//! # mq-datagen — seeded workload generators
//!
//! Benchmark and example inputs for the reproduction:
//!
//! * [`telecom`] — the paper's Figures 1-2 database, verbatim;
//! * [`random_db`] — uniform, skewed, and planted-rule databases over the
//!   parameters the paper's cost model uses (`n` relations, `d` rows,
//!   arity `b`);
//! * [`metaqueries`] — metaquery shapes with known body hypertree widths
//!   (chain/star = 1, cycle = 2, clique(2c) = c).
//!
//! Everything is seeded: the same spec generates the same workload, and
//! EXPERIMENTS.md records the seeds used by every table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metaqueries;
pub mod random_db;
pub mod telecom;

pub use random_db::{PlantedChainSpec, RandomDbSpec, SkewedDbSpec};
