//! Metaquery shape generators: chains, stars, cycles and cliques with
//! known hypertree widths, plus schema-driven enumeration (the paper
//! notes metaqueries "can be automatically generated from the database
//! schema").

use mq_core::ast::{Metaquery, MetaqueryBuilder};
use mq_relation::Database;

/// Chain metaquery `R(X0,Xm) <- P1(X0,X1), ..., Pm(X{m-1},Xm)`.
/// Body hypertree width 1 (semi-acyclic body).
pub fn chain(m: usize) -> Metaquery {
    assert!(m >= 1);
    let mut b = MetaqueryBuilder::new();
    let xs: Vec<_> = (0..=m).map(|i| b.var(&format!("X{i}"))).collect();
    let head = b.pred_var("R");
    b.head_pattern(head, vec![xs[0], xs[m]]);
    for i in 0..m {
        let p = b.pred_var(&format!("P{i}"));
        b.body_pattern(p, vec![xs[i], xs[i + 1]]);
    }
    b.build()
}

/// Star metaquery `R(X0) <- P1(X0,X1), ..., Pm(X0,Xm)`: width-1 body.
pub fn star(m: usize) -> Metaquery {
    assert!(m >= 1);
    let mut b = MetaqueryBuilder::new();
    let center = b.var("X0");
    let head = b.pred_var("R");
    b.head_pattern(head, vec![center]);
    for i in 1..=m {
        let leaf = b.var(&format!("X{i}"));
        let p = b.pred_var(&format!("P{i}"));
        b.body_pattern(p, vec![center, leaf]);
    }
    b.build()
}

/// Cycle metaquery `R(X0,X1) <- P1(X0,X1), ..., Pm(X{m-1},X0)`: body
/// hypertree width 2 for `m >= 4` (width 1 would require semi-acyclicity).
pub fn cycle(m: usize) -> Metaquery {
    assert!(m >= 3);
    let mut b = MetaqueryBuilder::new();
    let xs: Vec<_> = (0..m).map(|i| b.var(&format!("X{i}"))).collect();
    let head = b.pred_var("R");
    b.head_pattern(head, vec![xs[0], xs[1]]);
    for i in 0..m {
        let p = b.pred_var(&format!("P{i}"));
        b.body_pattern(p, vec![xs[i], xs[(i + 1) % m]]);
    }
    b.build()
}

/// Clique metaquery: body has one binary pattern per unordered pair of
/// `n` variables. The body hypergraph is the complete graph `K_n`, whose
/// hypertree width is `⌈n/2⌉` — the knob the Theorem 4.12 width-scaling
/// experiment turns.
pub fn clique(n: usize) -> Metaquery {
    assert!(n >= 2);
    let mut b = MetaqueryBuilder::new();
    let xs: Vec<_> = (0..n).map(|i| b.var(&format!("X{i}"))).collect();
    let head = b.pred_var("R");
    b.head_pattern(head, vec![xs[0], xs[1]]);
    for i in 0..n {
        for j in (i + 1)..n {
            let p = b.pred_var(&format!("P{i}_{j}"));
            b.body_pattern(p, vec![xs[i], xs[j]]);
        }
    }
    b.build()
}

/// Schema-driven metaquery generation (§1: metaqueries "can be
/// automatically generated from the database schema"): all chain
/// metaqueries of the given length whose patterns can match the schema's
/// binary relations — returned as the single generic chain, since the
/// engine's instantiation enumeration explores the relation choices.
/// Returns `None` if the schema has no binary relations.
pub fn from_schema_chains(db: &Database, len: usize) -> Option<Metaquery> {
    let has_binary = db.relations().any(|r| r.arity() == 2);
    if !has_binary {
        return None;
    }
    Some(chain(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_core::engine::find_rules::body_decomposition;

    #[test]
    fn chain_width_one() {
        for m in 1..=5 {
            assert_eq!(body_decomposition(&chain(m)).width, 1, "chain({m})");
        }
    }

    #[test]
    fn star_width_one() {
        for m in 1..=5 {
            assert_eq!(body_decomposition(&star(m)).width, 1, "star({m})");
        }
    }

    #[test]
    fn cycle_width_two() {
        for m in 4..=6 {
            assert_eq!(body_decomposition(&cycle(m)).width, 2, "cycle({m})");
        }
    }

    #[test]
    fn clique_width_half_n() {
        assert_eq!(body_decomposition(&clique(4)).width, 2);
        assert_eq!(body_decomposition(&clique(6)).width, 3);
    }

    #[test]
    fn shapes_are_pure() {
        assert!(chain(3).is_pure());
        assert!(star(3).is_pure());
        assert!(cycle(4).is_pure());
        assert!(clique(4).is_pure());
    }

    #[test]
    fn schema_chains() {
        let mut db = Database::new();
        db.add_relation("unary", 1);
        assert!(from_schema_chains(&db, 2).is_none());
        db.add_relation("pair", 2);
        assert!(from_schema_chains(&db, 2).is_some());
    }
}
