//! Metaquery shape generators: chains, stars, cycles and cliques with
//! known hypertree widths, plus schema-driven enumeration (the paper
//! notes metaqueries "can be automatically generated from the database
//! schema").

use mq_core::ast::{Metaquery, MetaqueryBuilder};
use mq_relation::Database;

/// Chain metaquery `R(X0,Xm) <- P1(X0,X1), ..., Pm(X{m-1},Xm)`.
/// Body hypertree width 1 (semi-acyclic body).
pub fn chain(m: usize) -> Metaquery {
    assert!(m >= 1);
    let mut b = MetaqueryBuilder::new();
    let xs: Vec<_> = (0..=m).map(|i| b.var(&format!("X{i}"))).collect();
    let head = b.pred_var("R");
    b.head_pattern(head, vec![xs[0], xs[m]]);
    for i in 0..m {
        let p = b.pred_var(&format!("P{i}"));
        b.body_pattern(p, vec![xs[i], xs[i + 1]]);
    }
    b.build()
}

/// Star metaquery `R(X0) <- P1(X0,X1), ..., Pm(X0,Xm)`: width-1 body.
pub fn star(m: usize) -> Metaquery {
    assert!(m >= 1);
    let mut b = MetaqueryBuilder::new();
    let center = b.var("X0");
    let head = b.pred_var("R");
    b.head_pattern(head, vec![center]);
    for i in 1..=m {
        let leaf = b.var(&format!("X{i}"));
        let p = b.pred_var(&format!("P{i}"));
        b.body_pattern(p, vec![center, leaf]);
    }
    b.build()
}

/// Cycle metaquery `R(X0,X1) <- P1(X0,X1), ..., Pm(X{m-1},X0)`: body
/// hypertree width 2 for `m >= 4` (width 1 would require semi-acyclicity).
pub fn cycle(m: usize) -> Metaquery {
    assert!(m >= 3);
    let mut b = MetaqueryBuilder::new();
    let xs: Vec<_> = (0..m).map(|i| b.var(&format!("X{i}"))).collect();
    let head = b.pred_var("R");
    b.head_pattern(head, vec![xs[0], xs[1]]);
    for i in 0..m {
        let p = b.pred_var(&format!("P{i}"));
        b.body_pattern(p, vec![xs[i], xs[(i + 1) % m]]);
    }
    b.build()
}

/// Clique metaquery: body has one binary pattern per unordered pair of
/// `n` variables. The body hypergraph is the complete graph `K_n`, whose
/// hypertree width is `⌈n/2⌉` — the knob the Theorem 4.12 width-scaling
/// experiment turns.
pub fn clique(n: usize) -> Metaquery {
    assert!(n >= 2);
    let mut b = MetaqueryBuilder::new();
    let xs: Vec<_> = (0..n).map(|i| b.var(&format!("X{i}"))).collect();
    let head = b.pred_var("R");
    b.head_pattern(head, vec![xs[0], xs[1]]);
    for i in 0..n {
        for j in (i + 1)..n {
            let p = b.pred_var(&format!("P{i}_{j}"));
            b.body_pattern(p, vec![xs[i], xs[j]]);
        }
    }
    b.build()
}

/// Star/clique hybrid metaquery of hypertree width `⌈(arms+1)/2⌉`: a
/// center `X0` with `arms` **pattern** spokes `P_i(X0, X_i)`, plus a
/// **fixed** rim atom `rim_rel(X_i, X_j)` for every pair of arm tips —
/// the body hypergraph is the complete graph `K_{arms+1}`.
///
/// `arms = 4` gives `K_5`, hypertree width **3** — the width-3 series of
/// `bench_report`, one step past the chain (width 1) and cycle (width 2)
/// contrast. Keeping the rim fixed keeps the pattern count (and thus the
/// instantiation space, which is exponential in `m`) at `arms + 1`, so
/// the workload stresses the width-3 node joins rather than the
/// enumeration.
pub fn hybrid_star(arms: usize, rim_rel: &str) -> Metaquery {
    assert!(arms >= 2);
    let mut b = MetaqueryBuilder::new();
    let xs: Vec<_> = (0..=arms).map(|i| b.var(&format!("X{i}"))).collect();
    let head = b.pred_var("R");
    b.head_pattern(head, vec![xs[1], xs[2]]);
    for i in 1..=arms {
        let p = b.pred_var(&format!("P{i}"));
        b.body_pattern(p, vec![xs[0], xs[i]]);
    }
    for i in 1..=arms {
        for j in (i + 1)..=arms {
            b.body_atom(rim_rel, vec![xs[i], xs[j]]);
        }
    }
    b.build()
}

/// Schema-driven metaquery generation (§1: metaqueries "can be
/// automatically generated from the database schema"): all chain
/// metaqueries of the given length whose patterns can match the schema's
/// binary relations — returned as the single generic chain, since the
/// engine's instantiation enumeration explores the relation choices.
/// Returns `None` if the schema has no binary relations.
pub fn from_schema_chains(db: &Database, len: usize) -> Option<Metaquery> {
    let has_binary = db.relations().any(|r| r.arity() == 2);
    if !has_binary {
        return None;
    }
    Some(chain(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_core::engine::find_rules::body_decomposition;

    #[test]
    fn chain_width_one() {
        for m in 1..=5 {
            assert_eq!(body_decomposition(&chain(m)).width, 1, "chain({m})");
        }
    }

    #[test]
    fn star_width_one() {
        for m in 1..=5 {
            assert_eq!(body_decomposition(&star(m)).width, 1, "star({m})");
        }
    }

    #[test]
    fn cycle_width_two() {
        for m in 4..=6 {
            assert_eq!(body_decomposition(&cycle(m)).width, 2, "cycle({m})");
        }
    }

    #[test]
    fn hybrid_star_width_three() {
        let mq = hybrid_star(4, "rim");
        assert_eq!(body_decomposition(&mq).width, 3, "K5 has width 3");
        assert_eq!(mq.relation_patterns().len(), 5, "head + 4 spokes");
        assert_eq!(mq.body.len(), 4 + 6, "4 spokes + C(4,2) rim atoms");
        assert!(mq.is_pure());
        // Smaller hybrid: K4 is the width-2 wheel.
        assert_eq!(body_decomposition(&hybrid_star(3, "rim")).width, 2);
    }

    #[test]
    fn clique_width_half_n() {
        assert_eq!(body_decomposition(&clique(4)).width, 2);
        assert_eq!(body_decomposition(&clique(6)).width, 3);
    }

    #[test]
    fn shapes_are_pure() {
        assert!(chain(3).is_pure());
        assert!(star(3).is_pure());
        assert!(cycle(4).is_pure());
        assert!(clique(4).is_pure());
    }

    #[test]
    fn schema_chains() {
        let mut db = Database::new();
        db.add_relation("unary", 1);
        assert!(from_schema_chains(&db, 2).is_none());
        db.add_relation("pair", 2);
        assert!(from_schema_chains(&db, 2).is_some());
    }
}
