//! The paper's running example: the telecom database of Figures 1 and 2.

use mq_relation::Database;

/// Build `DB1` (Figure 1): relations `UsCa(User, Carrier)`,
/// `CaTe(Carrier, Technology)` and `UsPT(User, PhoneType)`.
pub fn db1() -> Database {
    let mut db = Database::new();
    let john = db.sym("John K.");
    let anastasia = db.sym("Anastasia A.");
    let omnitel = db.sym("Omnitel");
    let tim = db.sym("Tim");
    let wind = db.sym("Wind");
    let etacs = db.sym("ETACS");
    let gsm900 = db.sym("GSM 900");
    let gsm1800 = db.sym("GSM 1800");

    let usca = db.add_relation("UsCa", 2);
    for (u, c) in [(john, omnitel), (john, tim), (anastasia, omnitel)] {
        db.insert(usca, vec![u, c].into_boxed_slice());
    }
    let cate = db.add_relation("CaTe", 2);
    for (c, t) in [
        (tim, etacs),
        (tim, gsm900),
        (tim, gsm1800),
        (omnitel, gsm900),
        (omnitel, gsm1800),
        (wind, gsm1800),
    ] {
        db.insert(cate, vec![c, t].into_boxed_slice());
    }
    let uspt = db.add_relation("UsPT", 2);
    for (u, t) in [(john, gsm900), (john, gsm1800), (anastasia, gsm900)] {
        db.insert(uspt, vec![u, t].into_boxed_slice());
    }
    db
}

/// Build `DB2` (Figure 2): like `DB1` but `UsPT` gains a `Model`
/// attribute, motivating type-2 instantiations.
pub fn db2() -> Database {
    let mut db = Database::new();
    let john = db.sym("John K.");
    let anastasia = db.sym("Anastasia A.");
    let omnitel = db.sym("Omnitel");
    let tim = db.sym("Tim");
    let wind = db.sym("Wind");
    let etacs = db.sym("ETACS");
    let gsm900 = db.sym("GSM 900");
    let gsm1800 = db.sym("GSM 1800");
    let nokia = db.sym("Nokia 6150");
    let bosch = db.sym("Bosch 607");

    let usca = db.add_relation("UsCa", 2);
    for (u, c) in [(john, omnitel), (john, tim), (anastasia, omnitel)] {
        db.insert(usca, vec![u, c].into_boxed_slice());
    }
    let cate = db.add_relation("CaTe", 2);
    for (c, t) in [
        (tim, etacs),
        (tim, gsm900),
        (tim, gsm1800),
        (omnitel, gsm900),
        (omnitel, gsm1800),
        (wind, gsm1800),
    ] {
        db.insert(cate, vec![c, t].into_boxed_slice());
    }
    let uspt = db.add_relation("UsPT", 3);
    for (u, t, m) in [
        (john, gsm900, nokia),
        (john, gsm1800, nokia),
        (anastasia, gsm900, bosch),
    ] {
        db.insert(uspt, vec![u, t, m].into_boxed_slice());
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_core::engine::{naive, Thresholds};
    use mq_core::instantiate::InstType;
    use mq_core::parse::parse_metaquery;
    use mq_relation::Frac;

    #[test]
    fn db1_shapes() {
        let db = db1();
        assert_eq!(db.rel("UsCa").len(), 3);
        assert_eq!(db.rel("CaTe").len(), 6);
        assert_eq!(db.rel("UsPT").len(), 3);
    }

    /// The §2.1 example instantiation
    /// `UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)`
    /// scores sup = 1, cvr = 1, cnf = 5/7 on DB1 (hand computation: the
    /// body join has 7 tuples, 5 of which have (X,Z) in UsPT; all 3 head
    /// tuples are implied; all 3 UsCa tuples participate).
    #[test]
    fn paper_instantiation_indices() {
        let db = db1();
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let answers = naive::find_all(&db, &mq, InstType::Zero, Thresholds::none()).unwrap();
        let target = answers
            .iter()
            .find(|a| {
                let rule = mq_core::instantiate::apply_instantiation(&db, &mq, &a.inst).unwrap();
                rule.render(&db) == "UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)"
            })
            .expect("the paper's instantiation must be enumerated");
        assert_eq!(target.indices.sup, Frac::ONE);
        assert_eq!(target.indices.cvr, Frac::ONE);
        assert_eq!(target.indices.cnf, Frac::new(5, 7));
    }

    /// §2.2's cover example: the type-2 instantiation
    /// `UsCa(X,Z) <- UsPt(X,H)` of `I(X) <- O(X)` scores cover 1.
    #[test]
    fn cover_one_example() {
        let db = db1();
        let mq = parse_metaquery("I(X) <- O(X)").unwrap();
        let answers = naive::find_all(&db, &mq, InstType::Two, Thresholds::none()).unwrap();
        let hit = answers.iter().any(|a| {
            let rule = mq_core::instantiate::apply_instantiation(&db, &mq, &a.inst).unwrap();
            let head_is_usca = db.relation(rule.head.rel).name() == "UsCa";
            let body_is_uspt = db.relation(rule.body[0].rel).name() == "UsPT";
            // X must be the first attribute on both sides.
            head_is_usca
                && body_is_uspt
                && rule.head.terms[0] == rule.body[0].terms[0]
                && a.indices.cvr == Frac::ONE
        });
        assert!(hit, "the paper's cover-1 instantiation must appear");
    }

    #[test]
    fn db2_uspt_is_ternary() {
        let db = db2();
        assert_eq!(db.rel("UsPT").arity(), 3);
        // Type-2 instantiation of R(X,Z) <- P(X,Y), Q(Y,Z) can map R to
        // the ternary UsPT (Figure 2's motivation).
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let answers = naive::find_all(
            &db,
            &mq,
            InstType::Two,
            Thresholds::single(mq_core::index::IndexKind::Cnf, Frac::new(1, 2)),
        )
        .unwrap();
        let hit = answers.iter().any(|a| {
            let rule = mq_core::instantiate::apply_instantiation(&db, &mq, &a.inst).unwrap();
            db.relation(rule.head.rel).name() == "UsPT"
                && db.relation(rule.body[0].rel).name() == "UsCa"
                && db.relation(rule.body[1].rel).name() == "CaTe"
        });
        assert!(hit, "UsPT(X,Z,_) <- UsCa(X,Y), CaTe(Y,Z) should qualify");
    }
}
