//! Proposition 3.26: `#3SAT` ≤ `#BCQ` by a **parsimonious** reduction —
//! the number of satisfying assignments of the formula equals the number
//! of satisfying substitutions of the conjunctive query.
//!
//! Per clause `ci = x1 ∨ x2 ∨ x3`, the database holds a ternary relation
//! `ci = {0,1}³ − {(d1,d2,d3)}` where `dj = 0` if `xj` is positive and `1`
//! otherwise (the unique falsifying row), and the query has the atom
//! `ci(X1, X2, X3)` over the *variables* of the literals.

use crate::cnf::Cnf;
use mq_cq::{Atom, Cq};
use mq_relation::{Database, Term, Value, VarId};

/// The reduction output.
#[derive(Debug)]
pub struct SharpBcqInstance {
    /// One ternary relation per clause.
    pub db: Database,
    /// The conjunctive query with one atom per clause.
    pub query: Cq,
    /// Variables of the formula that occur in no clause (each doubles the
    /// model count relative to the query's substitution count).
    pub free_vars: usize,
}

impl SharpBcqInstance {
    /// `#SAT(F)` recovered from `#BCQ`: substitution count times
    /// `2^free_vars`.
    pub fn model_count(&self) -> u128 {
        mq_cq::count_homomorphisms(&self.db, &self.query) << self.free_vars
    }
}

/// Build the Proposition 3.26 instance for a 3-CNF formula.
pub fn reduce(f: &Cnf) -> SharpBcqInstance {
    let f = f.pad_to_3();
    let mut db = Database::new();
    let mut atoms = Vec::with_capacity(f.clauses.len());
    let mut used = vec![false; f.n_vars];
    for (i, clause) in f.clauses.iter().enumerate() {
        let rel = db.add_relation(format!("c{i}"), 3);
        // All of {0,1}^3 except the falsifying row.
        let falsifying: Vec<i64> = clause
            .iter()
            .map(|l| if l.positive { 0 } else { 1 })
            .collect();
        for bits in 0..8i64 {
            let row = [bits & 1, bits >> 1 & 1, bits >> 2 & 1];
            if row.to_vec() != falsifying {
                db.insert(rel, row.iter().map(|&v| Value::Int(v)).collect());
            }
        }
        let terms: Vec<Term> = clause
            .iter()
            .map(|l| {
                used[l.var] = true;
                Term::Var(VarId(l.var as u32))
            })
            .collect();
        atoms.push(Atom::new(rel, terms));
    }
    let free_vars = used.iter().filter(|&&u| !u).count();
    SharpBcqInstance {
        db,
        query: Cq::new(atoms),
        free_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;
    use crate::sat::count_models;
    use rand::prelude::*;

    #[test]
    fn single_clause_has_seven_models() {
        let f = Cnf::new(3, vec![vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)]]);
        let inst = reduce(&f);
        assert_eq!(inst.model_count(), 7);
        assert_eq!(count_models(&f), 7);
    }

    #[test]
    fn parsimonious_on_random_formulas() {
        let mut rng = StdRng::seed_from_u64(61);
        for round in 0..30 {
            let n = rng.gen_range(1..=7);
            let m = rng.gen_range(1..=6);
            let clauses = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| Lit {
                            var: rng.gen_range(0..n),
                            positive: rng.gen_bool(0.5),
                        })
                        .collect()
                })
                .collect();
            let f = Cnf::new(n, clauses);
            let inst = reduce(&f);
            assert_eq!(inst.model_count(), count_models(&f), "round {round}: {f}");
        }
    }

    #[test]
    fn unsatisfiable_formula_counts_zero() {
        // (x) ∧ (¬x) padded to 3-CNF
        let f = Cnf::new(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        let inst = reduce(&f);
        assert_eq!(inst.model_count(), 0);
    }

    #[test]
    fn free_variables_double_the_count() {
        // Formula over 3 vars but only var 0 occurs.
        let f = Cnf::new(3, vec![vec![Lit::pos(0)]]);
        let inst = reduce(&f);
        assert_eq!(inst.free_vars, 2);
        assert_eq!(inst.model_count(), 4);
        assert_eq!(count_models(&f), 4);
    }

    /// The constant-size property the proof relies on: each clause
    /// relation has exactly 7 rows.
    #[test]
    fn clause_relations_have_seven_rows() {
        let f = Cnf::new(
            4,
            vec![
                vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::pos(3), Lit::neg(2)],
            ],
        );
        let inst = reduce(&f);
        for rel in inst.db.relations() {
            assert_eq!(rel.len(), 7);
        }
    }
}
