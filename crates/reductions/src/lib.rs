//! # mq-reductions — the paper's complexity lab
//!
//! Executable versions of every reduction in §3 of *Computational
//! Properties of Metaquerying Problems*, together with the independent
//! solvers they are validated against:
//!
//! * [`cnf`] / [`sat`] — CNF formulas, DPLL satisfiability, exact `#SAT`
//!   model counting, and a direct `∃C-3SAT` solver (Definition 3.12);
//! * [`graph`] — graphs with exact 3-coloring and Hamiltonian-path
//!   solvers;
//! * [`reduce_3col`] — Theorem 3.21 (NP-hardness, any index, `k = 0`);
//! * [`reduce_semiacyclic`] — Theorem 3.35 (NP-hardness survives
//!   semi-acyclicity under type-0);
//! * [`reduce_hampath`] — Theorem 3.33 (NP-hardness survives acyclicity
//!   under types 1 and 2);
//! * [`reduce_ecsat`] — Theorems 3.28/3.29 (`NP^PP`-hardness of
//!   confidence with a threshold);
//! * [`reduce_sharp`] — Proposition 3.26 (parsimonious `#3SAT → #BCQ`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod graph;
pub mod reduce_3col;
pub mod reduce_ecsat;
pub mod reduce_hampath;
pub mod reduce_semiacyclic;
pub mod reduce_sharp;
pub mod sat;

pub use cnf::{Clause, Cnf, Lit};
pub use graph::Graph;
pub use sat::{count_models, count_models_given, satisfiable, EcsatInstance};
