//! Theorem 3.33: HAMILTONIAN PATH ≤p acyclic metaquerying under types 1
//! and 2 — acyclicity buys tractability only for type-0 instantiations.
//!
//! `DBham` holds a relation `g` with the single tuple `(v1, ..., vn)` of
//! node names and the binary edge relation `e`. The metaquery
//!
//! ```text
//! N(X1,...,Xn) <- N(X1,...,Xn), e(X1,X2), ..., e(X_{n-1},X_n)
//! ```
//!
//! is acyclic (the `N` literal is a witness ear for every `e` literal), and
//! under type-1/2 instantiations the predicate variable `N` matches `g`
//! with a *permutation* of its arguments — which is precisely a candidate
//! Hamiltonian ordering, validated by the `e` chain.

use crate::graph::Graph;
use mq_core::ast::{Metaquery, MetaqueryBuilder};
use mq_relation::{Database, Value};

/// The reduction output.
#[derive(Debug)]
pub struct HamPathInstance {
    /// `DBham`.
    pub db: Database,
    /// `MQham`.
    pub mq: Metaquery,
}

/// Build the Theorem 3.33 instance for `g`.
///
/// # Panics
/// Panics if `g.n < 3` (the theorem assumes `|V| > 2`; with `n = 2` the
/// pattern `N` could match the binary edge relation and break the
/// encoding).
pub fn reduce(g: &Graph) -> HamPathInstance {
    assert!(g.n >= 3, "Theorem 3.33 assumes |V| > 2");
    let mut db = Database::new();
    let grel = db.add_relation("g", g.n);
    let nodes: Vec<Value> = (0..g.n).map(|v| Value::Int(v as i64)).collect();
    db.insert(grel, nodes.into_boxed_slice());
    let e = db.add_relation("e", 2);
    for &(u, v) in &g.edges {
        db.insert(
            e,
            vec![Value::Int(u as i64), Value::Int(v as i64)].into_boxed_slice(),
        );
        db.insert(
            e,
            vec![Value::Int(v as i64), Value::Int(u as i64)].into_boxed_slice(),
        );
    }

    let mut b = MetaqueryBuilder::new();
    let n_pred = b.pred_var("N");
    let xs: Vec<_> = (0..g.n).map(|i| b.var(&format!("X{i}"))).collect();
    b.head_pattern(n_pred, xs.clone());
    b.body_pattern(n_pred, xs.clone());
    for w in xs.windows(2) {
        b.body_atom("e", vec![w[0], w[1]]);
    }
    HamPathInstance { db, mq: b.build() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_core::acyclic::{classify, MqClass};
    use mq_core::engine::{naive, MqProblem};
    use mq_core::index::IndexKind;
    use mq_core::instantiate::InstType;
    use mq_relation::Frac;
    use rand::prelude::*;

    fn decide(inst: &HamPathInstance, kind: IndexKind, ty: InstType) -> bool {
        naive::decide(
            &inst.db,
            &inst.mq,
            MqProblem {
                index: kind,
                threshold: Frac::ZERO,
                ty,
            },
        )
        .unwrap()
    }

    #[test]
    fn metaquery_is_acyclic() {
        let inst = reduce(&Graph::cycle(4));
        assert_eq!(classify(&inst.mq), MqClass::Acyclic);
    }

    #[test]
    fn cycle_yes_star_no() {
        let yes = reduce(&Graph::cycle(5));
        let star = Graph::new(4, &[(0, 1), (0, 2), (0, 3)]);
        let no = reduce(&star);
        for ty in [InstType::One, InstType::Two] {
            for kind in IndexKind::ALL {
                assert!(decide(&yes, kind, ty), "C5 {kind} {ty}");
                assert!(!decide(&no, kind, ty), "star {kind} {ty}");
            }
        }
    }

    #[test]
    fn type0_always_no_on_nontrivial_graphs() {
        // Under type-0 the identity argument order must itself be a
        // Hamiltonian path 0-1-2-...; build a graph whose only Hamiltonian
        // path is NOT the identity order.
        let g = Graph::new(3, &[(0, 2), (1, 0)]); // path 1-0-2
        let inst = reduce(&g);
        assert!(g.has_hamiltonian_path());
        assert!(!decide(&inst, IndexKind::Sup, InstType::Zero));
        assert!(decide(&inst, IndexKind::Sup, InstType::One));
    }

    #[test]
    fn matches_exact_solver_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..8 {
            let n = rng.gen_range(3..6);
            let g = Graph::random(n, 0.5, &mut rng);
            let inst = reduce(&g);
            assert_eq!(
                decide(&inst, IndexKind::Sup, InstType::One),
                g.has_hamiltonian_path(),
                "graph {g:?}"
            );
            assert_eq!(
                decide(&inst, IndexKind::Cnf, InstType::Two),
                g.has_hamiltonian_path(),
                "graph {g:?} (type 2)"
            );
        }
    }
}
