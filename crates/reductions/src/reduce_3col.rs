//! Theorem 3.21: 3-COLORING ≤p `⟨DB, MQ, I, 0, T⟩`.
//!
//! `DB3col` has one binary relation `e` holding the six properly-colored
//! ordered pairs over `{1,2,3}`. `MQ3col` encodes the input graph as a set
//! of relation patterns `E(Xu, Xv)` (one per edge, all with the single
//! predicate variable `E`), with the first body literal repeated as the
//! head. For every `I ∈ {sup, cnf, cvr}` and every type `T`, the problem
//! is a YES instance iff the graph is 3-colorable.

use crate::graph::Graph;
use mq_core::ast::{Metaquery, MetaqueryBuilder};
use mq_relation::{ints, Database};

/// The reduction output: a database and metaquery; any index with
/// threshold 0 and any instantiation type decides 3-colorability.
#[derive(Debug)]
pub struct ThreeColInstance {
    /// `DB3col`.
    pub db: Database,
    /// `MQ3col`.
    pub mq: Metaquery,
}

/// Build the Theorem 3.21 instance for `g`.
///
/// # Panics
/// Panics if the graph has no edges (the metaquery body would be empty —
/// an edgeless graph is trivially 3-colorable; handle it before reducing).
pub fn reduce(g: &Graph) -> ThreeColInstance {
    assert!(
        !g.edges.is_empty(),
        "edgeless graphs are trivially colorable; reduction needs >= 1 edge"
    );
    let mut db = Database::new();
    let e = db.add_relation("e", 2);
    for (a, b) in [(1, 2), (1, 3), (2, 3), (2, 1), (3, 1), (3, 2)] {
        db.insert(e, ints(&[a, b]));
    }

    let mut b = MetaqueryBuilder::new();
    let pred = b.pred_var("E");
    let node_var: Vec<_> = (0..g.n).map(|u| b.var(&format!("X{u}"))).collect();
    let (u0, v0) = g.edges[0];
    b.head_pattern(pred, vec![node_var[u0], node_var[v0]]);
    for &(u, v) in &g.edges {
        b.body_pattern(pred, vec![node_var[u], node_var[v]]);
    }
    ThreeColInstance { db, mq: b.build() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_core::acyclic::{classify, MqClass};
    use mq_core::engine::{naive, MqProblem};
    use mq_core::index::IndexKind;
    use mq_core::instantiate::InstType;
    use mq_relation::Frac;
    use rand::prelude::*;

    fn decide(inst: &ThreeColInstance, kind: IndexKind, ty: InstType) -> bool {
        naive::decide(
            &inst.db,
            &inst.mq,
            MqProblem {
                index: kind,
                threshold: Frac::ZERO,
                ty,
            },
        )
        .unwrap()
    }

    #[test]
    fn k3_yes_k4_no() {
        let yes = reduce(&Graph::complete(3));
        let no = reduce(&Graph::complete(4));
        for kind in IndexKind::ALL {
            assert!(decide(&yes, kind, InstType::Zero), "K3 via {kind}");
            assert!(!decide(&no, kind, InstType::Zero), "K4 via {kind}");
        }
    }

    #[test]
    fn all_types_agree_with_solver() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..12 {
            let n = rng.gen_range(3..7);
            let g = Graph::random(n, 0.6, &mut rng);
            if g.edges.is_empty() {
                continue;
            }
            let inst = reduce(&g);
            let expected = g.is_3_colorable();
            for ty in InstType::ALL {
                assert_eq!(
                    decide(&inst, IndexKind::Sup, ty),
                    expected,
                    "graph {g:?} type {ty}"
                );
            }
        }
    }

    #[test]
    fn odd_cycle_plus_apex() {
        // C5 plus a vertex adjacent to all: chromatic number 4 -> NO.
        let mut edges = Graph::cycle(5).edges.clone();
        for v in 0..5 {
            edges.push((v, 5));
        }
        let g = Graph::new(6, &edges);
        assert!(!g.is_3_colorable());
        let inst = reduce(&g);
        assert!(!decide(&inst, IndexKind::Cnf, InstType::Zero));
    }

    /// The reduction's metaquery is cyclic in general (it embeds the
    /// input graph), which is consistent with NP-hardness.
    #[test]
    fn reduction_metaquery_is_cyclic_for_cyclic_graphs() {
        let inst = reduce(&Graph::cycle(3));
        assert_ne!(classify(&inst.mq), MqClass::Acyclic);
    }
}
