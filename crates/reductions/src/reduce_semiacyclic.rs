//! Theorem 3.35: 3-COLORING ≤p semi-acyclic type-0 metaquerying.
//!
//! Unlike Theorem 3.21's metaquery (which embeds the input graph and is
//! as cyclic as the graph), this construction is always **semi-acyclic**,
//! showing that dropping predicate variables from the hypergraph is not
//! enough for tractability.
//!
//! `DB3col` has three binary relations encoding "other color → this
//! color": `r'(X,Y) = {(g,r),(b,r)}`, `g' = {(r,g),(b,g)}`,
//! `b' = {(g,b),(r,b)}`. The metaquery uses one predicate variable `X'_u`
//! per node `u` whose instantiation *is* the node's color; body literals
//! `X'_u(X_v, _)` per edge `(u,v)` force adjacent colors to differ, and
//! `X'_z(_, X_z)` literals tie each node variable to its own color.

use crate::graph::Graph;
use mq_core::ast::{Metaquery, MetaqueryBuilder};
use mq_relation::Database;

/// The reduction output.
#[derive(Debug)]
pub struct SemiAcyclicInstance {
    /// The fixed 3-relation database.
    pub db: Database,
    /// The semi-acyclic metaquery `MQ3col`.
    pub mq: Metaquery,
}

/// Build the Theorem 3.35 instance for `g`.
///
/// # Panics
/// Panics if the graph has no edges.
pub fn reduce(g: &Graph) -> SemiAcyclicInstance {
    assert!(!g.edges.is_empty(), "reduction needs >= 1 edge");
    let mut db = Database::new();
    let (r, gr, bl) = ("r", "g", "b");
    let sym = |db: &mut Database, s: &str| db.sym(s);
    let rv = sym(&mut db, r);
    let gv = sym(&mut db, gr);
    let bv = sym(&mut db, bl);
    let rp = db.add_relation("r'", 2);
    db.insert(rp, vec![gv, rv].into_boxed_slice());
    db.insert(rp, vec![bv, rv].into_boxed_slice());
    let gp = db.add_relation("g'", 2);
    db.insert(gp, vec![rv, gv].into_boxed_slice());
    db.insert(gp, vec![bv, gv].into_boxed_slice());
    let bp = db.add_relation("b'", 2);
    db.insert(bp, vec![gv, bv].into_boxed_slice());
    db.insert(bp, vec![rv, bv].into_boxed_slice());

    let mut b = MetaqueryBuilder::new();
    // Predicate variable per node; ordinary variable per node.
    let pred: Vec<_> = (0..g.n).map(|u| b.pred_var(&format!("C{u}"))).collect();
    let node_var: Vec<_> = (0..g.n).map(|u| b.var(&format!("X{u}"))).collect();

    // Head repeats the first S' literal (with its own mute variable).
    let (u0, v0) = g.edges[0];
    let head_mute = b.fresh();
    b.head_pattern(pred[u0], vec![node_var[v0], head_mute]);
    // S': one literal per edge (both directions — the graph is undirected
    // and the paper's S' uses the stored edge orientation; adding both
    // directions keeps the constraint symmetric and stays semi-acyclic).
    for &(u, v) in &g.edges {
        let m1 = b.fresh();
        b.body_pattern(pred[u], vec![node_var[v], m1]);
        let m2 = b.fresh();
        b.body_pattern(pred[v], vec![node_var[u], m2]);
    }
    // S'': tie each node's predicate variable to its ordinary variable.
    for z in 0..g.n {
        let m = b.fresh();
        b.body_pattern(pred[z], vec![m, node_var[z]]);
    }
    SemiAcyclicInstance { db, mq: b.build() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_core::acyclic::{classify, MqClass};
    use mq_core::engine::{naive, MqProblem};
    use mq_core::index::IndexKind;
    use mq_core::instantiate::InstType;
    use mq_relation::Frac;
    use rand::prelude::*;

    fn decide(inst: &SemiAcyclicInstance, kind: IndexKind) -> bool {
        naive::decide(
            &inst.db,
            &inst.mq,
            MqProblem {
                index: kind,
                threshold: Frac::ZERO,
                ty: InstType::Zero,
            },
        )
        .unwrap()
    }

    #[test]
    fn reduction_is_semi_acyclic_not_acyclic() {
        let g = Graph::cycle(4);
        let inst = reduce(&g);
        assert_eq!(classify(&inst.mq), MqClass::SemiAcyclic);
    }

    #[test]
    fn k3_yes_k4_no() {
        for kind in IndexKind::ALL {
            assert!(decide(&reduce(&Graph::complete(3)), kind), "{kind}");
            assert!(!decide(&reduce(&Graph::complete(4)), kind), "{kind}");
        }
    }

    #[test]
    fn matches_exact_solver_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let n = rng.gen_range(3..6);
            let g = Graph::random(n, 0.7, &mut rng);
            if g.edges.is_empty() {
                continue;
            }
            let inst = reduce(&g);
            assert_eq!(
                decide(&inst, IndexKind::Sup),
                g.is_3_colorable(),
                "graph {g:?}"
            );
        }
    }

    /// Decoding: a YES answer's instantiation is a coloring.
    #[test]
    fn answer_decodes_to_proper_coloring() {
        use mq_core::engine::Thresholds;
        let g = Graph::cycle(5);
        let inst = reduce(&g);
        let answers = naive::find_all(
            &inst.db,
            &inst.mq,
            InstType::Zero,
            Thresholds::single(IndexKind::Sup, Frac::ZERO),
        )
        .unwrap();
        assert!(!answers.is_empty());
        // Patterns: head (node u0) then body patterns; the last g.n body
        // patterns are the S'' literals for nodes 0..n in order.
        let ans = &answers[0];
        let n_maps = ans.inst.maps.len();
        let colors: Vec<u32> = (0..g.n)
            .map(|z| ans.inst.maps[n_maps - g.n + z].rel.0)
            .collect();
        for &(u, v) in &g.edges {
            assert_ne!(colors[u], colors[v], "edge ({u},{v}) monochrome");
        }
    }
}
