//! CNF formulas, the common currency of the paper's hardness proofs.

use std::fmt;

/// A literal: a variable index and a sign.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Lit {
    /// Variable index, `0..n_vars`.
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal.
    pub fn pos(var: usize) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal.
    pub fn neg(var: usize) -> Self {
        Lit {
            var,
            positive: false,
        }
    }

    /// Evaluate under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula over variables `0..n_vars`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables.
    pub n_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Build a formula.
    pub fn new(n_vars: usize, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for l in c {
                assert!(l.var < n_vars, "literal variable out of range");
            }
        }
        Cnf { n_vars, clauses }
    }

    /// Evaluate under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Whether every clause has at most three literals.
    pub fn is_3cnf(&self) -> bool {
        self.clauses.iter().all(|c| c.len() <= 3)
    }

    /// Pad clauses to exactly three literals by repeating a literal
    /// (semantically neutral), as the paper's reductions assume
    /// three-literal clauses.
    pub fn pad_to_3(&self) -> Cnf {
        let clauses = self
            .clauses
            .iter()
            .map(|c| {
                assert!(!c.is_empty() && c.len() <= 3, "clause size must be 1..=3");
                let mut c = c.clone();
                while c.len() < 3 {
                    c.push(c[0]);
                }
                c
            })
            .collect();
        Cnf {
            n_vars: self.n_vars,
            clauses,
        }
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        // (x0 ∨ ¬x1) ∧ (x1)
        let f = Cnf::new(2, vec![vec![Lit::pos(0), Lit::neg(1)], vec![Lit::pos(1)]]);
        assert!(f.eval(&[true, true]));
        assert!(!f.eval(&[false, true]));
        assert!(!f.eval(&[false, false])); // second clause fails
    }

    #[test]
    fn pad_to_3_preserves_semantics() {
        let f = Cnf::new(2, vec![vec![Lit::pos(0)], vec![Lit::neg(0), Lit::pos(1)]]);
        let g = f.pad_to_3();
        assert!(g.is_3cnf());
        for a in [[false, false], [false, true], [true, false], [true, true]] {
            assert_eq!(f.eval(&a), g.eval(&a));
        }
        assert!(g.clauses.iter().all(|c| c.len() == 3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let _ = Cnf::new(1, vec![vec![Lit::pos(3)]]);
    }
}
