//! Undirected graphs with exact solvers for the two NP-complete problems
//! the paper reduces from: 3-COLORING (Theorems 3.21, 3.35) and
//! HAMILTONIAN PATH (Theorem 3.33).

/// A simple undirected graph on vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Edges as unordered pairs `(u, v)` with `u < v`, deduplicated.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Build from an edge list (normalizes and deduplicates; self-loops
    /// are rejected).
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut norm: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(u, v)| {
                assert!(u < n && v < n, "vertex out of range");
                assert!(u != v, "self-loops not allowed");
                (u.min(v), u.max(v))
            })
            .collect();
        norm.sort_unstable();
        norm.dedup();
        Graph { n, edges: norm }
    }

    /// Adjacency matrix as bitmasks (usable for `n <= 64`).
    pub fn adjacency_masks(&self) -> Vec<u64> {
        assert!(self.n <= 64, "bitmask solvers support n <= 64");
        let mut adj = vec![0u64; self.n];
        for &(u, v) in &self.edges {
            adj[u] |= 1 << v;
            adj[v] |= 1 << u;
        }
        adj
    }

    /// Exact 3-coloring by backtracking: returns a proper coloring with
    /// colors `0..3`, or `None`.
    pub fn three_coloring(&self) -> Option<Vec<u8>> {
        let mut colors: Vec<Option<u8>> = vec![None; self.n];
        let adj: Vec<Vec<usize>> = {
            let mut a = vec![Vec::new(); self.n];
            for &(u, v) in &self.edges {
                a[u].push(v);
                a[v].push(u);
            }
            a
        };
        fn rec(v: usize, n: usize, adj: &[Vec<usize>], colors: &mut Vec<Option<u8>>) -> bool {
            if v == n {
                return true;
            }
            for c in 0..3u8 {
                if adj[v].iter().all(|&u| colors[u] != Some(c)) {
                    colors[v] = Some(c);
                    if rec(v + 1, n, adj, colors) {
                        return true;
                    }
                    colors[v] = None;
                }
            }
            false
        }
        if rec(0, self.n, &adj, &mut colors) {
            Some(colors.into_iter().map(|c| c.expect("complete")).collect())
        } else {
            None
        }
    }

    /// Whether the graph is 3-colorable.
    pub fn is_3_colorable(&self) -> bool {
        self.three_coloring().is_some()
    }

    /// Exact Hamiltonian path detection by Held-Karp bitmask DP
    /// (`O(2^n · n^2)`, for `n <= 24` or so).
    pub fn has_hamiltonian_path(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        if self.n == 1 {
            return true;
        }
        let adj = self.adjacency_masks();
        let full: u64 = if self.n == 64 {
            u64::MAX
        } else {
            (1 << self.n) - 1
        };
        // dp[mask] = set of possible endpoints of a path covering mask
        let mut dp = vec![0u64; (full as usize) + 1];
        for v in 0..self.n {
            dp[1 << v] |= 1 << v;
        }
        for mask in 1..=full {
            let ends = dp[mask as usize];
            if ends == 0 {
                continue;
            }
            if mask == full {
                return true;
            }
            let mut e = ends;
            while e != 0 {
                let v = e.trailing_zeros() as usize;
                e &= e - 1;
                let nexts = adj[v] & !mask;
                let mut nx = nexts;
                while nx != 0 {
                    let u = nx.trailing_zeros() as usize;
                    nx &= nx - 1;
                    dp[(mask | 1 << u) as usize] |= 1 << u;
                }
            }
        }
        dp[full as usize] != 0
    }

    /// A Hamiltonian path as a vertex sequence, if one exists
    /// (backtracking; intended for small `n`).
    pub fn hamiltonian_path(&self) -> Option<Vec<usize>> {
        let adj = self.adjacency_masks();
        fn rec(path: &mut Vec<usize>, used: u64, n: usize, adj: &[u64]) -> bool {
            if path.len() == n {
                return true;
            }
            let last = *path.last().expect("non-empty");
            for v in 0..n {
                if used & (1 << v) == 0 && adj[last] & (1 << v) != 0 {
                    path.push(v);
                    if rec(path, used | 1 << v, n, adj) {
                        return true;
                    }
                    path.pop();
                }
            }
            false
        }
        for start in 0..self.n {
            let mut path = vec![start];
            if rec(&mut path, 1 << start, self.n, &adj) {
                return Some(path);
            }
        }
        None
    }

    /// Erdős–Rényi random graph with edge probability `p`.
    pub fn random(n: usize, p: f64, rng: &mut impl rand::Rng) -> Self {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        Graph::new(n, &edges)
    }

    /// Complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        Graph::new(n, &edges)
    }

    /// Cycle graph `C_n`.
    pub fn cycle(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::new(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k4_is_not_3_colorable_k3_is() {
        assert!(!Graph::complete(4).is_3_colorable());
        assert!(Graph::complete(3).is_3_colorable());
    }

    #[test]
    fn odd_cycles() {
        // C5 is 3-chromatic, C6 is 2-chromatic — both 3-colorable.
        assert!(Graph::cycle(5).is_3_colorable());
        assert!(Graph::cycle(6).is_3_colorable());
    }

    #[test]
    fn coloring_is_proper() {
        let g = Graph::cycle(7);
        let c = g.three_coloring().unwrap();
        for &(u, v) in &g.edges {
            assert_ne!(c[u], c[v]);
        }
    }

    #[test]
    fn hamiltonian_paths() {
        assert!(Graph::complete(5).has_hamiltonian_path());
        assert!(Graph::cycle(6).has_hamiltonian_path());
        // A star K_{1,3} has no Hamiltonian path.
        let star = Graph::new(4, &[(0, 1), (0, 2), (0, 3)]);
        assert!(!star.has_hamiltonian_path());
    }

    #[test]
    fn hamiltonian_path_witness_is_valid() {
        let g = Graph::cycle(6);
        let p = g.hamiltonian_path().unwrap();
        assert_eq!(p.len(), 6);
        let mut seen = [false; 6];
        for &v in &p {
            assert!(!seen[v]);
            seen[v] = true;
        }
        let adj = g.adjacency_masks();
        for w in p.windows(2) {
            assert!(adj[w[0]] & (1 << w[1]) != 0);
        }
    }

    #[test]
    fn dp_and_backtracking_agree() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let n = rng.gen_range(2..8);
            let g = Graph::random(n, 0.4, &mut rng);
            assert_eq!(
                g.has_hamiltonian_path(),
                g.hamiltonian_path().is_some(),
                "graph {g:?}"
            );
        }
    }

    #[test]
    fn normalization_dedupes() {
        let g = Graph::new(3, &[(1, 0), (0, 1), (2, 1)]);
        assert_eq!(g.edges, vec![(0, 1), (1, 2)]);
    }
}
