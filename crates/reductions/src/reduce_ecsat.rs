//! Theorems 3.28 and 3.29: `∃C-3SAT ≤p ⟨DB, MQ, cnf, k, T⟩` — the
//! `NP^PP`-hardness of confidence with a threshold.
//!
//! Given `F = ⋀ ci` over `Π = {p1..ps}` and `χ = {q1..qh}` and a count
//! threshold `k'`, the reductions build a database and metaquery whose
//! confidence exceeds `k = (k'-1)/2^h` for some instantiation iff some
//! `Π`-assignment admits at least `k'` satisfying `χ`-assignments.
//!
//! * **Type-0** (Theorem 3.28): one predicate variable `P'_j` per `Π`
//!   variable; mapping it to `pa = {(1,0,l)}` reads "pj := true", to
//!   `pb = {(0,1,l)}` "pj := false".
//! * **Type-1/2** (Theorem 3.29): a single predicate variable `P'` over
//!   `p = {(1,0,l)}`; the *argument permutation* chooses the truth value,
//!   and the extra `ch(Y) = {(l)}` atom rules out stray matches.
//!
//! ### Deviation from the paper (documented in DESIGN.md)
//! For type-0, when the number of clauses `n` equals 3 the clause-vector
//! relation `c` has arity 3 = arity of `pa`/`pb`, so an instantiation
//! mapping **every** `P'_j` to `c` can create spurious confidence (all
//! literals forced to 1 simultaneously satisfies every `c'` row with
//! C = 1). We pad the formula with a duplicated clause in that case —
//! semantically neutral, and it restores the intended behaviour.

use crate::cnf::Lit;
use crate::sat::EcsatInstance;
use mq_core::ast::{Metaquery, MetaqueryBuilder};
use mq_core::instantiate::InstType;
use mq_relation::{Database, Frac, Value, VarId};

/// The reduction output: decide `cnf(σ(MQ)) > threshold` under `ty`.
#[derive(Debug)]
pub struct EcsatReduction {
    /// `DBcsat`.
    pub db: Database,
    /// `MQcsat`.
    pub mq: Metaquery,
    /// `k = (k'-1)/2^h`.
    pub threshold: Frac,
    /// The instantiation type the construction targets.
    pub ty: InstType,
}

fn literal_var(b: &mut MetaqueryBuilder, inst: &EcsatInstance, lit: Lit) -> VarId {
    // Position of the variable within Π or χ determines its name.
    if let Some(j) = inst.pi.iter().position(|&v| v == lit.var) {
        if lit.positive {
            b.var(&format!("P{j}"))
        } else {
            b.var(&format!("PB{j}"))
        }
    } else {
        let i = inst
            .chi
            .iter()
            .position(|&v| v == lit.var)
            .expect("variable in Π ∪ χ");
        if lit.positive {
            b.var(&format!("Q{i}"))
        } else {
            b.var(&format!("QB{i}"))
        }
    }
}

/// Insert the shared relations `q`, `c'`, `c` and return the `l` constant.
fn shared_relations(db: &mut Database, n_clauses: usize) -> Value {
    let l = db.sym("l");
    let q = db.add_relation("q", 2);
    db.insert(q, vec![Value::Int(1), Value::Int(0)].into_boxed_slice());
    db.insert(q, vec![Value::Int(0), Value::Int(1)].into_boxed_slice());
    let cp = db.add_relation("c'", 4);
    for bits in 0..8u8 {
        let l1 = i64::from(bits & 1);
        let l2 = i64::from(bits >> 1 & 1);
        let l3 = i64::from(bits >> 2 & 1);
        let c = i64::from(l1 + l2 + l3 > 0);
        db.insert(
            cp,
            vec![
                Value::Int(l1),
                Value::Int(l2),
                Value::Int(l3),
                Value::Int(c),
            ]
            .into_boxed_slice(),
        );
    }
    let c = db.add_relation("c", n_clauses);
    db.insert(
        c,
        (0..n_clauses)
            .map(|_| Value::Int(1))
            .collect::<Vec<_>>()
            .into_boxed_slice(),
    );
    l
}

/// Append the `q`, `c'` atoms and the `c` head to the builder.
fn shared_metaquery_parts(b: &mut MetaqueryBuilder, inst: &EcsatInstance, clauses: &[Vec<Lit>]) {
    // Head: c(C1, ..., Cn).
    let c_vars: Vec<VarId> = (0..clauses.len())
        .map(|i| b.var(&format!("C{i}")))
        .collect();
    b.head_atom("c", c_vars.clone());
    // q(Qi, QBi) per χ variable.
    for i in 0..inst.chi.len() {
        let qi = b.var(&format!("Q{i}"));
        let qbi = b.var(&format!("QB{i}"));
        b.body_atom("q", vec![qi, qbi]);
    }
    // c'(L1, L2, L3, Ci) per clause.
    for (i, clause) in clauses.iter().enumerate() {
        assert_eq!(clause.len(), 3, "pad the formula to 3-CNF first");
        let args: Vec<VarId> = clause
            .iter()
            .map(|&lit| literal_var(b, inst, lit))
            .chain(std::iter::once(c_vars[i]))
            .collect();
        b.body_atom("c'", args);
    }
}

/// Clause list with the type-0 arity-collision fix applied.
fn padded_clauses(inst: &EcsatInstance, avoid_arity3: bool) -> Vec<Vec<Lit>> {
    let mut clauses = inst.formula.pad_to_3().clauses;
    if avoid_arity3 && clauses.len() == 3 {
        let last = clauses[2].clone();
        clauses.push(last);
    }
    clauses
}

/// Theorem 3.28: the type-0 construction.
pub fn reduce_type0(inst: &EcsatInstance) -> EcsatReduction {
    inst.check();
    assert!(inst.k >= 1, "k' must be at least 1");
    let h = inst.chi.len();
    assert!(h < 63, "χ too large for a u64 threshold denominator");
    let clauses = padded_clauses(inst, true);

    let mut db = Database::new();
    let l = shared_relations(&mut db, clauses.len());
    let pa = db.add_relation("pa", 3);
    db.insert(pa, vec![Value::Int(1), Value::Int(0), l].into_boxed_slice());
    let pb = db.add_relation("pb", 3);
    db.insert(pb, vec![Value::Int(0), Value::Int(1), l].into_boxed_slice());

    let mut b = MetaqueryBuilder::new();
    shared_metaquery_parts(&mut b, inst, &clauses);
    // P'_j(Pj, PBj, Y) relation patterns.
    let y = b.var("Y");
    for j in 0..inst.pi.len() {
        let pj = b.var(&format!("P{j}"));
        let pbj = b.var(&format!("PB{j}"));
        let pv = b.pred_var(&format!("PP{j}"));
        b.body_pattern(pv, vec![pj, pbj, y]);
    }
    EcsatReduction {
        db,
        mq: b.build(),
        threshold: Frac::new((inst.k - 1) as u64, 1u64 << h),
        ty: InstType::Zero,
    }
}

/// Theorem 3.29: the type-1/type-2 construction (pass the intended `ty`).
pub fn reduce_type12(inst: &EcsatInstance, ty: InstType) -> EcsatReduction {
    assert!(matches!(ty, InstType::One | InstType::Two));
    inst.check();
    assert!(inst.k >= 1, "k' must be at least 1");
    let h = inst.chi.len();
    assert!(h < 63, "χ too large for a u64 threshold denominator");
    let clauses = padded_clauses(inst, false);

    let mut db = Database::new();
    let l = shared_relations(&mut db, clauses.len());
    let p = db.add_relation("p", 3);
    db.insert(p, vec![Value::Int(1), Value::Int(0), l].into_boxed_slice());
    let ch = db.add_relation("ch", 1);
    db.insert(ch, vec![l].into_boxed_slice());

    let mut b = MetaqueryBuilder::new();
    shared_metaquery_parts(&mut b, inst, &clauses);
    let y = b.var("Y");
    let pv = b.pred_var("PP");
    for j in 0..inst.pi.len() {
        let pj = b.var(&format!("P{j}"));
        let pbj = b.var(&format!("PB{j}"));
        b.body_pattern(pv, vec![pj, pbj, y]);
    }
    b.body_atom("ch", vec![y]);
    EcsatReduction {
        db,
        mq: b.build(),
        threshold: Frac::new((inst.k - 1) as u64, 1u64 << h),
        ty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;
    use mq_core::engine::{naive, MqProblem};
    use mq_core::index::IndexKind;
    use rand::prelude::*;

    fn decide(red: &EcsatReduction) -> bool {
        naive::decide(
            &red.db,
            &red.mq,
            MqProblem {
                index: IndexKind::Cnf,
                threshold: red.threshold,
                ty: red.ty,
            },
        )
        .unwrap()
    }

    fn random_instance(rng: &mut StdRng) -> EcsatInstance {
        let s: usize = rng.gen_range(1..=2);
        let h: usize = rng.gen_range(1..=3);
        let n_vars = s + h;
        let n_clauses = rng.gen_range(1..=4);
        let clauses = (0..n_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| Lit {
                        var: rng.gen_range(0..n_vars),
                        positive: rng.gen_bool(0.5),
                    })
                    .collect()
            })
            .collect();
        let k = rng.gen_range(1..=(1u128 << h));
        EcsatInstance {
            formula: Cnf::new(n_vars, clauses),
            pi: (0..s).collect(),
            chi: (s..n_vars).collect(),
            k,
        }
    }

    #[test]
    fn type0_matches_direct_solver() {
        let mut rng = StdRng::seed_from_u64(51);
        for round in 0..15 {
            let inst = random_instance(&mut rng);
            let red = reduce_type0(&inst);
            assert_eq!(
                decide(&red),
                inst.solve_direct(),
                "round {round}: F = {}, k' = {}, best = {}",
                inst.formula,
                inst.k,
                inst.best_count()
            );
        }
    }

    #[test]
    fn type1_matches_direct_solver() {
        let mut rng = StdRng::seed_from_u64(52);
        for round in 0..10 {
            let inst = random_instance(&mut rng);
            let red = reduce_type12(&inst, InstType::One);
            assert_eq!(
                decide(&red),
                inst.solve_direct(),
                "round {round}: F = {}, k' = {}",
                inst.formula,
                inst.k
            );
        }
    }

    #[test]
    fn type2_matches_direct_solver() {
        let mut rng = StdRng::seed_from_u64(53);
        for round in 0..5 {
            let inst = random_instance(&mut rng);
            let red = reduce_type12(&inst, InstType::Two);
            assert_eq!(
                decide(&red),
                inst.solve_direct(),
                "round {round}: F = {}, k' = {}",
                inst.formula,
                inst.k
            );
        }
    }

    /// The paper's worked example: F = (a ∨ b ∨ e) ∧ (¬a ∨ e ∨ d),
    /// Π = {a, b}, χ = {d, e}. Setting a = false, b = true satisfies
    /// clause 1 via b and clause 2 via ¬a, so all 4 (d, e) assignments
    /// work; no Π assignment can do better.
    #[test]
    fn paper_example_formula() {
        // vars: a=0, b=1, d=2, e=3
        let f = Cnf::new(
            4,
            vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(3)],
                vec![Lit::neg(0), Lit::pos(3), Lit::pos(2)],
            ],
        );
        let base = EcsatInstance {
            formula: f,
            pi: vec![0, 1],
            chi: vec![2, 3],
            k: 4,
        };
        assert_eq!(base.best_count(), 4);
        assert!(base.solve_direct());
        let red = reduce_type0(&base);
        assert!(decide(&red));
        let too_many = EcsatInstance { k: 5, ..base };
        assert!(!too_many.solve_direct());
        // k' = 5 exceeds 2^h = 4, so the threshold (k'-1)/2^h = 1 can
        // never be strictly exceeded.
        let red = reduce_type0(&too_many);
        assert!(!decide(&red));
    }

    /// Regression for the documented type-0 deviation: with exactly three
    /// clauses, an unsatisfiable formula must still reduce to NO.
    #[test]
    fn three_clause_arity_collision_fixed() {
        // F = p ∧ ¬p ∧ q over Π = {p}, χ = {q}: unsatisfiable.
        let f = Cnf::new(
            2,
            vec![vec![Lit::pos(0)], vec![Lit::neg(0)], vec![Lit::pos(1)]],
        );
        let inst = EcsatInstance {
            formula: f,
            pi: vec![0],
            chi: vec![1],
            k: 1,
        };
        assert!(!inst.solve_direct());
        let red = reduce_type0(&inst);
        assert!(!decide(&red), "arity-3 collision must not create a YES");
    }
}
