//! SAT solving, exact model counting (`#SAT`), and the direct
//! `∃C-3SAT` solver (Definition 3.12) used to validate the paper's
//! `NP^PP` reductions.

use crate::cnf::Cnf;

/// Clause state under a partial assignment.
enum ClauseState {
    Satisfied,
    Falsified,
    /// Some literals unassigned.
    Open,
}

fn clause_state(clause: &[crate::cnf::Lit], assignment: &[Option<bool>]) -> ClauseState {
    let mut open = false;
    for l in clause {
        match assignment[l.var] {
            Some(v) if v == l.positive => return ClauseState::Satisfied,
            Some(_) => {}
            None => open = true,
        }
    }
    if open {
        ClauseState::Open
    } else {
        ClauseState::Falsified
    }
}

/// DPLL-style satisfiability with unit propagation.
pub fn satisfiable(f: &Cnf) -> bool {
    let mut assignment = vec![None; f.n_vars];
    sat_rec(f, &mut assignment)
}

fn sat_rec(f: &Cnf, assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation.
    let mut units: Vec<(usize, bool)> = Vec::new();
    loop {
        let mut changed = false;
        for clause in &f.clauses {
            let mut unassigned = None;
            let mut n_unassigned = 0;
            let mut satisfied = false;
            for l in clause {
                match assignment[l.var] {
                    Some(v) if v == l.positive => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        unassigned = Some(*l);
                        n_unassigned += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => {
                    // Falsified clause: undo propagations and fail.
                    for (v, _) in units {
                        assignment[v] = None;
                    }
                    return false;
                }
                1 => {
                    let l = unassigned.expect("one unassigned");
                    assignment[l.var] = Some(l.positive);
                    units.push((l.var, l.positive));
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
    // Pick a branching variable.
    let branch = (0..f.n_vars).find(|&v| assignment[v].is_none());
    let result = match branch {
        None => true, // all assigned, no clause falsified
        Some(v) => {
            let mut ok = false;
            for val in [true, false] {
                assignment[v] = Some(val);
                if sat_rec(f, assignment) {
                    ok = true;
                    break;
                }
                assignment[v] = None;
            }
            if !ok {
                assignment[v] = None;
            }
            ok
        }
    };
    if !result {
        for (v, _) in units {
            assignment[v] = None;
        }
    }
    result
}

/// Exact `#SAT`: the number of satisfying assignments over all
/// `f.n_vars` variables (Theorem 3.25's problem).
pub fn count_models(f: &Cnf) -> u128 {
    let mut assignment = vec![None; f.n_vars];
    count_rec(f, &mut assignment, 0)
}

fn count_rec(f: &Cnf, assignment: &mut Vec<Option<bool>>, from: usize) -> u128 {
    // Check clause states; multiply free variables when all satisfied.
    let mut all_satisfied = true;
    for clause in &f.clauses {
        match clause_state(clause, assignment) {
            ClauseState::Falsified => return 0,
            ClauseState::Open => all_satisfied = false,
            ClauseState::Satisfied => {}
        }
    }
    let unassigned = (from..f.n_vars)
        .filter(|&v| assignment[v].is_none())
        .count()
        + (0..from).filter(|&v| assignment[v].is_none()).count();
    if all_satisfied {
        return 1u128 << unassigned;
    }
    let v = (from..f.n_vars)
        .chain(0..from)
        .find(|&v| assignment[v].is_none())
        .expect("open clause implies an unassigned variable");
    let mut total = 0;
    for val in [true, false] {
        assignment[v] = Some(val);
        total += count_rec(f, assignment, v + 1);
        assignment[v] = None;
    }
    total
}

/// Count satisfying assignments of the `chi` variables given fixed values
/// for the `pi` variables (all other variables must be in `chi`).
pub fn count_models_given(f: &Cnf, pi: &[(usize, bool)]) -> u128 {
    let mut assignment = vec![None; f.n_vars];
    for &(v, val) in pi {
        assignment[v] = Some(val);
    }
    count_rec(f, &mut assignment, 0)
}

/// An `∃C-3SAT` instance (Definition 3.12): is there an assignment of the
/// `pi` variables such that at least `k` assignments of the `chi`
/// variables satisfy `f`? Variables of `f` must be partitioned into
/// `pi ∪ chi`.
#[derive(Clone, Debug)]
pub struct EcsatInstance {
    /// The 3-CNF formula.
    pub formula: Cnf,
    /// The existentially quantified variables Π.
    pub pi: Vec<usize>,
    /// The counted variables χ.
    pub chi: Vec<usize>,
    /// The count threshold `k'`.
    pub k: u128,
}

impl EcsatInstance {
    /// Validate the variable partition.
    pub fn check(&self) {
        let mut seen = vec![false; self.formula.n_vars];
        for &v in self.pi.iter().chain(self.chi.iter()) {
            assert!(!seen[v], "variable {v} in both Π and χ");
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "Π ∪ χ must cover all formula variables"
        );
    }

    /// Direct exponential solver: max over Π assignments of the χ model
    /// count, compared with `k`.
    pub fn solve_direct(&self) -> bool {
        self.check();
        let s = self.pi.len();
        for bits in 0..(1u64 << s) {
            let pi_assignment: Vec<(usize, bool)> = self
                .pi
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, bits >> i & 1 == 1))
                .collect();
            if count_models_given(&self.formula, &pi_assignment) >= self.k {
                return true;
            }
        }
        false
    }

    /// The maximum χ model count over Π assignments (for diagnostics).
    pub fn best_count(&self) -> u128 {
        self.check();
        let s = self.pi.len();
        let mut best = 0;
        for bits in 0..(1u64 << s) {
            let pi_assignment: Vec<(usize, bool)> = self
                .pi
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, bits >> i & 1 == 1))
                .collect();
            best = best.max(count_models_given(&self.formula, &pi_assignment));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;

    fn brute_count(f: &Cnf) -> u128 {
        let mut n = 0;
        for bits in 0..(1u64 << f.n_vars) {
            let a: Vec<bool> = (0..f.n_vars).map(|i| bits >> i & 1 == 1).collect();
            if f.eval(&a) {
                n += 1;
            }
        }
        n
    }

    #[test]
    fn sat_simple() {
        let f = Cnf::new(2, vec![vec![Lit::pos(0)], vec![Lit::neg(0), Lit::pos(1)]]);
        assert!(satisfiable(&f));
        let g = Cnf::new(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert!(!satisfiable(&g));
    }

    #[test]
    fn count_matches_brute_force() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..40 {
            let n = rng.gen_range(1..=8);
            let m = rng.gen_range(0..=10);
            let clauses: Vec<Vec<Lit>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| Lit {
                            var: rng.gen_range(0..n),
                            positive: rng.gen_bool(0.5),
                        })
                        .collect()
                })
                .collect();
            let f = Cnf::new(n, clauses);
            assert_eq!(count_models(&f), brute_count(&f), "formula {f}");
            assert_eq!(satisfiable(&f), brute_count(&f) > 0);
        }
    }

    #[test]
    fn empty_formula_counts_all_assignments() {
        let f = Cnf::new(3, vec![]);
        assert_eq!(count_models(&f), 8);
    }

    #[test]
    fn conditioned_count() {
        // f = (x0 ∨ x1): given x0 = false, one satisfying x1 value.
        let f = Cnf::new(2, vec![vec![Lit::pos(0), Lit::pos(1)]]);
        assert_eq!(count_models_given(&f, &[(0, false)]), 1);
        assert_eq!(count_models_given(&f, &[(0, true)]), 2);
    }

    #[test]
    fn ecsat_direct() {
        // F = (p ∨ q1) ∧ (¬p ∨ q2); Π = {p}, χ = {q1, q2}.
        // p=true: F = q2 → 2 models (q1 free). p=false: F = q1 → 2 models.
        let f = Cnf::new(
            3,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::pos(2)],
            ],
        );
        let inst = EcsatInstance {
            formula: f,
            pi: vec![0],
            chi: vec![1, 2],
            k: 2,
        };
        assert!(inst.solve_direct());
        assert_eq!(inst.best_count(), 2);
        let harder = EcsatInstance {
            k: 3,
            ..inst.clone()
        };
        assert!(!harder.solve_direct());
    }

    #[test]
    #[should_panic(expected = "both")]
    fn overlapping_partition_rejected() {
        let f = Cnf::new(2, vec![]);
        let inst = EcsatInstance {
            formula: f,
            pi: vec![0, 1],
            chi: vec![1],
            k: 1,
        };
        inst.check();
    }
}
