//! E14 — regenerate the Theorem 4.12 width-scaling experiment: the cost
//! of the support computation should scale as `d^c · log d` where `c` is
//! the hypertree width of the body. We fit log-log slopes per width.
//!
//! Run: `cargo run -p mq-bench --release --bin thm412_table`

use mq_bench::{chain_workload, clique_workload, cycle_workload, loglog_slope, time, Workload};
use mq_core::engine::find_rules::{body_decomposition, find_rules};
use mq_core::prelude::*;
use mq_relation::Frac;

fn run(w: &Workload) -> usize {
    find_rules(
        &w.db,
        &w.mq,
        InstType::Zero,
        Thresholds::single(IndexKind::Sup, Frac::new(9, 10)),
    )
    .unwrap()
    .len()
}

fn series(label: &str, width: usize, pts: &[(usize, f64)]) {
    let fpts: Vec<(f64, f64)> = pts.iter().map(|&(d, t)| (d as f64, t)).collect();
    let slope = loglog_slope(&fpts);
    print!("{label:<22} c={width}  ");
    for (d, t) in pts {
        print!("d={d}: {t:.4}s  ");
    }
    println!("| slope {slope:.2} (theory <= {width} + o(1) via d^c log d)");
}

fn main() {
    println!("Theorem 4.12 — support computation vs database size d, by body width c\n");

    let mut pts = Vec::new();
    for d in [200usize, 400, 800, 1600] {
        let w = chain_workload(2, d, d as i64 / 4, 2);
        assert_eq!(body_decomposition(&w.mq).width, 1);
        let (_, t) = time(|| run(&w));
        pts.push((d, t));
    }
    series("width-1 (chain-2)", 1, &pts);

    let mut pts = Vec::new();
    for d in [100usize, 200, 400, 800] {
        let w = cycle_workload(2, d, d as i64 / 4, 4);
        assert_eq!(body_decomposition(&w.mq).width, 2);
        let (_, t) = time(|| run(&w));
        pts.push((d, t));
    }
    series("width-2 (cycle-4)", 2, &pts);

    let mut pts = Vec::new();
    for d in [20usize, 40, 80, 160] {
        let w = clique_workload(1, d, d as i64 / 3, 6);
        assert_eq!(body_decomposition(&w.mq).width, 3);
        let (_, t) = time(|| run(&w));
        pts.push((d, t));
    }
    series("width-3 (clique-6)", 3, &pts);

    println!(
        "\nReading: slopes should increase with the width c and stay at or below c \
         (semijoin reduction often beats the worst case on random data)."
    );
}
