//! Machine-readable `findRules` performance report.
//!
//! Runs the Figure 4 workload family (data scaling, width contrast at
//! widths 1/2/3, pruning ablation), a Figure 5-style combined-
//! complexity point, and the paper's telecom running example under
//! type-2 instantiations (answer count pinned to the Figure 1 worked
//! example) through **both** join cores — the optimized plan-IR
//! executor and the pre-optimization baseline kept in-tree behind
//! [`mq_relation::set_baseline_mode`] — and writes medians, rows/sec
//! and speedups to `BENCH_findrules.json` so successive PRs have a
//! perf trajectory.
//!
//! Run: `cargo run --release -p mq-bench --bin bench_report`
//!
//! Also enforces the width-2 regression guard: `fig4_width2_cycle4` must
//! stay within a sane factor of `fig4_width1_chain2` (the PR-2 λ-join
//! planner fix), and the width-3 throughput floor: `fig4_width3_star4`
//! must sustain `MQ_BENCH_MIN_WIDTH3_RPS` rows/sec (default 4000 — the
//! columnar-kernel floor), so the CI bench smoke run fails if the
//! planner or the columnar kernels regress.
//!
//! Knobs: `MQ_BENCH_SAMPLES` (default 5) timed samples per
//! (workload, core); `MQ_BENCH_ONLY=<substring>` restricts the run to
//! workloads whose name contains the substring (single-series runs;
//! guards needing absent workloads are skipped); `MQ_BENCH_OUT`
//! overrides the output path; `MQ_BENCH_MAX_WIDTH2_LAG` (default 30)
//! the guard threshold; `MQ_BENCH_THREADS=1,2,4` additionally times the
//! optimized core at each listed worker count (via the scheduler's
//! thread override — the first entry is the primary measurement the
//! speedup guards use), so shared-vs-private memo scaling shows up in
//! the perf trajectory even before real many-core hardware is
//! available. The report records the `threads`, `split_depth` and
//! `shared_memo` configuration the scheduler ran with (`MQ_THREADS`,
//! `MQ_SPLIT_DEPTH`, `MQ_SHARED_MEMO`), plus per-workload shared-memo
//! hit/miss counters.
//!
//! The `net_load` workload drives the hardened TCP serving layer with
//! concurrent client connections and records tail latency and
//! error/recovery counts; its knobs are `MQ_BENCH_NET_CONNS` (default
//! 120), `MQ_BENCH_NET_REQS` (default 5 requests per connection),
//! `MQ_BENCH_NET_FAULTS` (an `MQ_FAULTS`-syntax plan injected for the
//! run) and `MQ_BENCH_MAX_NET_P99_MS` (latency guard, default 10000).
//!
//! Three observability workloads round out the report: `node_profile`
//! runs one detailed-profile search and writes the top plan nodes by
//! self wall time (id, rendered label, execs, memo hits, row traffic);
//! `trace_overhead` times the same fig4 search with tracing forced off
//! and on in paired batches (median-of-differences estimator), failing
//! if the slowdown exceeds `MQ_BENCH_MAX_TRACE_OVERHEAD_PCT` (default
//! 5%); and `scrape_overhead` runs a small TCP load with the flight-
//! recorder scraper off vs at the default 1 s cadence, failing if the
//! p99 regression exceeds `MQ_BENCH_MAX_SCRAPE_OVERHEAD_PCT` (default
//! 5%).
//!
//! Besides the per-run `BENCH_findrules.json`, every run appends one
//! compact record to `BENCH_history.jsonl` (`MQ_BENCH_HISTORY`
//! overrides the path) — run ordinal, optimized medians, net p99,
//! overhead percentages — and prints a delta-vs-previous table, so the
//! perf trajectory across PRs lives in one machine-readable file.

use mq_bench::netload::{run_load, LoadConfig, LoadReport};
use mq_bench::{
    chain_workload, cycle_workload, hybrid_star_workload, mid_thresholds, time, Workload,
};
use mq_core::engine::find_rules::{
    find_rules, find_rules_instrumented, find_rules_seq, find_rules_shared,
};
use mq_core::engine::memo::{shared_memo_enabled, MemoStats, SharedMemos};
use mq_core::plan::PlanNodeId;
use mq_core::prelude::*;
use mq_obs::NodeStat;
use mq_relation::{set_baseline_mode, Frac};
use mq_service::{handle_line, MetaqueryRequest, MqService, NetConfig, NetServer};
use std::cell::Cell;
use std::sync::Arc;

struct Row {
    name: String,
    rows: usize,
    total_tuples: usize,
    answers: usize,
    median_opt_s: f64,
    median_base_s: f64,
    /// Shared-memo traffic accumulated over the primary optimized
    /// samples (zero when `MQ_SHARED_MEMO=0`).
    memo: MemoStats,
    /// `(worker count, optimized median)` per `MQ_BENCH_THREADS` entry;
    /// empty when no sweep was requested.
    by_threads: Vec<(usize, f64)>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.median_base_s / self.median_opt_s.max(1e-12)
    }

    fn rows_per_sec(&self) -> f64 {
        self.total_tuples as f64 / self.median_opt_s.max(1e-12)
    }
}

fn samples() -> usize {
    std::env::var("MQ_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(5)
}

/// The `MQ_BENCH_ONLY` substring filter, if set (and non-empty).
fn bench_only() -> Option<String> {
    std::env::var("MQ_BENCH_ONLY")
        .ok()
        .filter(|s| !s.is_empty())
}

/// The `MQ_BENCH_THREADS` sweep (e.g. `1,2,4`): worker counts to time
/// the optimized core at. Empty when unset — one measurement at the
/// ambient thread count, exactly the pre-sweep behavior.
fn thread_sweep() -> Vec<usize> {
    std::env::var("MQ_BENCH_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| {
                    // Dropping an entry silently would shift which count
                    // the primary measurement (and the guards) run at;
                    // a misconfiguration must be loud.
                    match t.trim().parse::<usize>() {
                        Ok(n) if n > 0 => Some(n),
                        _ => {
                            eprintln!(
                                "MQ_BENCH_THREADS: ignoring invalid entry {t:?} \
                                 (want positive integers, e.g. \"1,2,4\")"
                            );
                            None
                        }
                    }
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Median of `n` timed runs of `f` (which returns the answer count).
fn median_secs(n: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut secs = Vec::with_capacity(n);
    let mut answers = 0;
    for _ in 0..n {
        let (a, s) = time(&mut f);
        answers = a;
        secs.push(s);
    }
    secs.sort_by(f64::total_cmp);
    (secs[secs.len() / 2], answers)
}

/// Measure `w` under both cores and append a row — unless the workload
/// name misses the `MQ_BENCH_ONLY` filter.
fn measure(
    rows_out: &mut Vec<Row>,
    name: &str,
    w: &Workload,
    rows: usize,
    ty: InstType,
    th: Thresholds,
) {
    if let Some(only) = bench_only() {
        if !name.contains(&only) {
            eprintln!("{name}: skipped (MQ_BENCH_ONLY={only})");
            return;
        }
    }
    let n = samples();
    let run = || find_rules(&w.db, &w.mq, ty, th).unwrap().len();
    let sweep = thread_sweep();
    // Primary measurement: the first sweep entry, or the ambient thread
    // count when no sweep was requested. Each primary sample runs its
    // search against an explicitly-owned memo service whose instance
    // stats are accumulated here, so the reported hit rate covers
    // exactly the primary samples with no cross-search bleed.
    let memo_total = Cell::new(MemoStats::default());
    let (median_opt_s, answers) = {
        let measured = || match shared_memo_enabled().then(|| Arc::new(SharedMemos::new())) {
            Some(memos) => {
                let out = find_rules_shared(&w.db, &w.mq, ty, th, Arc::clone(&memos))
                    .unwrap()
                    .len();
                memo_total.set(memo_total.get().merged(memos.stats()));
                out
            }
            None => run(),
        };
        match sweep.first() {
            Some(&t) => {
                // The thread override is the shim-rayon knob the scheduler
                // tests use; it avoids unsound env mutation.
                rayon::set_thread_override(Some(t));
                let out = median_secs(n, measured);
                rayon::set_thread_override(None);
                out
            }
            None => median_secs(n, measured),
        }
    };
    let memo = memo_total.get();
    // Remaining sweep entries re-time the optimized core only.
    let mut by_threads: Vec<(usize, f64)> = Vec::new();
    if let Some((&first, rest)) = sweep.split_first() {
        by_threads.push((first, median_opt_s));
        for &t in rest {
            rayon::set_thread_override(Some(t));
            let (m, a) = median_secs(n, run);
            rayon::set_thread_override(None);
            assert_eq!(a, answers, "{name}: answers changed at {t} threads");
            by_threads.push((t, m));
        }
    }
    // Baseline always runs sequentially (baseline mode disables the
    // scheduler), but keep the primary thread override in force anyway
    // so both medians are measured under one configuration.
    set_baseline_mode(true);
    if let Some(&t) = sweep.first() {
        rayon::set_thread_override(Some(t));
    }
    let (median_base_s, base_answers) = median_secs(n, run);
    rayon::set_thread_override(None);
    set_baseline_mode(false);
    assert_eq!(
        answers, base_answers,
        "optimized and baseline cores must agree on {name}"
    );
    eprintln!(
        "{name}: opt {median_opt_s:.5}s  base {median_base_s:.5}s  ({:.2}x, {answers} answers, \
         memo {:.0}% hit)",
        median_base_s / median_opt_s.max(1e-12),
        memo.hit_rate() * 100.0
    );
    rows_out.push(Row {
        name: name.to_string(),
        rows,
        total_tuples: w.db.total_tuples(),
        answers,
        median_opt_s,
        median_base_s,
        memo,
        by_threads,
    });
}

/// Results of the `service_concurrent_sessions` workload.
struct ServiceReport {
    sessions: usize,
    rounds: usize,
    requests: u64,
    executed: u64,
    deduped: u64,
    /// Cross-search atom-cache traffic (the catalog's persistent cache).
    atom: MemoStats,
    /// Per-search shared-memo traffic summed over executed searches.
    memo: MemoStats,
    wall_s: f64,
}

/// N concurrent sessions × M metaqueries × R rounds over one fig4-style
/// database served by `mq-service`: measures what the serving layer adds
/// over bare `find_rules` — in-flight dedup of identical requests and
/// cross-search atom-cache hits — while asserting the answers stay
/// byte-identical to a cold `find_rules_seq` run.
fn bench_service() -> Option<ServiceReport> {
    const NAME: &str = "service_concurrent_sessions";
    if let Some(only) = bench_only() {
        if !NAME.contains(&only) {
            eprintln!("{NAME}: skipped (MQ_BENCH_ONLY={only})");
            return None;
        }
    }
    const SESSIONS: usize = 4;
    const ROUNDS: usize = 2;
    const MQS: [&str; 3] = [
        "R(X,Z) <- P(X,Y), Q(Y,Z)",
        "R(X,Y) <- P(X,Y), Q(X,Y)",
        "P(X,Z) <- P(X,Y), P(Y,Z)",
    ];
    let w = chain_workload(3, 120, 40, 2);
    let th = mid_thresholds();
    let svc = Arc::new(MqService::new());
    svc.register("fig4", w.db.clone())
        .expect("register fig4 db");
    // Cold references per metaquery, for the byte-identity guard.
    let expected: Vec<Vec<MqAnswer>> = MQS
        .iter()
        .map(|mq| find_rules_seq(&w.db, &parse_metaquery(mq).unwrap(), InstType::Zero, th).unwrap())
        .collect();
    let (_, wall_s) = time(|| {
        std::thread::scope(|s| {
            for _ in 0..SESSIONS {
                let svc = Arc::clone(&svc);
                let expected = &expected;
                s.spawn(move || {
                    for _round in 0..ROUNDS {
                        for (i, mq) in MQS.iter().enumerate() {
                            let mut req = MetaqueryRequest::new("fig4", *mq);
                            req.thresholds = th;
                            let out = svc.query(&req).expect("service query");
                            assert_eq!(
                                *out.answers, expected[i],
                                "service answers diverged from find_rules_seq on {mq}"
                            );
                        }
                    }
                });
            }
        });
    });
    let m = svc.metrics();
    let atom = svc.atom_cache_stats("fig4").expect("fig4 stats");
    if shared_memo_enabled() {
        assert!(
            atom.hits > 0,
            "repeated sessions over an unchanged db must hit the \
             cross-search atom cache, got {atom:?}"
        );
    }
    assert_eq!(m.requests, (SESSIONS * ROUNDS * MQS.len()) as u64);
    assert_eq!(m.executed + m.deduped, m.requests);
    eprintln!(
        "{NAME}: {} requests in {wall_s:.3}s — {} executed, {} deduped, \
         atom cache {:.0}% hit ({} hits / {} misses)",
        m.requests,
        m.executed,
        m.deduped,
        atom.hit_rate() * 100.0,
        atom.hits,
        atom.misses
    );
    Some(ServiceReport {
        sessions: SESSIONS,
        rounds: ROUNDS,
        requests: m.requests,
        executed: m.executed,
        deduped: m.deduped,
        atom,
        memo: m.memo,
        wall_s,
    })
}

/// Results of the `net_load` workload.
struct NetLoadReport {
    load: LoadReport,
    /// Fault sites that fired during the run: `(site, fired, polled)`.
    faults: Vec<(String, u64, u64)>,
}

/// Hundreds of concurrent TCP connections (default 120, or
/// `MQ_BENCH_NET_CONNS`) in a closed loop against the hardened serving
/// layer, each issuing `MQ_BENCH_NET_REQS` (default 5) identical `mine`
/// requests: measures serving tail latency (p50/p95/p99), throughput,
/// and the error/recovery accounting. `MQ_BENCH_NET_FAULTS` injects a
/// fault plan (same `site:prob:seed` syntax as `MQ_FAULTS`) for the
/// duration of the run — the chaos smoke uses it — under which the run
/// still must answer every failure structurally and never corrupt a
/// successful reply (byte-identity against an in-process reference).
fn bench_net_load() -> Option<NetLoadReport> {
    const NAME: &str = "net_load";
    if let Some(only) = bench_only() {
        if !NAME.contains(&only) {
            eprintln!("{NAME}: skipped (MQ_BENCH_ONLY={only})");
            return None;
        }
    }
    let env_n = |key: &str, default: usize| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(default)
    };
    let connections = env_n("MQ_BENCH_NET_CONNS", 120);
    let requests_per_conn = env_n("MQ_BENCH_NET_REQS", 5);
    let fault_plan = std::env::var("MQ_BENCH_NET_FAULTS")
        .ok()
        .filter(|s| !s.is_empty())
        .map(|spec| mq_service::FaultPlan::parse(&spec).expect("MQ_BENCH_NET_FAULTS"));
    let faulted = fault_plan.is_some();

    let w = chain_workload(3, 120, 40, 2);
    let svc = Arc::new(MqService::new());
    svc.register("fig4", w.db.clone()).expect("register fig4");
    let request = "mine fig4 sup=1/10 cvr=1/10 cnf=1/10 :: R(X,Z) <- P(X,Y), Q(Y,Z)".to_string();
    // The reference block comes from the in-process protocol handler —
    // itself regression-tested byte-identical to `find_rules_seq` — so
    // every successful TCP reply is transitively checked against the
    // sequential engine.
    let expected = handle_line(&svc, &request).lines().to_vec();
    assert!(
        expected[0].starts_with("ok mine "),
        "reference request failed: {}",
        expected[0]
    );
    let mut server = NetServer::bind(
        Arc::clone(&svc),
        NetConfig {
            max_connections: connections + 8,
            default_wall_ms: Some(30_000),
            ..NetConfig::default()
        },
    )
    .expect("bind net_load server");
    let cfg = LoadConfig {
        connections,
        requests_per_conn,
        request,
        expected: Some(expected),
        ..LoadConfig::default()
    };
    // Scope the fault plan to the load run (it is process-global).
    mq_service::set_plan_override(fault_plan);
    let load = run_load(server.local_addr(), &cfg);
    let faults = mq_service::faults::fired_counts();
    mq_service::set_plan_override(None);
    let drain = server.shutdown();

    // The robustness contract, asserted on every bench run: no crashes
    // (the server survived to drain), every failure structured, every
    // successful answer byte-identical.
    assert_eq!(load.mismatches, 0, "corrupted replies under load");
    assert!(
        load.all_failures_structured(),
        "unstructured failures under load: {load:?}"
    );
    if !faulted {
        assert_eq!(
            load.ok, load.sent,
            "clean run must answer every request ok: {load:?}"
        );
    }
    let max_p99: f64 = std::env::var("MQ_BENCH_MAX_NET_P99_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000.0);
    assert!(
        load.p99_ms <= max_p99,
        "net_load p99 {:.1}ms exceeds {max_p99}ms (MQ_BENCH_MAX_NET_P99_MS)",
        load.p99_ms
    );
    eprintln!(
        "{NAME}: {} conns × {} reqs in {:.3}s — {} ok, {} err, {} reconnects; \
         p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms, {:.0} req/s; drained {} aborted {}",
        connections,
        requests_per_conn,
        load.wall_s,
        load.ok,
        load.err_total(),
        load.reconnects,
        load.p50_ms,
        load.p95_ms,
        load.p99_ms,
        load.throughput_rps(),
        drain.drained,
        drain.aborted,
    );
    Some(NetLoadReport { load, faults })
}

/// Results of the `node_profile` workload.
struct NodeProfileReport {
    workload: &'static str,
    answers: usize,
    wall_s: f64,
    /// `(plan-node id, label, stats)` — top nodes by self wall time.
    nodes: Vec<(usize, String, NodeStat)>,
}

/// One detailed-profile run of the width-2 cycle workload (the most
/// plan-diverse fig4 shape: scans, projections, hash joins and
/// semijoins all appear): attributes wall time, executions, memo hits
/// and row traffic to hash-consed plan-node ids and reports the top
/// nodes with their rendered labels. This is the per-plan-node view the
/// slow-query log serves online; surfacing it in the bench report gives
/// successive PRs an attribution trajectory, not just end-to-end
/// medians.
fn bench_node_profile() -> Option<NodeProfileReport> {
    const NAME: &str = "node_profile";
    const WORKLOAD: &str = "fig4_width2_cycle4";
    const TOP_NODES: usize = 10;
    if let Some(only) = bench_only() {
        if !NAME.contains(&only) {
            eprintln!("{NAME}: skipped (MQ_BENCH_ONLY={only})");
            return None;
        }
    }
    let w = cycle_workload(2, 120, 18, 4);
    let th = mid_thresholds();
    let memos = Arc::new(SharedMemos::new());
    let profile = Arc::new(mq_obs::SearchProfile::detailed());
    let (answers, wall_s) = time(|| {
        find_rules_instrumented(
            &w.db,
            &w.mq,
            InstType::Zero,
            th,
            Some(Arc::clone(&memos)),
            None,
            Some(Arc::clone(&profile)),
            0,
        )
        .unwrap()
        .len()
    });
    let nodes: Vec<(usize, String, NodeStat)> = profile
        .top_nodes(TOP_NODES)
        .into_iter()
        .map(|(id, st)| {
            let label = memos
                .describe_plan_node(PlanNodeId(id as u32))
                .unwrap_or_else(|| format!("node#{id}"));
            (id, label, st)
        })
        .collect();
    assert!(
        !nodes.is_empty(),
        "{NAME}: a detailed profile over {WORKLOAD} attributed no plan nodes"
    );
    eprintln!(
        "{NAME}: {WORKLOAD} in {wall_s:.4}s — {} plan nodes profiled, hottest {} ({}ns self)",
        nodes.len(),
        nodes[0].1,
        nodes[0].2.wall_ns,
    );
    Some(NodeProfileReport {
        workload: WORKLOAD,
        answers,
        wall_s,
        nodes,
    })
}

/// Results of the `trace_overhead` workload.
struct TraceOverheadReport {
    workload: &'static str,
    untraced_s: f64,
    traced_s: f64,
    overhead_pct: f64,
}

/// The instrumentation-cost contract: the same fig4 search timed with
/// tracing forced off and forced on (spans recorded, per-node profiling
/// live). The median overhead must stay under
/// `MQ_BENCH_MAX_TRACE_OVERHEAD_PCT` (default 5%), so an accidentally
/// hot `span!` site or profiling in the disabled path fails the bench
/// smoke run.
fn bench_trace_overhead() -> Option<TraceOverheadReport> {
    const NAME: &str = "trace_overhead";
    // The largest fig4 chain point: long enough (~tens of ms) that the
    // median isn't timer noise, which a percentage guard needs.
    const WORKLOAD: &str = "fig4_findrules_chain_d450";
    if let Some(only) = bench_only() {
        if !NAME.contains(&only) {
            eprintln!("{NAME}: skipped (MQ_BENCH_ONLY={only})");
            return None;
        }
    }
    let w = chain_workload(3, 450, 150, 2);
    let th = mid_thresholds();
    let n = samples();
    // A single search is ~1ms — far too close to scheduler jitter for a
    // percentage guard. Each timed sample batches REPS searches and the
    // off/on sides run back-to-back as *pairs* (so slow drift —
    // thermal, cache, competing load — hits both sides of a pair
    // equally). The estimator is the median of per-pair differences
    // over the median untraced batch: unlike per-side minima, a single
    // noisy batch perturbs at most one pair, and the median of the
    // remaining differences still reflects the true per-search cost.
    // The guard stays one-sided — a negative difference (tracing
    // "faster", i.e. pure noise) can only pass.
    const REPS: usize = 50;
    let run = || find_rules(&w.db, &w.mq, InstType::Zero, th).unwrap().len();
    let batch = || {
        let mut answers = 0;
        for _ in 0..REPS {
            answers = run();
        }
        answers
    };
    batch(); // warm caches off the clock so neither side pays them
    let pairs = n.max(5);
    let mut offs = Vec::with_capacity(pairs);
    let mut diffs = Vec::with_capacity(pairs);
    let (mut a_off, mut a_on) = (0, 0);
    for _ in 0..pairs {
        mq_obs::set_trace_override(Some(false));
        let (a, s_off) = time(batch);
        a_off = a;
        mq_obs::set_trace_override(Some(true));
        let (a, s_on) = time(batch);
        a_on = a;
        offs.push(s_off / REPS as f64);
        diffs.push((s_on - s_off) / REPS as f64);
    }
    mq_obs::set_trace_override(None);
    assert_eq!(a_off, a_on, "{NAME}: tracing changed the answers");
    offs.sort_by(f64::total_cmp);
    diffs.sort_by(f64::total_cmp);
    let untraced_s = offs[offs.len() / 2];
    let diff_s = diffs[diffs.len() / 2];
    let traced_s = untraced_s + diff_s;
    let overhead_pct = diff_s / untraced_s.max(1e-12) * 100.0;
    let max_pct: f64 = std::env::var("MQ_BENCH_MAX_TRACE_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    assert!(
        overhead_pct <= max_pct,
        "{NAME}: tracing added {overhead_pct:.2}% ({untraced_s:.5}s -> {traced_s:.5}s), \
         over the {max_pct}% limit (MQ_BENCH_MAX_TRACE_OVERHEAD_PCT)"
    );
    eprintln!(
        "{NAME}: untraced {untraced_s:.5}s  traced {traced_s:.5}s  ({overhead_pct:+.2}%, \
         limit {max_pct}%)"
    );
    Some(TraceOverheadReport {
        workload: WORKLOAD,
        untraced_s,
        traced_s,
        overhead_pct,
    })
}

/// Results of the `scrape_overhead` workload.
struct ScrapeOverheadReport {
    p99_off_ms: f64,
    p99_on_ms: f64,
    overhead_pct: f64,
    /// Scrape ticks observed during the recorder-on runs.
    scrapes: u64,
}

/// The flight-recorder cost contract: the same small TCP load run with
/// the scraper forced off and at the default 1 s cadence. A single
/// run's p99 is its few slowest requests — bursty scheduler noise
/// moves it ±30% run-to-run — so the estimator stacks three defenses:
/// runs are *paired* (off/on back-to-back, so slow drift hits both
/// sides of a pair), the order within a pair *alternates* (so the
/// drift a pair can't cancel is charged to each side equally), and the
/// guard metric is the *median* of per-pair p99 differences (so a
/// noise burst has to corrupt a majority of the nine pairs to move
/// the verdict). The regression must stay under
/// `MQ_BENCH_MAX_SCRAPE_OVERHEAD_PCT` (default 5%), with a 3 ms
/// absolute jitter floor: the estimator's residual spread on a busy
/// container is ±2 ms, while any real scraper pathology (a pegged
/// core, registry lock contention) shifts p99 by far more than 3 ms.
fn bench_scrape_overhead() -> Option<ScrapeOverheadReport> {
    const NAME: &str = "scrape_overhead";
    if let Some(only) = bench_only() {
        if !NAME.contains(&only) {
            eprintln!("{NAME}: skipped (MQ_BENCH_ONLY={only})");
            return None;
        }
    }
    const PAIRS: usize = 9;
    let w = chain_workload(3, 120, 40, 2);
    let svc = Arc::new(MqService::new());
    svc.register("fig4", w.db.clone()).expect("register fig4");
    let request = "mine fig4 sup=1/10 cvr=1/10 cnf=1/10 :: R(X,Z) <- P(X,Y), Q(Y,Z)".to_string();
    let expected = handle_line(&svc, &request).lines().to_vec();
    assert!(
        expected[0].starts_with("ok mine "),
        "reference request failed: {}",
        expected[0]
    );
    // One side of a pair: bind a server (the bind spawns — or skips —
    // the scraper per the forced cadence), run the load, return every
    // completed request's latency.
    let run_side = |scrape: Option<u64>| -> Vec<f64> {
        mq_obs::set_scrape_ms_override(scrape);
        let mut server = NetServer::bind(
            Arc::clone(&svc),
            NetConfig {
                max_connections: 40,
                default_wall_ms: Some(30_000),
                ..NetConfig::default()
            },
        )
        .expect("bind scrape_overhead server");
        // Few enough connections that p99 measures the request path
        // rather than scheduler queuing storms, and enough requests
        // that a run's p99 is a real quantile (the 8th slowest of
        // ~768), not just its single slowest request.
        let cfg = LoadConfig {
            connections: 12,
            requests_per_conn: 64,
            request: request.clone(),
            expected: Some(expected.clone()),
            ..LoadConfig::default()
        };
        let load = run_load(server.local_addr(), &cfg);
        server.shutdown();
        mq_obs::set_scrape_ms_override(None);
        assert_eq!(load.mismatches, 0, "{NAME}: corrupted replies under load");
        assert_eq!(
            load.ok, load.sent,
            "{NAME}: clean run must answer every request ok: {load:?}"
        );
        load.latencies_ms
    };
    let run_p99 = |scrape: Option<u64>| -> f64 {
        let mut lat = run_side(scrape);
        lat.sort_by(f64::total_cmp);
        mq_bench::netload::percentile(&lat, 0.99)
    };
    // Warm the whole stack (page cache, memo caches, accept path) off
    // the clock so the process-cold first run lands on neither side.
    let _ = run_p99(Some(0));
    let mut offs = Vec::with_capacity(PAIRS);
    let mut diffs = Vec::with_capacity(PAIRS);
    let before = svc.recorder().scrapes();
    // Alternate which side of a pair runs first: the process slows
    // slightly as service state accumulates across runs, and a fixed
    // order would charge that drift entirely to the second side.
    for pair in 0..PAIRS {
        let run_off = || -> f64 {
            let at_off = svc.recorder().scrapes();
            let p99 = run_p99(Some(0));
            assert_eq!(
                svc.recorder().scrapes(),
                at_off,
                "{NAME}: the scraper ticked while forced off"
            );
            p99
        };
        let (off, on) = if pair % 2 == 0 {
            let off = run_off();
            (off, run_p99(Some(1_000)))
        } else {
            let on = run_p99(Some(1_000));
            (run_off(), on)
        };
        offs.push(off);
        diffs.push(on - off);
    }
    let scrapes = svc.recorder().scrapes() - before;
    assert!(
        scrapes >= PAIRS as u64,
        "{NAME}: the scraper never ticked during the recorder-on runs"
    );
    offs.sort_by(f64::total_cmp);
    diffs.sort_by(f64::total_cmp);
    let p99_off_ms = offs[offs.len() / 2];
    let diff_ms = diffs[diffs.len() / 2];
    let p99_on_ms = p99_off_ms + diff_ms;
    let overhead_pct = diff_ms / p99_off_ms.max(1.0) * 100.0;
    let max_pct: f64 = std::env::var("MQ_BENCH_MAX_SCRAPE_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    assert!(
        diff_ms <= (p99_off_ms.max(1.0) * max_pct / 100.0).max(3.0),
        "{NAME}: 1s scraping moved net p99 {p99_off_ms:.2}ms -> {p99_on_ms:.2}ms \
         ({overhead_pct:+.2}%), over the {max_pct}% limit (MQ_BENCH_MAX_SCRAPE_OVERHEAD_PCT)"
    );
    eprintln!(
        "{NAME}: p99 off {p99_off_ms:.3}ms  on {p99_on_ms:.3}ms  ({overhead_pct:+.2}%, \
         limit {max_pct}%, {scrapes} scrapes)"
    );
    Some(ScrapeOverheadReport {
        p99_off_ms,
        p99_on_ms,
        overhead_pct,
        scrapes,
    })
}

/// Parse `"name": <number>` pairs out of a history record's
/// `workloads` object — hand-rolled like the writer, since the
/// workspace carries no JSON dependency.
fn parse_history_workloads(line: &str) -> Vec<(String, f64)> {
    let Some(start) = line.find("\"workloads\": {") else {
        return Vec::new();
    };
    let rest = &line[start + "\"workloads\": {".len()..];
    let Some(end) = rest.find('}') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|pair| {
            let (k, v) = pair.split_once(':')?;
            let name = k.trim().trim_matches('"').to_string();
            let v = v.trim().parse::<f64>().ok()?;
            Some((name, v))
        })
        .collect()
}

/// The integer right after `key` in a single-line JSON record.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let i = line.find(key)? + key.len();
    line[i..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

/// The perf trajectory: append one compact JSONL record per bench run
/// to `BENCH_history.jsonl` (`MQ_BENCH_HISTORY` overrides the path)
/// with a monotonic run ordinal read back from the previous record, and
/// print a delta-vs-previous table so a regression is visible in the
/// bench log itself, not only by diffing report files across commits.
fn append_history(
    rows: &[Row],
    net_load: &Option<NetLoadReport>,
    trace_overhead: &Option<TraceOverheadReport>,
    scrape_overhead: &Option<ScrapeOverheadReport>,
) {
    let path = std::env::var("MQ_BENCH_HISTORY").unwrap_or_else(|_| "BENCH_history.jsonl".into());
    let prev_line = std::fs::read_to_string(&path).ok().and_then(|s| {
        s.lines()
            .rev()
            .find(|l| !l.trim().is_empty())
            .map(str::to_string)
    });
    let prev_run = prev_line.as_deref().and_then(|l| field_u64(l, "\"run\": "));
    let run = prev_run.map_or(1, |r| r + 1);
    let prev_medians = prev_line
        .as_deref()
        .map(parse_history_workloads)
        .unwrap_or_default();

    let t_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let threads = thread_sweep()
        .first()
        .copied()
        .unwrap_or_else(rayon::current_num_threads);
    let workloads = rows
        .iter()
        .map(|r| format!("\"{}\": {:.6}", r.name, r.median_opt_s))
        .collect::<Vec<_>>()
        .join(", ");
    let mut record = format!(
        "{{\"run\": {run}, \"t_unix\": {t_unix}, \"threads\": {threads}, \
         \"workloads\": {{{workloads}}}"
    );
    if let Some(n) = net_load {
        record.push_str(&format!(
            ", \"net_p99_ms\": {:.3}, \"net_rps\": {:.1}",
            n.load.p99_ms,
            n.load.throughput_rps()
        ));
    }
    if let Some(t) = trace_overhead {
        record.push_str(&format!(", \"trace_overhead_pct\": {:.3}", t.overhead_pct));
    }
    if let Some(s) = scrape_overhead {
        record.push_str(&format!(", \"scrape_overhead_pct\": {:.3}", s.overhead_pct));
    }
    record.push_str("}\n");

    use std::io::Write;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(record.as_bytes()))
        .expect("append BENCH_history.jsonl");
    println!("appended run {run} to {path}");

    if let Some(prev) = prev_run {
        eprintln!("trajectory: run {run} vs run {prev}");
        eprintln!(
            "  {:<28} {:>12} {:>12} {:>8}",
            "workload", "prev_s", "now_s", "delta"
        );
        for r in rows {
            match prev_medians.iter().find(|(n, _)| *n == r.name) {
                Some((_, p)) => eprintln!(
                    "  {:<28} {:>12.6} {:>12.6} {:>+7.1}%",
                    r.name,
                    p,
                    r.median_opt_s,
                    (r.median_opt_s - p) / p.max(1e-12) * 100.0
                ),
                None => eprintln!(
                    "  {:<28} {:>12} {:>12.6}     new",
                    r.name, "-", r.median_opt_s
                ),
            }
        }
    }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // Figure 4 data scaling: chain metaquery (width 1), growing d.
    for d in [50usize, 150, 450] {
        let w = chain_workload(3, d, (d as i64) / 3, 2);
        measure(
            &mut rows,
            &format!("fig4_findrules_chain_d{d}"),
            &w,
            d,
            InstType::Zero,
            mid_thresholds(),
        );
    }

    // Figure 4 width contrast at fixed d: widths 1, 2 and 3.
    let d = 120usize;
    let chain = chain_workload(2, d, 18, 2);
    measure(
        &mut rows,
        "fig4_width1_chain2",
        &chain,
        d,
        InstType::Zero,
        mid_thresholds(),
    );
    let cycle = cycle_workload(2, d, 18, 4);
    measure(
        &mut rows,
        "fig4_width2_cycle4",
        &cycle,
        d,
        InstType::Zero,
        mid_thresholds(),
    );
    // Width-3 star/clique hybrid (K5 body: 4 pattern spokes + fixed rim):
    // the deepest node joins the planner sees; smaller d, the K5 join is
    // the cost driver, not the data volume.
    let d3 = 60usize;
    let hybrid = hybrid_star_workload(2, d3, 12, 4);
    measure(
        &mut rows,
        "fig4_width3_star4",
        &hybrid,
        d3,
        InstType::Zero,
        mid_thresholds(),
    );

    // Figure 4 pruning ablation: thresholds that cut vs keep everything.
    let w = chain_workload(3, 250, 20, 2);
    measure(
        &mut rows,
        "fig4_pruning_on",
        &w,
        250,
        InstType::Zero,
        Thresholds::all(Frac::new(1, 2), Frac::ZERO, Frac::ZERO),
    );
    measure(
        &mut rows,
        "fig4_pruning_off",
        &w,
        250,
        InstType::Zero,
        Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
    );

    // Figure 5-style combined complexity: longer chain at fixed d.
    let w = chain_workload(4, 80, 12, 3);
    measure(
        &mut rows,
        "fig5_combined_chain3",
        &w,
        80,
        InstType::Zero,
        mid_thresholds(),
    );

    // The paper's telecom running example (Figures 1-2) under type-2
    // instantiations: tiny, but shape-diverse in a way the random
    // fig4/fig5 workloads are not — mixed arities and padded
    // instantiations exercise the per-atom body assembly (padding
    // variables live outside every χ) and the columnar kernels' small-
    // relation paths. Guarded below by the worked example's known
    // answer count.
    let telecom = Workload {
        db: mq_datagen::telecom::db1(),
        mq: parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap(),
    };
    let telecom_tuples = telecom.db.total_tuples();
    measure(
        &mut rows,
        "telecom_fig1_type2",
        &telecom,
        telecom_tuples,
        InstType::Two,
        Thresholds::none(),
    );
    if let Some(r) = rows.iter().find(|r| r.name == "telecom_fig1_type2") {
        assert_eq!(
            r.answers, 216,
            "telecom_fig1_type2: Figure 1 worked-example answer count drifted"
        );
    }

    // The serving-layer workload (dedup + cross-search atom cache).
    let service = bench_service();

    // The hardened-TCP workload (tail latency + error/recovery counts).
    let net_load = bench_net_load();

    // Per-plan-node attribution of one detailed-profile search.
    let node_profile = bench_node_profile();

    // The instrumentation-cost guard (traced vs untraced medians).
    let trace_overhead = bench_trace_overhead();

    // The flight-recorder cost guard (scraper off vs 1 s cadence).
    let scrape_overhead = bench_scrape_overhead();

    assert!(
        !rows.is_empty()
            || service.is_some()
            || net_load.is_some()
            || node_profile.is_some()
            || trace_overhead.is_some()
            || scrape_overhead.is_some(),
        "MQ_BENCH_ONLY matched no workload — nothing to report"
    );

    // Aggregate: the fig4 findRules series' median speedup (when the
    // series ran — MQ_BENCH_ONLY may have filtered it out).
    let mut fig4_speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.name.starts_with("fig4_findrules_chain"))
        .map(Row::speedup)
        .collect();
    fig4_speedups.sort_by(f64::total_cmp);
    let fig4_median_speedup = fig4_speedups.get(fig4_speedups.len() / 2).copied();

    // Width-2 regression guard: the cycle workload must stay within a sane
    // factor of the width-1 chain at the same d. Before the λ-join planner
    // the lag was ~41× (an unplanned cross-product intermediate in every
    // multi-atom node join); with it the medians sit around 20× — the
    // cycle genuinely does more work (16 body instantiations × a ~2k-row
    // body join) but no longer pathologically so. CI runs this binary, so
    // a planner regression fails the bench smoke step. Overridable for
    // exotic hardware via MQ_BENCH_MAX_WIDTH2_LAG; skipped when
    // MQ_BENCH_ONLY filtered either side out.
    let chain2 = rows.iter().find(|r| r.name == "fig4_width1_chain2");
    let cycle4 = rows.iter().find(|r| r.name == "fig4_width2_cycle4");
    let width2_lag = match (chain2, cycle4) {
        (Some(c2), Some(c4)) => {
            let lag = c4.median_opt_s / c2.median_opt_s.max(1e-12);
            let max_lag: f64 = std::env::var("MQ_BENCH_MAX_WIDTH2_LAG")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(30.0);
            assert!(
                lag <= max_lag,
                "width-2 regression: fig4_width2_cycle4 ({:.5}s) is {lag:.1}x slower than \
                 fig4_width1_chain2 ({:.5}s); limit {max_lag}x (MQ_BENCH_MAX_WIDTH2_LAG)",
                c4.median_opt_s,
                c2.median_opt_s,
            );
            Some(lag)
        }
        _ => None,
    };

    // Width-3 throughput floor: the deepest node joins the planner sees
    // must sustain MQ_BENCH_MIN_WIDTH3_RPS optimized rows/sec. The
    // pre-columnar core measured ~2.8k rows/sec on this workload and the
    // columnar core ~10k, so the default floor of 4000 trips on a full
    // columnar regression while leaving headroom for slow CI runners.
    if let Some(r) = rows.iter().find(|r| r.name == "fig4_width3_star4") {
        let floor: f64 = std::env::var("MQ_BENCH_MIN_WIDTH3_RPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4000.0);
        assert!(
            r.rows_per_sec() >= floor,
            "width-3 regression: fig4_width3_star4 ran at {:.0} rows/sec, \
             below the floor of {floor:.0} (MQ_BENCH_MIN_WIDTH3_RPS)",
            r.rows_per_sec(),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"samples_per_case\": {},\n", samples()));
    // `threads` records the worker count the *primary* medians (and the
    // guards) were measured at: the first sweep entry, or the ambient
    // count when no sweep was requested.
    let sweep = thread_sweep();
    json.push_str(&format!(
        "  \"threads\": {},\n  \"split_depth\": {},\n  \"shared_memo\": {},\n",
        sweep
            .first()
            .copied()
            .unwrap_or_else(rayon::current_num_threads),
        mq_core::engine::parallel::split_depth(),
        shared_memo_enabled(),
    ));
    if !sweep.is_empty() {
        json.push_str(&format!(
            "  \"thread_sweep\": [{}],\n",
            sweep
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if let Some(s) = fig4_median_speedup {
        json.push_str(&format!("  \"fig4_median_speedup\": {s:.3},\n"));
    }
    if let Some(lag) = width2_lag {
        json.push_str(&format!("  \"width2_lag_vs_chain\": {lag:.3},\n"));
    }
    if let Some(s) = &service {
        json.push_str(&format!(
            "  \"service_concurrent_sessions\": {{\"sessions\": {}, \"rounds\": {}, \
             \"requests\": {}, \"executed\": {}, \"deduped\": {}, \
             \"atom_cache_hits\": {}, \"atom_cache_misses\": {}, \
             \"atom_cache_hit_rate\": {:.3}, \"memo_hits\": {}, \
             \"memo_misses\": {}, \"wall_s\": {:.6}}},\n",
            s.sessions,
            s.rounds,
            s.requests,
            s.executed,
            s.deduped,
            s.atom.hits,
            s.atom.misses,
            s.atom.hit_rate(),
            s.memo.hits,
            s.memo.misses,
            s.wall_s
        ));
    }
    if let Some(n) = &net_load {
        let l = &n.load;
        let errs = l
            .errs
            .iter()
            .map(|(code, count)| format!("\"{code}\": {count}"))
            .collect::<Vec<_>>()
            .join(", ");
        let faults = n
            .faults
            .iter()
            .map(|(site, fired, polled)| format!("\"{site}\": [{fired}, {polled}]"))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "  \"net_load\": {{\"connections\": {}, \"requests\": {}, \"ok\": {}, \
             \"errs\": {{{errs}}}, \"reconnects\": {}, \"lost\": {}, \"mismatches\": {}, \
             \"unstructured\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"throughput_rps\": {:.1}, \"wall_s\": {:.6}, \"faults_fired\": {{{faults}}}}},\n",
            l.connections,
            l.sent,
            l.ok,
            l.reconnects,
            l.lost,
            l.mismatches,
            l.unstructured,
            l.p50_ms,
            l.p95_ms,
            l.p99_ms,
            l.throughput_rps(),
            l.wall_s,
        ));
    }
    if let Some(p) = &node_profile {
        let nodes = p
            .nodes
            .iter()
            .map(|(id, label, st)| {
                format!(
                    "{{\"id\": {id}, \"label\": \"{label}\", \"wall_ns\": {}, \
                     \"execs\": {}, \"memo_hits\": {}, \"rows_in\": {}, \"rows_out\": {}}}",
                    st.wall_ns, st.execs, st.memo_hits, st.rows_in, st.rows_out
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "  \"node_profile\": {{\"workload\": \"{}\", \"answers\": {}, \
             \"wall_s\": {:.6}, \"nodes\": [{nodes}]}},\n",
            p.workload, p.answers, p.wall_s
        ));
    }
    if let Some(t) = &trace_overhead {
        json.push_str(&format!(
            "  \"trace_overhead\": {{\"workload\": \"{}\", \"untraced_s\": {:.6}, \
             \"traced_s\": {:.6}, \"overhead_pct\": {:.3}}},\n",
            t.workload, t.untraced_s, t.traced_s, t.overhead_pct
        ));
    }
    if let Some(s) = &scrape_overhead {
        json.push_str(&format!(
            "  \"scrape_overhead\": {{\"p99_off_ms\": {:.3}, \"p99_on_ms\": {:.3}, \
             \"overhead_pct\": {:.3}, \"scrapes\": {}}},\n",
            s.p99_off_ms, s.p99_on_ms, s.overhead_pct, s.scrapes
        ));
    }
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let by_threads = if r.by_threads.is_empty() {
            String::new()
        } else {
            format!(
                ", \"by_threads\": {{{}}}",
                r.by_threads
                    .iter()
                    .map(|(t, m)| format!("\"{t}\": {m:.6}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"total_tuples\": {}, \"answers\": {}, \
             \"median_optimized_s\": {:.6}, \"median_baseline_s\": {:.6}, \
             \"speedup\": {:.3}, \"rows_per_sec\": {:.1}, \
             \"memo_hits\": {}, \"memo_misses\": {}, \"memo_hit_rate\": {:.3}{}}}{}\n",
            r.name,
            r.rows,
            r.total_tuples,
            r.answers,
            r.median_opt_s,
            r.median_base_s,
            r.speedup(),
            r.rows_per_sec(),
            r.memo.hits,
            r.memo.misses,
            r.memo.hit_rate(),
            by_threads,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("MQ_BENCH_OUT").unwrap_or_else(|_| "BENCH_findrules.json".into());
    std::fs::write(&out, &json).expect("write BENCH_findrules.json");
    println!("wrote {out}");
    // A filtered run measures one workload in isolation; recording it
    // would poison the trajectory with rows that compare nothing.
    if bench_only().is_none() {
        append_history(&rows, &net_load, &trace_overhead, &scrape_overhead);
    }
    if let Some(s) = fig4_median_speedup {
        println!("fig4 findRules median speedup vs baseline core: {s:.2}x");
    }
}
