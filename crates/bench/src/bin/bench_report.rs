//! Machine-readable `findRules` performance report.
//!
//! Runs the Figure 4 workload family (data scaling, width contrast,
//! pruning ablation) and a Figure 5-style combined-complexity point
//! through **both** join cores — the optimized allocation-free kernels
//! and the pre-optimization baseline kept in-tree behind
//! [`mq_relation::set_baseline_mode`] — and writes medians, rows/sec and
//! speedups to `BENCH_findrules.json` so successive PRs have a perf
//! trajectory.
//!
//! Run: `cargo run --release -p mq-bench --bin bench_report`
//!
//! Also enforces the width-2 regression guard: `fig4_width2_cycle4` must
//! stay within a sane factor of `fig4_width1_chain2` (the PR-2 λ-join
//! planner fix), so the CI bench smoke run fails if the planner regresses.
//!
//! Knobs: `MQ_BENCH_SAMPLES` (default 5) timed samples per
//! (workload, core); `MQ_BENCH_OUT` overrides the output path;
//! `MQ_BENCH_MAX_WIDTH2_LAG` (default 30) the guard threshold.

use mq_bench::{chain_workload, cycle_workload, mid_thresholds, time, Workload};
use mq_core::engine::find_rules::find_rules;
use mq_core::prelude::*;
use mq_relation::{set_baseline_mode, Frac};

struct Row {
    name: String,
    rows: usize,
    total_tuples: usize,
    answers: usize,
    median_opt_s: f64,
    median_base_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.median_base_s / self.median_opt_s.max(1e-12)
    }

    fn rows_per_sec(&self) -> f64 {
        self.total_tuples as f64 / self.median_opt_s.max(1e-12)
    }
}

fn samples() -> usize {
    std::env::var("MQ_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(5)
}

/// Median of `n` timed runs of `f` (which returns the answer count).
fn median_secs(n: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut secs = Vec::with_capacity(n);
    let mut answers = 0;
    for _ in 0..n {
        let (a, s) = time(&mut f);
        answers = a;
        secs.push(s);
    }
    secs.sort_by(f64::total_cmp);
    (secs[secs.len() / 2], answers)
}

fn measure(name: &str, w: &Workload, rows: usize, th: Thresholds) -> Row {
    let n = samples();
    let run = || find_rules(&w.db, &w.mq, InstType::Zero, th).unwrap().len();
    let (median_opt_s, answers) = median_secs(n, run);
    set_baseline_mode(true);
    let (median_base_s, base_answers) = median_secs(n, run);
    set_baseline_mode(false);
    assert_eq!(
        answers, base_answers,
        "optimized and baseline cores must agree on {name}"
    );
    eprintln!(
        "{name}: opt {median_opt_s:.5}s  base {median_base_s:.5}s  ({:.2}x, {answers} answers)",
        median_base_s / median_opt_s.max(1e-12)
    );
    Row {
        name: name.to_string(),
        rows,
        total_tuples: w.db.total_tuples(),
        answers,
        median_opt_s,
        median_base_s,
    }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // Figure 4 data scaling: chain metaquery (width 1), growing d.
    for d in [50usize, 150, 450] {
        let w = chain_workload(3, d, (d as i64) / 3, 2);
        rows.push(measure(
            &format!("fig4_findrules_chain_d{d}"),
            &w,
            d,
            mid_thresholds(),
        ));
    }

    // Figure 4 width contrast at fixed d.
    let d = 120usize;
    let chain = chain_workload(2, d, 18, 2);
    rows.push(measure("fig4_width1_chain2", &chain, d, mid_thresholds()));
    let cycle = cycle_workload(2, d, 18, 4);
    rows.push(measure("fig4_width2_cycle4", &cycle, d, mid_thresholds()));

    // Figure 4 pruning ablation: thresholds that cut vs keep everything.
    let w = chain_workload(3, 250, 20, 2);
    rows.push(measure(
        "fig4_pruning_on",
        &w,
        250,
        Thresholds::all(Frac::new(1, 2), Frac::ZERO, Frac::ZERO),
    ));
    rows.push(measure(
        "fig4_pruning_off",
        &w,
        250,
        Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
    ));

    // Figure 5-style combined complexity: longer chain at fixed d.
    let w = chain_workload(4, 80, 12, 3);
    rows.push(measure("fig5_combined_chain3", &w, 80, mid_thresholds()));

    // Aggregate: the fig4 findRules series' median speedup.
    let mut fig4_speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.name.starts_with("fig4_findrules_chain"))
        .map(Row::speedup)
        .collect();
    fig4_speedups.sort_by(f64::total_cmp);
    let fig4_median_speedup = fig4_speedups[fig4_speedups.len() / 2];

    // Width-2 regression guard: the cycle workload must stay within a sane
    // factor of the width-1 chain at the same d. Before the λ-join planner
    // the lag was ~41× (an unplanned cross-product intermediate in every
    // multi-atom node join); with it the medians sit around 20× — the
    // cycle genuinely does more work (16 body instantiations × a ~2k-row
    // body join) but no longer pathologically so. CI runs this binary, so
    // a planner regression fails the bench smoke step. Overridable for
    // exotic hardware via MQ_BENCH_MAX_WIDTH2_LAG.
    let chain2 = rows
        .iter()
        .find(|r| r.name == "fig4_width1_chain2")
        .expect("chain workload measured");
    let cycle4 = rows
        .iter()
        .find(|r| r.name == "fig4_width2_cycle4")
        .expect("cycle workload measured");
    let width2_lag = cycle4.median_opt_s / chain2.median_opt_s.max(1e-12);
    let max_lag: f64 = std::env::var("MQ_BENCH_MAX_WIDTH2_LAG")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0);
    assert!(
        width2_lag <= max_lag,
        "width-2 regression: fig4_width2_cycle4 ({:.5}s) is {width2_lag:.1}x slower than \
         fig4_width1_chain2 ({:.5}s); limit {max_lag}x (MQ_BENCH_MAX_WIDTH2_LAG)",
        cycle4.median_opt_s,
        chain2.median_opt_s,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"samples_per_case\": {},\n  \"fig4_median_speedup\": {:.3},\n  \
         \"width2_lag_vs_chain\": {:.3},\n  \"workloads\": [\n",
        samples(),
        fig4_median_speedup,
        width2_lag
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"total_tuples\": {}, \"answers\": {}, \
             \"median_optimized_s\": {:.6}, \"median_baseline_s\": {:.6}, \
             \"speedup\": {:.3}, \"rows_per_sec\": {:.1}}}{}\n",
            r.name,
            r.rows,
            r.total_tuples,
            r.answers,
            r.median_opt_s,
            r.median_base_s,
            r.speedup(),
            r.rows_per_sec(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("MQ_BENCH_OUT").unwrap_or_else(|_| "BENCH_findrules.json".into());
    std::fs::write(&out, &json).expect("write BENCH_findrules.json");
    println!("wrote {out}");
    println!("fig4 findRules median speedup vs baseline core: {fig4_median_speedup:.2}x");
}
