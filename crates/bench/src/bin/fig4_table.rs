//! E3 — regenerate the Figure 4 comparison table: `findRules` vs the
//! naive engine across database sizes, widths, and the pruning ablation.
//!
//! Run: `cargo run -p mq-bench --release --bin fig4_table`

use mq_bench::{chain_workload, cycle_workload, loglog_slope, mid_thresholds, time};
use mq_core::engine::{find_rules::find_rules, naive};
use mq_core::prelude::*;
use mq_relation::Frac;

fn main() {
    println!("Figure 4 — findRules vs naive (chain-2 metaquery over 6 relations, width 1)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>9}",
        "rows d", "findRules (s)", "naive (s)", "speedup", "answers"
    );
    // 6 relations: 216 type-0 instantiations; findRules shares the 36
    // body joins across the 6 head candidates, the naive engine does not.
    let zero = Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO);
    let mut fr_points = Vec::new();
    for rows in [50usize, 100, 200, 400, 800] {
        let w = chain_workload(6, rows, (rows as i64) / 3, 2);
        let (a, t_fr) = time(|| find_rules(&w.db, &w.mq, InstType::Zero, zero).unwrap());
        let (b, t_nv) = time(|| naive::find_all(&w.db, &w.mq, InstType::Zero, zero).unwrap());
        assert_eq!(a, b, "engines must agree");
        fr_points.push((rows as f64, t_fr));
        println!(
            "{rows:>8} {t_fr:>14.5} {t_nv:>14.5} {:>8.2}x {:>9}",
            t_nv / t_fr,
            a.len()
        );
    }
    println!(
        "\nfindRules log-log slope vs d: {:.2} (chain width 1; paper predicts ~d^1·log d)\n",
        loglog_slope(&fr_points)
    );

    println!("Width contrast at d = 150:");
    let chain = chain_workload(2, 150, 20, 2);
    let cycle = cycle_workload(2, 150, 20, 4);
    let (_, t1) =
        time(|| find_rules(&chain.db, &chain.mq, InstType::Zero, mid_thresholds()).unwrap());
    let (_, t2) =
        time(|| find_rules(&cycle.db, &cycle.mq, InstType::Zero, mid_thresholds()).unwrap());
    println!("  width-1 chain-2: {t1:.5} s");
    println!("  width-2 cycle-4: {t2:.5} s ({:.1}x)", t2 / t1);

    println!("\nSupport-pruning ablation (chain-2, d = 400):");
    let w = chain_workload(3, 400, 30, 2);
    let (with_answers, t_with) = time(|| {
        find_rules(
            &w.db,
            &w.mq,
            InstType::Zero,
            Thresholds::all(Frac::new(1, 2), Frac::ZERO, Frac::ZERO),
        )
        .unwrap()
    });
    let (without_answers, t_without) = time(|| {
        find_rules(
            &w.db,
            &w.mq,
            InstType::Zero,
            Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
        )
        .unwrap()
    });
    println!(
        "  k_sup = 0.5 : {t_with:.5} s, {} answers (enoughSupport prunes)",
        with_answers.len()
    );
    println!(
        "  k_sup = 0   : {t_without:.5} s, {} answers (no pruning possible)",
        without_answers.len()
    );
}
