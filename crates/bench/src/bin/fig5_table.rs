//! E13 — regenerate Figure 5 (the summary complexity table) with an
//! empirical witness per row: each hardness row runs its reduction family
//! against the engine and the independent solver; each membership row
//! runs the tractable algorithm or circuit family and reports its scaling.
//!
//! Run: `cargo run -p mq-bench --release --bin fig5_table`

use mq_bench::{loglog_slope, time, BASE_SEED};
use mq_circuits::{compile_mq_threshold, compile_mq_zero, SchemaLayout};
use mq_core::acyclic::decide_acyclic_zero;
use mq_core::engine::find_rules;
use mq_core::prelude::*;
use mq_datagen::RandomDbSpec;
use mq_reductions::{
    reduce_3col, reduce_ecsat, reduce_hampath, reduce_semiacyclic, Cnf, EcsatInstance, Graph, Lit,
};
use mq_relation::{Database, Frac};
use rand::prelude::*;

fn decide(db: &Database, mq: &Metaquery, kind: IndexKind, k: Frac, ty: InstType) -> bool {
    find_rules::decide(
        db,
        mq,
        MqProblem {
            index: kind,
            threshold: k,
            ty,
        },
    )
    .unwrap()
}

fn row(label: &str, claim: &str, witness: String) {
    println!("{label}");
    println!("    claim   : {claim}");
    println!("    witness : {witness}\n");
}

fn main() {
    println!("=== Figure 5, regenerated: one empirical witness per row ===\n");

    // Row 1: general, any type, I, k=0 — NP-complete (Thm 3.21).
    let mut rng = StdRng::seed_from_u64(BASE_SEED ^ 1);
    let mut agree = 0;
    let mut total = 0;
    for _ in 0..12 {
        let g = Graph::random(rng.gen_range(3..7), 0.55, &mut rng);
        if g.edges.is_empty() {
            continue;
        }
        let inst = reduce_3col::reduce(&g);
        total += 1;
        if decide(
            &inst.db,
            &inst.mq,
            IndexKind::Sup,
            Frac::ZERO,
            InstType::Zero,
        ) == g.is_3_colorable()
        {
            agree += 1;
        }
    }
    row(
        "Row 1 | combined | general | T=0,1,2 | I | k=0",
        "NP-complete (Thm 3.21, 3-COLORING reduction)",
        format!("{agree}/{total} random graphs: metaquery route == exact 3-coloring solver"),
    );

    // Row 2: cvr/sup with threshold — NP-complete (Thm 3.24): certificates.
    let mut verified = 0;
    let mut total2 = 0;
    let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
    for seed in 0..8u64 {
        let db = RandomDbSpec {
            n_relations: 2,
            arity: 2,
            rows: 12,
            domain: 4,
            seed: BASE_SEED ^ 2 ^ seed,
        }
        .generate();
        for kind in [IndexKind::Cvr, IndexKind::Sup] {
            let k = Frac::new(1, 3);
            if let Some(cert) =
                mq_core::certificate::extract_threshold(&db, &mq, InstType::Zero, kind, k).unwrap()
            {
                total2 += 1;
                if mq_core::certificate::verify_threshold(&db, &mq, k, &cert).unwrap() {
                    verified += 1;
                }
            }
        }
    }
    row(
        "Row 2 | combined | general | T=0,1,2 | cvr,sup | 0<=k<1",
        "NP-complete (Thm 3.24, succinct certificates with floor(k*den)+1 witnesses)",
        format!("{verified}/{total2} extracted certificates verified in polynomial time"),
    );

    // Row 3: cnf with threshold — NP^PP-complete (Thms 3.28/3.29).
    let mut rng = StdRng::seed_from_u64(BASE_SEED ^ 3);
    let mut agree3 = 0;
    let mut total3 = 0;
    for _ in 0..8 {
        let s: usize = rng.gen_range(1..=2);
        let h: usize = rng.gen_range(1..=3);
        let n_vars = s + h;
        let clauses = (0..rng.gen_range(1..=4))
            .map(|_| {
                (0..3)
                    .map(|_| Lit {
                        var: rng.gen_range(0..n_vars),
                        positive: rng.gen_bool(0.5),
                    })
                    .collect()
            })
            .collect();
        let inst = EcsatInstance {
            formula: Cnf::new(n_vars, clauses),
            pi: (0..s).collect(),
            chi: (s..n_vars).collect(),
            k: rng.gen_range(1..=(1u128 << h)),
        };
        let red = reduce_ecsat::reduce_type0(&inst);
        total3 += 1;
        if decide(&red.db, &red.mq, IndexKind::Cnf, red.threshold, red.ty) == inst.solve_direct() {
            agree3 += 1;
        }
    }
    row(
        "Row 3 | combined | general | T=0,1,2 | cnf | 0<=k<1",
        "NP^PP-complete (Thms 3.28/3.29, ∃C-3SAT reduction; threshold (k'-1)/2^h)",
        format!("{agree3}/{total3} random ∃C-3SAT instances: cnf-threshold route == direct solver"),
    );

    // Row 4: acyclic, type-0, k=0 — LOGCFL-complete (Thm 3.32).
    let mq_acyclic = parse_metaquery("P(X,Y) <- P(Y,Z), Q(Z,W)").unwrap();
    let mut points = Vec::new();
    for rows in [200usize, 800, 3200] {
        let db = RandomDbSpec {
            n_relations: 2,
            arity: 2,
            rows,
            domain: rows as i64 / 4,
            seed: BASE_SEED ^ 4,
        }
        .generate();
        let (_, t) = time(|| decide_acyclic_zero(&db, &mq_acyclic, IndexKind::Sup).unwrap());
        points.push((rows as f64, t));
    }
    row(
        "Row 4 | combined | acyclic | T=0 | I | k=0",
        "LOGCFL-complete (Thm 3.32) — polynomial via the derived acyclic BCQ",
        format!(
            "runtime at d=200/800/3200: {:.4}/{:.4}/{:.4} s; log-log slope {:.2} (polynomial, near-linear)",
            points[0].1,
            points[1].1,
            points[2].1,
            loglog_slope(&points)
        ),
    );

    // Row 5: acyclic, types 1/2 — NP-complete (Thm 3.33).
    let mut rng = StdRng::seed_from_u64(BASE_SEED ^ 5);
    let mut agree5 = 0;
    let mut total5 = 0;
    for _ in 0..8 {
        let g = Graph::random(rng.gen_range(3..6), 0.5, &mut rng);
        let inst = reduce_hampath::reduce(&g);
        total5 += 1;
        if decide(
            &inst.db,
            &inst.mq,
            IndexKind::Sup,
            Frac::ZERO,
            InstType::One,
        ) == g.has_hamiltonian_path()
        {
            agree5 += 1;
        }
    }
    row(
        "Row 5 | combined | acyclic | T=1,2 | I | k=0",
        "NP-complete (Thm 3.33, HAMILTONIAN PATH via argument permutations)",
        format!("{agree5}/{total5} random graphs: type-1 metaquery route == Held-Karp DP"),
    );

    // Row 6: semi-acyclic, type-0 — NP-complete (Thm 3.35).
    let mut rng = StdRng::seed_from_u64(BASE_SEED ^ 6);
    let mut agree6 = 0;
    let mut total6 = 0;
    for _ in 0..8 {
        let g = Graph::random(rng.gen_range(3..6), 0.6, &mut rng);
        if g.edges.is_empty() {
            continue;
        }
        let inst = reduce_semiacyclic::reduce(&g);
        assert_eq!(
            mq_core::acyclic::classify(&inst.mq),
            mq_core::acyclic::MqClass::SemiAcyclic
        );
        total6 += 1;
        if decide(
            &inst.db,
            &inst.mq,
            IndexKind::Sup,
            Frac::ZERO,
            InstType::Zero,
        ) == g.is_3_colorable()
        {
            agree6 += 1;
        }
    }
    row(
        "Row 6 | combined | semi-acyclic | T=0 | I | k=0",
        "NP-complete (Thm 3.35; predicate variables matter for tractability)",
        format!("{agree6}/{total6} random graphs via always-semi-acyclic construction"),
    );

    // Row 7: data complexity, k=0 — AC0 (Thm 3.37).
    let mut schema = Database::new();
    schema.add_relation("p", 2);
    schema.add_relation("q", 2);
    let mut depths = Vec::new();
    let mut sizes = Vec::new();
    for dom in [2usize, 3, 4, 5] {
        let layout = SchemaLayout::of_database(&schema, dom);
        let c = compile_mq_zero(&layout, &schema, &mq, IndexKind::Cnf, InstType::Zero).unwrap();
        depths.push(c.depth());
        sizes.push((dom as f64, c.size() as f64));
    }
    row(
        "Row 7 | data | general | T=0,1,2 | I | k=0",
        "AC0 (Thm 3.37) — constant-depth, polynomial-size AND/OR/NOT circuits",
        format!(
            "depth at D=2..5: {:?} (constant); size slope vs D: {:.2} (polynomial)",
            depths,
            loglog_slope(&sizes)
        ),
    );

    // Row 8: data complexity, k>0 — TC0 (Thm 3.38).
    let mut depths8 = Vec::new();
    let mut sizes8 = Vec::new();
    for dom in [2usize, 3, 4] {
        let layout = SchemaLayout::of_database(&schema, dom);
        let c = compile_mq_threshold(
            &layout,
            &schema,
            &mq,
            IndexKind::Cnf,
            Frac::new(1, 2),
            InstType::Zero,
        )
        .unwrap()
        .lower_thresholds();
        depths8.push(c.depth());
        sizes8.push((dom as f64, c.size() as f64));
    }
    row(
        "Row 8 | data | general | T=0,1,2 | I | 0<=k<1",
        "TC0 (Thm 3.38 / Lemma 3.39) — MAJORITY circuits via b|Qn| - a|Qd| > 0",
        format!(
            "depth at D=2..4 (after MAJORITY lowering): {:?} (constant); size slope {:.2}",
            depths8,
            loglog_slope(&sizes8)
        ),
    );

    println!("(Rows marked Open in the paper — acyclic type-0 with cvr/sup thresholds, and acyclic cnf thresholds — remain open; no experiment claims them.)");
}
