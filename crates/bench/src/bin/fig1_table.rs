//! E1 — regenerate the §2 worked examples: all answers to metaquery (4)
//! on the Figure 1 database, with exact index values.
//!
//! Run: `cargo run -p mq-bench --release --bin fig1_table`

use mq_core::prelude::*;
use mq_datagen::telecom;

fn main() {
    let db = telecom::db1();
    let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
    println!("Figure 1 worked example — DB1, metaquery (4): {mq}\n");
    for ty in [InstType::Zero, InstType::One, InstType::Two] {
        let mut answers = find_rules(&db, &mq, ty, Thresholds::none()).unwrap();
        answers.sort_by(|a, b| b.indices.cnf.cmp(&a.indices.cnf).then(a.inst.cmp(&b.inst)));
        let nonzero = answers.iter().filter(|a| a.indices.sup.num() > 0).count();
        println!(
            "{ty}: {} instantiations, {} with sup > 0; all rules with cnf > 0:",
            answers.len(),
            nonzero
        );
        for a in answers.iter().filter(|a| a.indices.cnf.num() > 0) {
            let rule = apply_instantiation(&db, &mq, &a.inst).unwrap();
            println!(
                "    {:<46} sup={:<6} cvr={:<6} cnf={}",
                rule.render(&db),
                a.indices.sup.to_string(),
                a.indices.cvr.to_string(),
                a.indices.cnf
            );
        }
        println!();
    }

    // The paper's highlighted values.
    let answers = find_rules(&db, &mq, InstType::Zero, Thresholds::none()).unwrap();
    let target = answers
        .iter()
        .find(|a| {
            apply_instantiation(&db, &mq, &a.inst).unwrap().render(&db)
                == "UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)"
        })
        .expect("paper instantiation");
    println!(
        "paper vs measured: UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)  expected sup=1 cvr=1 cnf=5/7; \
         measured sup={} cvr={} cnf={}",
        target.indices.sup, target.indices.cvr, target.indices.cnf
    );
}
