//! Shared workloads and measurement helpers for the benchmark harness.
//!
//! Every experiment in EXPERIMENTS.md builds its inputs through this
//! module so the criterion benches and the table-printer binaries measure
//! exactly the same workloads (same seeds, same sizes).

pub mod netload;

use mq_core::prelude::*;
use mq_datagen::{metaqueries, RandomDbSpec};
use mq_relation::{Database, Frac};
use std::time::Instant;

/// The seed namespace for all experiments (recorded in EXPERIMENTS.md).
pub const BASE_SEED: u64 = 0x4d51_2000; // "MQ 2000"

/// A benchmark workload: a database plus a metaquery.
pub struct Workload {
    /// The database.
    pub db: Database,
    /// The metaquery.
    pub mq: Metaquery,
}

/// Build the standard chain workload (body hypertree width 1).
pub fn chain_workload(n_relations: usize, rows: usize, domain: i64, m: usize) -> Workload {
    let db = RandomDbSpec {
        n_relations,
        arity: 2,
        rows,
        domain,
        seed: BASE_SEED ^ (rows as u64),
    }
    .generate();
    Workload {
        db,
        mq: metaqueries::chain(m),
    }
}

/// Build the cycle workload (body hypertree width 2).
pub fn cycle_workload(n_relations: usize, rows: usize, domain: i64, m: usize) -> Workload {
    let db = RandomDbSpec {
        n_relations,
        arity: 2,
        rows,
        domain,
        seed: BASE_SEED ^ 0xc1c1 ^ (rows as u64),
    }
    .generate();
    Workload {
        db,
        mq: metaqueries::cycle(m),
    }
}

/// Build the clique workload (body hypertree width `n/2`).
pub fn clique_workload(n_relations: usize, rows: usize, domain: i64, n: usize) -> Workload {
    let db = RandomDbSpec {
        n_relations,
        arity: 2,
        rows,
        domain,
        seed: BASE_SEED ^ 0xc11e ^ (rows as u64),
    }
    .generate();
    Workload {
        db,
        mq: metaqueries::clique(n),
    }
}

/// Build the width-3 star/clique hybrid workload: `hybrid_star(arms)`
/// (body hypergraph `K_{arms+1}`; `arms = 4` is the width-3 series) over
/// a random database extended with the fixed `rim` relation the hybrid's
/// clique atoms name.
pub fn hybrid_star_workload(n_relations: usize, rows: usize, domain: i64, arms: usize) -> Workload {
    use rand::prelude::*;
    let mut db = RandomDbSpec {
        n_relations,
        arity: 2,
        rows,
        domain,
        seed: BASE_SEED ^ 0x57a2 ^ (rows as u64),
    }
    .generate();
    let rim = db.add_relation("rim", 2);
    let mut rng = StdRng::seed_from_u64(BASE_SEED ^ 0x21b ^ (rows as u64));
    for _ in 0..rows {
        let row = vec![
            mq_relation::Value::Int(rng.gen_range(0..domain)),
            mq_relation::Value::Int(rng.gen_range(0..domain)),
        ];
        db.insert(rim, row.into_boxed_slice());
    }
    Workload {
        db,
        mq: metaqueries::hybrid_star(arms, "rim"),
    }
}

/// Standard mid thresholds used by the engine-comparison experiments.
pub fn mid_thresholds() -> Thresholds {
    Thresholds::all(Frac::new(1, 10), Frac::new(1, 10), Frac::new(1, 10))
}

/// Wall-clock one closure, returning (result, seconds).
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// polynomial degree of a scaling series.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.max(1e-12).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic_is_two() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|x| (x as f64, (x * x) as f64)).collect();
        let s = loglog_slope(&pts);
        assert!((s - 2.0).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn workloads_are_reproducible() {
        let a = chain_workload(3, 20, 8, 2);
        let b = chain_workload(3, 20, 8, 2);
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
    }
}
