//! TCP load generator for the hardened serving layer (`mq_service::net`).
//!
//! Drives many concurrent client connections against a [`NetServer`]
//! address, each issuing the same `mine` request in a closed loop, and
//! reports tail latency (p50/p95/p99), throughput, and the
//! error/recovery accounting the chaos harness asserts on:
//!
//! * every failed request must have produced a **structured** `err
//!   <code> …` reply (counted per code in [`LoadReport::errs`]) — or a
//!   disconnect, from which the client **recovers by reconnecting**
//!   (counted in [`LoadReport::reconnects`]);
//! * every successful reply block must be **byte-identical** to the
//!   expected block ([`LoadReport::mismatches`] must stay zero — the
//!   robustness layer may fail requests, never corrupt them).
//!
//! Used by `bench_report`'s `net_load` workload and by the chaos
//! integration tests (`tests/chaos.rs`), clean and under `MQ_FAULTS`
//! plans.
//!
//! [`NetServer`]: mq_service::NetServer

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests each connection issues (sequentially).
    pub requests_per_conn: usize,
    /// The request line to send (no trailing newline).
    pub request: String,
    /// The reply block a successful request must equal byte-for-byte
    /// (`None` = don't check).
    pub expected: Option<Vec<String>>,
    /// Per-read socket timeout while awaiting a reply.
    pub reply_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 120,
            requests_per_conn: 5,
            request: "ping".to_string(),
            expected: None,
            reply_timeout: Duration::from_secs(30),
        }
    }
}

/// What a load run observed, aggregated over all connections.
#[derive(Clone, Default)]
pub struct LoadReport {
    /// Connections driven.
    pub connections: usize,
    /// Requests sent (including ones whose reply never arrived).
    pub sent: u64,
    /// Requests answered `ok …`.
    pub ok: u64,
    /// Requests answered `err <code> …`, counted per code.
    pub errs: BTreeMap<String, u64>,
    /// Replies that arrived but matched neither `ok` nor `err <code>`
    /// framing — must stay zero (unstructured failure).
    pub unstructured: u64,
    /// Successful replies that differed from the expected block — must
    /// stay zero.
    pub mismatches: u64,
    /// Reconnections after a mid-request disconnect (the recovery path
    /// for injected write faults and slow-client kills).
    pub reconnects: u64,
    /// Requests abandoned because reconnection itself kept failing.
    pub lost: u64,
    /// Wall-clock for the whole run, seconds.
    pub wall_s: f64,
    /// p50 / p95 / p99 of per-request latency, milliseconds (completed
    /// requests only; zeroes if none completed).
    pub p50_ms: f64,
    /// 95th percentile latency, ms.
    pub p95_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
    /// Every completed request's latency, sorted ascending — so
    /// callers comparing runs (the `scrape_overhead` guard) can pool
    /// samples across runs and take percentiles over the pool instead
    /// of aggregating per-run tails.
    pub latencies_ms: Vec<f64>,
}

impl std::fmt::Debug for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual impl only to keep assertion dumps readable: the raw
        // latency pool collapses to its sample count.
        f.debug_struct("LoadReport")
            .field("connections", &self.connections)
            .field("sent", &self.sent)
            .field("ok", &self.ok)
            .field("errs", &self.errs)
            .field("unstructured", &self.unstructured)
            .field("mismatches", &self.mismatches)
            .field("reconnects", &self.reconnects)
            .field("lost", &self.lost)
            .field("wall_s", &self.wall_s)
            .field("p50_ms", &self.p50_ms)
            .field("p95_ms", &self.p95_ms)
            .field("p99_ms", &self.p99_ms)
            .field(
                "latencies_ms",
                &format_args!("[{} samples]", self.latencies_ms.len()),
            )
            .finish()
    }
}

impl LoadReport {
    /// Total `err` replies across codes.
    pub fn err_total(&self) -> u64 {
        self.errs.values().sum()
    }

    /// Completed requests (ok + structured err) per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        (self.ok + self.err_total()) as f64 / self.wall_s.max(1e-9)
    }

    /// Every request is accounted for as exactly one of: ok, structured
    /// err, disconnect-then-reconnect, or lost to reconnection failure.
    /// True iff nothing fell through unstructured.
    pub fn all_failures_structured(&self) -> bool {
        self.unstructured == 0
            && self.sent == self.ok + self.err_total() + self.reconnects + self.lost
    }
}

/// One client connection (stream + buffered reader over a clone).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr, reply_timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(reply_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        Ok(line.trim_end().to_string())
    }

    /// Send one request and read its full reply block.
    fn exchange(&mut self, request: &str) -> std::io::Result<Vec<String>> {
        self.stream.write_all(request.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let first = self.read_line()?;
        let mut block = vec![first];
        // `ok mine N answer(s) …` is followed by exactly N rule lines
        // (the service caps answers before rendering, so the header
        // count is the rule-line count). Everything else is one line.
        if let Some(rest) = block[0].strip_prefix("ok mine ") {
            let n: usize = rest
                .split_whitespace()
                .next()
                .and_then(|w| w.parse().ok())
                .unwrap_or(0);
            for _ in 0..n {
                let line = self.read_line()?;
                block.push(line);
            }
        }
        Ok(block)
    }
}

/// Per-worker tallies, merged into the report under a lock at the end.
#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    errs: BTreeMap<String, u64>,
    unstructured: u64,
    mismatches: u64,
    reconnects: u64,
    lost: u64,
    latencies_ms: Vec<f64>,
}

/// `ok mine …` headers end with a per-request ` req=<id>` trace handle
/// and may carry a ` deduped` marker when the request coalesced onto
/// another in-flight search; answers are identical either way, so the
/// byte-identity check compares headers modulo both.
fn normalize_header(line: &str) -> &str {
    let line = match line.rfind(" req=") {
        Some(i)
            if !line[i + 5..].is_empty() && line[i + 5..].bytes().all(|b| b.is_ascii_digit()) =>
        {
            &line[..i]
        }
        _ => line,
    };
    line.strip_suffix(" deduped").unwrap_or(line)
}

fn blocks_match(got: &[String], expected: &[String]) -> bool {
    got.len() == expected.len()
        && normalize_header(&got[0]) == normalize_header(&expected[0])
        && got[1..] == expected[1..]
}

fn classify(tally: &mut Tally, cfg: &LoadConfig, block: &[String]) {
    let first = &block[0];
    if first.starts_with("ok") {
        tally.ok += 1;
        if let Some(expected) = &cfg.expected {
            if !blocks_match(block, expected) {
                tally.mismatches += 1;
            }
        }
    } else if let Some(rest) = first.strip_prefix("err ") {
        let code = rest.split_whitespace().next().unwrap_or("").to_string();
        if code.is_empty() {
            tally.unstructured += 1;
        } else {
            *tally.errs.entry(code).or_insert(0) += 1;
        }
    } else {
        tally.unstructured += 1;
    }
}

fn drive_connection(addr: SocketAddr, cfg: &LoadConfig) -> Tally {
    let mut tally = Tally::default();
    let mut client = None;
    for _ in 0..cfg.requests_per_conn {
        // (Re)connect lazily; a few retries ride out accept backlog
        // pressure when hundreds of clients arrive at once.
        if client.is_none() {
            for attempt in 0..5 {
                match Client::connect(addr, cfg.reply_timeout) {
                    Ok(c) => {
                        client = Some(c);
                        break;
                    }
                    Err(_) if attempt + 1 < 5 => {
                        std::thread::sleep(Duration::from_millis(10 << attempt));
                    }
                    Err(_) => {}
                }
            }
        }
        let Some(c) = client.as_mut() else {
            tally.sent += 1;
            tally.lost += 1;
            continue;
        };
        tally.sent += 1;
        let start = Instant::now();
        match c.exchange(&cfg.request) {
            Ok(block) => {
                tally.latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                classify(&mut tally, cfg, &block);
            }
            Err(_) => {
                // Disconnected mid-request (injected write fault, slow
                // kill, drain): recover by reconnecting for the next
                // request.
                tally.reconnects += 1;
                client = None;
            }
        }
    }
    if let Some(mut c) = client {
        let _ = c.stream.write_all(b"quit\n");
    }
    tally
}

/// Percentile of a **sorted** latency slice (nearest-rank).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Run the load: `cfg.connections` concurrent clients, each issuing
/// `cfg.requests_per_conn` requests against `addr`.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let merged: Mutex<Vec<Tally>> = Mutex::new(Vec::with_capacity(cfg.connections));
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..cfg.connections {
            let merged = &merged;
            s.spawn(move || {
                let tally = drive_connection(addr, cfg);
                merged.lock().expect("tally lock").push(tally);
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut report = LoadReport {
        connections: cfg.connections,
        wall_s,
        ..LoadReport::default()
    };
    let mut latencies: Vec<f64> = Vec::new();
    for t in merged.into_inner().expect("tally lock") {
        report.sent += t.sent;
        report.ok += t.ok;
        report.unstructured += t.unstructured;
        report.mismatches += t.mismatches;
        report.reconnects += t.reconnects;
        report.lost += t.lost;
        for (code, n) in t.errs {
            *report.errs.entry(code).or_insert(0) += n;
        }
        latencies.extend(t.latencies_ms);
    }
    latencies.sort_by(f64::total_cmp);
    report.p50_ms = percentile(&latencies, 0.50);
    report.p95_ms = percentile(&latencies, 0.95);
    report.p99_ms = percentile(&latencies, 0.99);
    report.latencies_ms = latencies;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn accounting_identity_detects_unstructured() {
        let mut r = LoadReport {
            sent: 10,
            ok: 7,
            reconnects: 1,
            ..LoadReport::default()
        };
        r.errs.insert("deadline".into(), 2);
        assert!(r.all_failures_structured());
        r.unstructured = 1;
        assert!(!r.all_failures_structured());
    }
}
