//! E2 — Figure 3 / Examples 4.3-4.5: the join-tree + full-reducer
//! pipeline against materializing the join directly.
//!
//! The full reducer answers acyclic BCQ satisfiability after `2(n-1)`
//! semijoins, never building the (possibly much larger) join — the
//! enabling trick inside `findRules`. The series scales the database
//! size `d`; the reducer should stay near-linear while the materialized
//! join grows with the join's output size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_bench::BASE_SEED;
use mq_cq::{acyclic_satisfiable, Atom, Cq};
use mq_datagen::RandomDbSpec;
use mq_relation::VarId;
use std::hint::black_box;

fn chain_cq(db: &mq_relation::Database, m: usize) -> Cq {
    let atoms = (0..m)
        .map(|i| {
            Atom::vars_atom(
                db.rel_id(&format!("r{i}")).unwrap(),
                &[VarId(i as u32), VarId(i as u32 + 1)],
            )
        })
        .collect();
    Cq::new(atoms)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_jointree_reducer");
    for rows in [100usize, 400, 1600] {
        let db = RandomDbSpec {
            n_relations: 3,
            arity: 2,
            rows,
            domain: (rows as i64) / 4,
            seed: BASE_SEED ^ 3,
        }
        .generate();
        let cq = chain_cq(&db, 3);
        g.bench_with_input(
            BenchmarkId::new("full_reducer_satisfiable", rows),
            &rows,
            |b, _| b.iter(|| black_box(acyclic_satisfiable(black_box(&db), black_box(&cq)))),
        );
        g.bench_with_input(
            BenchmarkId::new("materialized_join", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    let join = mq_cq::join_atoms(black_box(&db), black_box(&cq.atoms));
                    black_box(!join.is_empty())
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("yannakakis_count", rows), &rows, |b, _| {
            b.iter(|| black_box(mq_cq::acyclic_count(black_box(&db), black_box(&cq))))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
