//! Extension bench — negation overhead: the same positive chain workload
//! mined with and without a negated literal, across both engines.
//!
//! The antijoin filter is one extra hash pass over the body join per
//! negated-pattern assignment; the series documents that negation costs a
//! small constant factor, not an asymptotic change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_core::engine::{find_rules::find_rules, naive};
use mq_core::prelude::*;
use mq_datagen::RandomDbSpec;
use mq_relation::Frac;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_negation_overhead");
    let positive = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
    let negated = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z), not S(X,Z)").unwrap();
    let th = Thresholds::all(Frac::new(1, 10), Frac::ZERO, Frac::ZERO);
    for rows in [100usize, 300] {
        let db = RandomDbSpec {
            n_relations: 3,
            arity: 2,
            rows,
            domain: rows as i64 / 4,
            seed: mq_bench::BASE_SEED ^ 0x6e69 ^ rows as u64,
        }
        .generate();
        g.bench_with_input(
            BenchmarkId::new("positive_findrules", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    black_box(
                        find_rules(&db, &positive, InstType::Zero, th)
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("negated_findrules", rows),
            &rows,
            |b, _| {
                b.iter(|| black_box(find_rules(&db, &negated, InstType::Zero, th).unwrap().len()))
            },
        );
        g.bench_with_input(BenchmarkId::new("negated_naive", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    naive::find_all(&db, &negated, InstType::Zero, th)
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
