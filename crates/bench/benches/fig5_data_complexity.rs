//! E10/E11 — Figure 5's data-complexity rows (Theorems 3.37, 3.38).
//!
//! Compiles the AC0 (k=0) and TC0 (k>0) circuit families for the fixed
//! metaquery (4) at growing domain sizes and measures (a) compilation,
//! (b) evaluation, and — in the companion `fig5_table` binary — the
//! size/depth series that certify "constant depth, polynomial size".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_circuits::{compile_mq_threshold, compile_mq_zero, SchemaLayout};
use mq_core::prelude::*;
use mq_relation::{ints, Database, Frac};
use rand::prelude::*;
use std::hint::black_box;

fn schema_db() -> Database {
    let mut db = Database::new();
    db.add_relation("p", 2);
    db.add_relation("q", 2);
    db
}

fn random_db(dom: i64, rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let p = db.add_relation("p", 2);
    let q = db.add_relation("q", 2);
    for _ in 0..rows {
        db.insert(p, ints(&[rng.gen_range(0..dom), rng.gen_range(0..dom)]));
        db.insert(q, ints(&[rng.gen_range(0..dom), rng.gen_range(0..dom)]));
    }
    db
}

fn bench(c: &mut Criterion) {
    let schema = schema_db();
    let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();

    let mut g = c.benchmark_group("fig5_row7_ac0");
    for dom in [3usize, 4, 5] {
        let layout = SchemaLayout::of_database(&schema, dom);
        g.bench_with_input(BenchmarkId::new("compile", dom), &dom, |b, _| {
            b.iter(|| {
                black_box(
                    compile_mq_zero(&layout, &schema, &mq, IndexKind::Cnf, InstType::Zero)
                        .unwrap()
                        .size(),
                )
            })
        });
        let circuit =
            compile_mq_zero(&layout, &schema, &mq, IndexKind::Cnf, InstType::Zero).unwrap();
        let db = random_db(dom as i64, dom * 2, mq_bench::BASE_SEED ^ dom as u64);
        let bits = layout.encode(&db);
        g.bench_with_input(BenchmarkId::new("eval", dom), &dom, |b, _| {
            b.iter(|| black_box(circuit.eval(black_box(&bits))))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig5_row8_tc0");
    let k = Frac::new(1, 2);
    for dom in [3usize, 4] {
        let layout = SchemaLayout::of_database(&schema, dom);
        g.bench_with_input(BenchmarkId::new("compile", dom), &dom, |b, _| {
            b.iter(|| {
                black_box(
                    compile_mq_threshold(&layout, &schema, &mq, IndexKind::Cnf, k, InstType::Zero)
                        .unwrap()
                        .size(),
                )
            })
        });
        let circuit =
            compile_mq_threshold(&layout, &schema, &mq, IndexKind::Cnf, k, InstType::Zero).unwrap();
        let db = random_db(dom as i64, dom * 2, mq_bench::BASE_SEED ^ 0x7c ^ dom as u64);
        let bits = layout.encode(&db);
        g.bench_with_input(BenchmarkId::new("eval", dom), &dom, |b, _| {
            b.iter(|| black_box(circuit.eval(black_box(&bits))))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
