//! E12 — Proposition 3.26: `#BCQ` counting through the parsimonious
//! 3SAT reduction, against the DPLL model counter.
//!
//! Both are exponential; the bench documents that the conjunctive-query
//! route tracks the dedicated counter's growth (same exponent, constant
//! factor apart), which is exactly what a parsimonious reduction promises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_reductions::{count_models, reduce_sharp, Cnf, Lit};
use rand::prelude::*;
use std::hint::black_box;

fn random_3cnf(n_vars: usize, n_clauses: usize, seed: u64) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let clauses = (0..n_clauses)
        .map(|_| {
            (0..3)
                .map(|_| Lit {
                    var: rng.gen_range(0..n_vars),
                    positive: rng.gen_bool(0.5),
                })
                .collect()
        })
        .collect();
    Cnf::new(n_vars, clauses)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharp_bcq_parsimonious");
    for n in [8usize, 10, 12] {
        let f = random_3cnf(n, n * 2, mq_bench::BASE_SEED ^ n as u64);
        let inst = reduce_sharp::reduce(&f);
        // Sanity: the counts agree before we time anything.
        assert_eq!(inst.model_count(), count_models(&f));
        g.bench_with_input(BenchmarkId::new("via_bcq", n), &n, |b, _| {
            b.iter(|| black_box(inst.model_count()))
        });
        g.bench_with_input(BenchmarkId::new("via_dpll", n), &n, |b, _| {
            b.iter(|| black_box(count_models(black_box(&f))))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
