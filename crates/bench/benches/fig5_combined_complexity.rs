//! E4-E9 — Figure 5's combined-complexity rows, measured.
//!
//! For each hardness row, the corresponding reduction family is solved
//! through the engine with growing instance size: the NP/NP^PP rows blow
//! up exponentially in the *query* size, while the LOGCFL row (acyclic,
//! type-0, k=0) scales polynomially through the derived-instance route.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_core::acyclic::decide_acyclic_zero;
use mq_core::engine::find_rules;
use mq_core::prelude::*;
use mq_datagen::RandomDbSpec;
use mq_reductions::{reduce_3col, reduce_ecsat, reduce_hampath, reduce_semiacyclic};
use mq_reductions::{Cnf, EcsatInstance, Graph, Lit};
use mq_relation::Frac;
use rand::prelude::*;
use std::hint::black_box;

fn decide(
    db: &mq_relation::Database,
    mq: &Metaquery,
    kind: IndexKind,
    k: Frac,
    ty: InstType,
) -> bool {
    find_rules::decide(
        db,
        mq,
        MqProblem {
            index: kind,
            threshold: k,
            ty,
        },
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    // Row 1 (Thm 3.21): NP-complete, any index, k=0: 3COL instances.
    let mut g = c.benchmark_group("fig5_row1_np_3col");
    for n in [4usize, 5, 6] {
        let graph = Graph::random(
            n,
            0.5,
            &mut StdRng::seed_from_u64(mq_bench::BASE_SEED ^ n as u64),
        );
        if graph.edges.is_empty() {
            continue;
        }
        let inst = reduce_3col::reduce(&graph);
        g.bench_with_input(BenchmarkId::new("metaquery_route", n), &n, |b, _| {
            b.iter(|| {
                black_box(decide(
                    &inst.db,
                    &inst.mq,
                    IndexKind::Sup,
                    Frac::ZERO,
                    InstType::Zero,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("direct_solver", n), &n, |b, _| {
            b.iter(|| black_box(graph.is_3_colorable()))
        });
    }
    g.finish();

    // Row 3 (Thms 3.28/3.29): NP^PP-complete cnf thresholds: ∃C-3SAT.
    let mut g = c.benchmark_group("fig5_row3_nppp_ecsat");
    for h in [2usize, 3, 4] {
        let mut rng = StdRng::seed_from_u64(mq_bench::BASE_SEED ^ 0xec ^ h as u64);
        let n_vars = 1 + h;
        let clauses = (0..3)
            .map(|_| {
                (0..3)
                    .map(|_| Lit {
                        var: rng.gen_range(0..n_vars),
                        positive: rng.gen_bool(0.5),
                    })
                    .collect()
            })
            .collect();
        let inst = EcsatInstance {
            formula: Cnf::new(n_vars, clauses),
            pi: vec![0],
            chi: (1..n_vars).collect(),
            k: 1 << (h - 1),
        };
        let red = reduce_ecsat::reduce_type0(&inst);
        g.bench_with_input(BenchmarkId::new("metaquery_route", h), &h, |b, _| {
            b.iter(|| {
                black_box(decide(
                    &red.db,
                    &red.mq,
                    IndexKind::Cnf,
                    red.threshold,
                    red.ty,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("direct_solver", h), &h, |b, _| {
            b.iter(|| black_box(inst.solve_direct()))
        });
    }
    g.finish();

    // Row 4 (Thm 3.32): LOGCFL — acyclic, type-0, k=0: polynomial via the
    // derived instance, on growing DATA (this row is about tractability).
    let mut g = c.benchmark_group("fig5_row4_logcfl_acyclic");
    let mq = parse_metaquery("P(X,Y) <- P(Y,Z), Q(Z,W)").unwrap();
    for rows in [200usize, 800, 3200] {
        let db = RandomDbSpec {
            n_relations: 2,
            arity: 2,
            rows,
            domain: rows as i64 / 4,
            seed: mq_bench::BASE_SEED ^ 4,
        }
        .generate();
        g.bench_with_input(
            BenchmarkId::new("derived_acyclic_route", rows),
            &rows,
            |b, _| b.iter(|| black_box(decide_acyclic_zero(&db, &mq, IndexKind::Sup).unwrap())),
        );
    }
    g.finish();

    // Row 5 (Thm 3.33): acyclic but type-1: HAMPATH instances.
    let mut g = c.benchmark_group("fig5_row5_acyclic_type1_hampath");
    for n in [4usize, 5, 6] {
        let graph = Graph::random(
            n,
            0.5,
            &mut StdRng::seed_from_u64(mq_bench::BASE_SEED ^ 0x4a ^ n as u64),
        );
        let inst = reduce_hampath::reduce(&graph);
        g.bench_with_input(BenchmarkId::new("metaquery_route", n), &n, |b, _| {
            b.iter(|| {
                black_box(decide(
                    &inst.db,
                    &inst.mq,
                    IndexKind::Sup,
                    Frac::ZERO,
                    InstType::One,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("direct_solver", n), &n, |b, _| {
            b.iter(|| black_box(graph.has_hamiltonian_path()))
        });
    }
    g.finish();

    // Row 6 (Thm 3.35): semi-acyclic type-0 is still NP-hard: 3COL again,
    // through the always-semi-acyclic construction.
    let mut g = c.benchmark_group("fig5_row6_semiacyclic_3col");
    for n in [4usize, 5] {
        let graph = Graph::random(
            n,
            0.6,
            &mut StdRng::seed_from_u64(mq_bench::BASE_SEED ^ 0x6a ^ n as u64),
        );
        if graph.edges.is_empty() {
            continue;
        }
        let inst = reduce_semiacyclic::reduce(&graph);
        g.bench_with_input(BenchmarkId::new("metaquery_route", n), &n, |b, _| {
            b.iter(|| {
                black_box(decide(
                    &inst.db,
                    &inst.mq,
                    IndexKind::Sup,
                    Frac::ZERO,
                    InstType::Zero,
                ))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
