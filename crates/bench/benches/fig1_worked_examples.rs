//! E1 — Figures 1 and 2: answering metaquery (4) on the paper's telecom
//! database under all three instantiation types.
//!
//! There is nothing to race here (the database has 12 tuples); the bench
//! documents the absolute cost of the worked examples and catches
//! regressions in the instantiation machinery. Regenerate the paper's
//! numbers with `cargo run -p mq-bench --bin fig1_table`.

use criterion::{criterion_group, criterion_main, Criterion};
use mq_core::prelude::*;
use mq_datagen::telecom;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let db1 = telecom::db1();
    let db2 = telecom::db2();
    let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();

    let mut g = c.benchmark_group("fig1_worked_examples");
    for ty in [InstType::Zero, InstType::One, InstType::Two] {
        g.bench_function(format!("db1_{ty}"), |b| {
            b.iter(|| {
                let answers =
                    find_rules(black_box(&db1), black_box(&mq), ty, Thresholds::none()).unwrap();
                black_box(answers.len())
            })
        });
    }
    g.bench_function("db2_type2_widened_head", |b| {
        b.iter(|| {
            let answers = find_rules(
                black_box(&db2),
                black_box(&mq),
                InstType::Two,
                Thresholds::single(IndexKind::Cnf, mq_relation::Frac::new(1, 2)),
            )
            .unwrap();
            black_box(answers.len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
