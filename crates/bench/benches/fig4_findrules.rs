//! E3 — Figure 4: `findRules` against the naive enumerate-and-measure
//! engine, and the support-pruning ablation.
//!
//! Three series:
//! * data scaling (`d` grows, chain metaquery, width 1);
//! * width contrast (chain width 1 vs cycle width 2 at fixed `d`);
//! * pruning ablation (`k_sup = 0.5` lets `enoughSupport` cut branches vs
//!   thresholds that keep everything).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_bench::{chain_workload, cycle_workload, mid_thresholds};
use mq_core::engine::{find_rules::find_rules, naive};
use mq_core::prelude::*;
use mq_relation::Frac;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_findrules_vs_naive");
    for rows in [50usize, 150, 450] {
        let w = chain_workload(3, rows, (rows as i64) / 3, 2);
        g.bench_with_input(BenchmarkId::new("findRules_chain", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    find_rules(
                        black_box(&w.db),
                        black_box(&w.mq),
                        InstType::Zero,
                        mid_thresholds(),
                    )
                    .unwrap()
                    .len(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("naive_chain", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    naive::find_all(
                        black_box(&w.db),
                        black_box(&w.mq),
                        InstType::Zero,
                        mid_thresholds(),
                    )
                    .unwrap()
                    .len(),
                )
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig4_width_contrast");
    let rows = 120usize;
    let chain = chain_workload(2, rows, 18, 2);
    let cycle = cycle_workload(2, rows, 18, 4);
    g.bench_function("width1_chain2", |b| {
        b.iter(|| {
            black_box(
                find_rules(&chain.db, &chain.mq, InstType::Zero, mid_thresholds())
                    .unwrap()
                    .len(),
            )
        })
    });
    g.bench_function("width2_cycle4", |b| {
        b.iter(|| {
            black_box(
                find_rules(&cycle.db, &cycle.mq, InstType::Zero, mid_thresholds())
                    .unwrap()
                    .len(),
            )
        })
    });
    g.finish();

    let mut g = c.benchmark_group("fig4_pruning_ablation");
    let w = chain_workload(3, 250, 20, 2);
    g.bench_function("with_support_pruning", |b| {
        b.iter(|| {
            black_box(
                find_rules(
                    &w.db,
                    &w.mq,
                    InstType::Zero,
                    Thresholds::all(Frac::new(1, 2), Frac::ZERO, Frac::ZERO),
                )
                .unwrap()
                .len(),
            )
        })
    });
    g.bench_function("without_support_pruning", |b| {
        b.iter(|| {
            black_box(
                find_rules(
                    &w.db,
                    &w.mq,
                    InstType::Zero,
                    Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
                )
                .unwrap()
                .len(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
