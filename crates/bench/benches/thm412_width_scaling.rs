//! E14 — Theorem 4.12: `sup(r)` is computable in `d^c · log d` time,
//! `c` = the hypertree width of the rule body.
//!
//! The series fixes the body shape (width 1 chain, width 2 cycle, width 3
//! clique-on-6) and scales `d`; the companion `thm412_table` binary fits
//! the log-log slope, which should track `c`. Here criterion records the
//! raw points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_bench::{chain_workload, clique_workload, cycle_workload, Workload};
use mq_core::engine::find_rules::{body_decomposition, find_rules};
use mq_core::prelude::*;
use mq_relation::Frac;
use std::hint::black_box;

fn run(w: &Workload) -> usize {
    // Support-only problem: k_sup = 0.9 (heavy pruning, the Theorem 4.12
    // regime of computing sup per body instantiation).
    find_rules(
        &w.db,
        &w.mq,
        InstType::Zero,
        Thresholds::single(IndexKind::Sup, Frac::new(9, 10)),
    )
    .unwrap()
    .len()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm412_width_scaling");
    // Width 1: chain of 2.
    for rows in [100usize, 200, 400] {
        let w = chain_workload(2, rows, rows as i64 / 4, 2);
        assert_eq!(body_decomposition(&w.mq).width, 1);
        g.bench_with_input(BenchmarkId::new("width1_chain", rows), &rows, |b, _| {
            b.iter(|| black_box(run(&w)))
        });
    }
    // Width 2: 4-cycle.
    for rows in [60usize, 120, 240] {
        let w = cycle_workload(2, rows, rows as i64 / 4, 4);
        assert_eq!(body_decomposition(&w.mq).width, 2);
        g.bench_with_input(BenchmarkId::new("width2_cycle", rows), &rows, |b, _| {
            b.iter(|| black_box(run(&w)))
        });
    }
    // Width 3: clique on 6 variables (15 patterns — single relation to
    // keep the instantiation space flat).
    for rows in [20usize, 40, 80] {
        let w = clique_workload(1, rows, rows as i64 / 3, 6);
        assert_eq!(body_decomposition(&w.mq).width, 3);
        g.bench_with_input(BenchmarkId::new("width3_clique6", rows), &rows, |b, _| {
            b.iter(|| black_box(run(&w)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
