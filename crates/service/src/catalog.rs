//! The database catalog: named, generation-tagged, frozen snapshots.
//!
//! A [`Catalog`] owns every database the service can answer metaqueries
//! over. Each entry is published as an immutable [`DbHandle`] snapshot:
//!
//! * the [`Database`] itself behind an `Arc`, **frozen** at registration
//!   — nothing mutates it, so any number of sessions can search it
//!   concurrently, and every relation's column-major mirror (when
//!   `MQ_COLUMNAR` is on) and `group_index` are pre-warmed so the first
//!   search pays neither the transposition nor the index builds;
//! * each relation's rows additionally frozen into an
//!   [`mq_store::ArenaRows`] — one contiguous allocation per relation
//!   instead of one box per tuple, the storage protocol queries and
//!   update paths read;
//! * a `version` (bumped by every update) plus **per-relation
//!   generations** ([`RelGeneration`]): the tags that key the entry's
//!   persistent cross-search [`AtomCache`];
//! * the entry's [`AtomCache`] itself, shared by every snapshot of the
//!   entry across updates.
//!
//! Updates are **copy-on-write**: [`Catalog::append_rows`] /
//! [`Catalog::replace_relation`] clone the current database, mutate the
//! clone, bump `version` and the touched relation's generation, and
//! publish a new snapshot. Sessions pinned to the old handle keep
//! searching exactly the rows they started with (their memo services
//! probe the old generations, so they never observe post-update
//! bindings), while new sessions cold-start only the touched relation's
//! atom-cache entries — every other relation's persist across the
//! update.

use mq_core::engine::memo::{shared_memo_enabled, AtomCache, RelGeneration, SharedMemos};
use mq_relation::{Database, RelId, Tuple, Value};
use mq_store::lock::{lock_recover, read_recover, write_recover};
use mq_store::ArenaRows;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, RwLock};

/// Errors raised by catalog operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// No database registered under that name.
    UnknownDb(String),
    /// A database with that name is already registered.
    DuplicateDb(String),
    /// The named relation does not exist in the database.
    UnknownRelation {
        /// The database name.
        db: String,
        /// The missing relation name.
        relation: String,
    },
    /// An update row's length does not match the relation's arity.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// The relation's arity.
        expected: usize,
        /// The offending row's length.
        got: usize,
    },
    /// The update closure panicked mid-mutation. The entry is untouched
    /// (updates mutate a private clone and publish atomically), so this
    /// is a per-update error, not a poisoned catalog: later reads and
    /// updates of the same entry proceed normally.
    UpdatePanicked {
        /// The database name.
        db: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownDb(name) => write!(f, "no database named `{name}`"),
            CatalogError::DuplicateDb(name) => {
                write!(f, "database `{name}` is already registered")
            }
            CatalogError::UnknownRelation { db, relation } => {
                write!(f, "database `{db}` has no relation `{relation}`")
            }
            CatalogError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` has arity {expected}, update row has {got} values"
            ),
            CatalogError::UpdatePanicked { db, message } => {
                write!(f, "update of `{db}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// An immutable snapshot of one catalog entry: the frozen database, its
/// version and per-relation generations, the arena-frozen row storage,
/// and the entry's persistent atom cache. Clones are O(1) (`Arc`
/// handles); sessions pin the snapshot they were opened against.
#[derive(Clone)]
pub struct DbHandle {
    name: Arc<str>,
    db: Arc<Database>,
    version: u64,
    rel_gens: Arc<Vec<RelGeneration>>,
    frozen: Arc<Vec<ArenaRows<Value>>>,
    atoms: Arc<AtomCache>,
}

impl DbHandle {
    /// Freeze `db` into a snapshot: pre-warm every relation's
    /// single-column `group_index` (the indexes the planner's join keys
    /// overwhelmingly probe) and freeze each relation's rows into one
    /// contiguous arena. `reuse` lets an update clone the untouched
    /// relations' arenas (O(1) handle copies) and *extend* the touched
    /// relation's arena in place when the update was a pure append.
    /// This is O(total db) work; [`Catalog::update_with`] runs it
    /// outside the catalog map lock so snapshots and queries are never
    /// blocked behind it.
    fn freeze(
        name: Arc<str>,
        db: Database,
        version: u64,
        rel_gens: Vec<RelGeneration>,
        atoms: Arc<AtomCache>,
        reuse: Option<(&DbHandle, RelId)>,
    ) -> Self {
        let _span = mq_obs::trace::SpanGuard::start_always(mq_obs::trace::CATALOG_FREEZE);
        for rel in db.relations() {
            // Warm the column-major mirror first so the single-column
            // index builds below scan columns, not boxed rows — and so
            // the first search's columnar kernels find it ready.
            if mq_relation::columnar_enabled() {
                let _ = rel.columnar();
            }
            for col in 0..rel.arity() {
                let _ = rel.group_index(&[col]);
            }
        }
        let frozen: Vec<ArenaRows<Value>> = db
            .rel_ids()
            .map(|id| {
                let rel = db.relation(id);
                let rows = rel.rows_slice();
                match reuse.and_then(|(prev, touched)| {
                    prev.frozen.get(id.index()).map(|old| (old, touched))
                }) {
                    // Untouched relations share the previous snapshot's
                    // arena (rows are identical).
                    Some((old, touched)) if id != touched => old.clone(),
                    // An append leaves the old rows as a prefix
                    // (insertion order is preserved, duplicates are
                    // dropped): extend the old arena with one contiguous
                    // copy of just the new rows.
                    Some((old, _))
                        if old.arity() == rel.arity()
                            && old.len() <= rows.len()
                            && old.rows().zip(rows).all(|(a, b)| a == &b[..]) =>
                    {
                        old.extended(&rows[old.len()..])
                    }
                    // Replacement (or a brand-new relation): re-freeze.
                    _ => ArenaRows::from_rows(rel.arity(), rows),
                }
            })
            .collect();
        DbHandle {
            name,
            db: Arc::new(db),
            version,
            rel_gens: Arc::new(rel_gens),
            frozen: Arc::new(frozen),
            atoms,
        }
    }

    /// The catalog entry's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The frozen database this snapshot serves.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The snapshot version (bumped by every update of the entry).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The generation of relation `rel` in this snapshot.
    pub fn generation(&self, rel: RelId) -> RelGeneration {
        self.rel_gens.get(rel.index()).copied().unwrap_or(0)
    }

    /// Per-relation generations, indexed by `RelId`.
    pub fn generations(&self) -> &Arc<Vec<RelGeneration>> {
        &self.rel_gens
    }

    /// The arena-frozen rows of relation `rel`.
    pub fn frozen_rows(&self, rel: RelId) -> &ArenaRows<Value> {
        &self.frozen[rel.index()]
    }

    /// Total tuples across the frozen relations.
    pub fn total_tuples(&self) -> usize {
        self.frozen.iter().map(ArenaRows::len).sum()
    }

    /// The entry's persistent cross-search atom cache (shared by every
    /// snapshot of the entry, across updates).
    pub fn atom_cache(&self) -> &Arc<AtomCache> {
        &self.atoms
    }

    /// A fresh per-search memo service seeded from the entry's
    /// persistent atom cache under this snapshot's generations — what
    /// the session layer hands to `find_rules_shared`. `None` when the
    /// shared memo service is disabled (`MQ_SHARED_MEMO=0`): searches
    /// then fall back to private per-worker memos and the persistent
    /// cache sees no traffic.
    pub fn memo_service(&self) -> Option<Arc<SharedMemos>> {
        shared_memo_enabled().then(|| {
            Arc::new(SharedMemos::with_persistent_atoms(
                Arc::clone(&self.atoms),
                Arc::clone(&self.rel_gens),
            ))
        })
    }
}

impl fmt::Debug for DbHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DbHandle({} v{}, {} relations, {} tuples)",
            self.name,
            self.version,
            self.frozen.len(),
            self.total_tuples()
        )
    }
}

/// One catalog entry: the published snapshot plus a per-entry update
/// lock, so the O(db) snapshot build of an update runs without holding
/// the catalog-wide map lock (snapshots and queries are never blocked
/// behind it) while concurrent updates of the *same* entry still
/// serialize (no lost updates).
struct Entry {
    handle: DbHandle,
    update: Arc<Mutex<()>>,
}

/// A catalog of named, generation-tagged databases. All methods take
/// `&self`; the catalog is meant to sit behind the service and be probed
/// from many session threads concurrently.
pub struct Catalog {
    entries: RwLock<HashMap<String, Entry>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// Register `db` under `name`, freezing it into the first snapshot
    /// (version 1, every relation at generation 1). The freeze happens
    /// before the map lock is taken; a duplicate name loses the race
    /// cleanly.
    pub fn register(&self, name: &str, db: Database) -> Result<DbHandle, CatalogError> {
        if read_recover(&self.entries).contains_key(name) {
            return Err(CatalogError::DuplicateDb(name.to_string()));
        }
        let n_relations = db.num_relations();
        let handle = DbHandle::freeze(
            Arc::from(name),
            db,
            1,
            vec![1; n_relations],
            Arc::new(AtomCache::new()),
            None,
        );
        let mut entries = write_recover(&self.entries);
        if entries.contains_key(name) {
            return Err(CatalogError::DuplicateDb(name.to_string()));
        }
        entries.insert(
            name.to_string(),
            Entry {
                handle: handle.clone(),
                update: Arc::new(Mutex::new(())),
            },
        );
        Ok(handle)
    }

    /// The current snapshot of `name`.
    pub fn snapshot(&self, name: &str) -> Result<DbHandle, CatalogError> {
        read_recover(&self.entries)
            .get(name)
            .map(|e| e.handle.clone())
            .ok_or_else(|| CatalogError::UnknownDb(name.to_string()))
    }

    /// Registered database names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_recover(&self.entries).keys().cloned().collect();
        names.sort();
        names
    }

    /// Copy-on-write update of one relation: clone the current snapshot's
    /// database, let `touch` mutate it (returning the touched relation),
    /// bump the entry version and the touched relation's generation, and
    /// publish the new snapshot. Sessions holding the old [`DbHandle`]
    /// are unaffected; the entry's atom cache keeps every untouched
    /// relation's entries warm (their generations don't change).
    ///
    /// The O(db) clone/warm/freeze runs under the entry's private update
    /// lock only — the catalog map lock is held just to fetch the
    /// current snapshot and to publish the new one, so concurrent
    /// snapshots and queries (of this or any other entry) never stall
    /// behind an update.
    pub fn update_with(
        &self,
        name: &str,
        touch: impl FnOnce(&mut Database) -> Result<RelId, CatalogError>,
    ) -> Result<DbHandle, CatalogError> {
        let update = read_recover(&self.entries)
            .get(name)
            .map(|e| Arc::clone(&e.update))
            .ok_or_else(|| CatalogError::UnknownDb(name.to_string()))?;
        // Serialize with other updates of this entry; the snapshot read
        // below therefore sees the latest published version (no lost
        // updates). Recovering a poisoned guard is sound: the lock
        // protects no data (`Mutex<()>`), it only sequences updates, and
        // a panicking `touch` below is caught before it can unwind
        // through the guard anyway.
        let _guard = lock_recover(&update);
        let current = self.snapshot(name)?;
        let mut db = (*current.db).clone();
        // `touch` is caller code: isolate its panics. It mutates only the
        // private clone, so a panic mid-mutation discards the clone and
        // leaves the published snapshot untouched — surfaced as a
        // per-update error rather than a poisoned entry.
        let touched = catch_unwind(AssertUnwindSafe(|| touch(&mut db))).map_err(|payload| {
            CatalogError::UpdatePanicked {
                db: name.to_string(),
                message: panic_message(&*payload),
            }
        })??;
        let version = current.version + 1;
        let mut rel_gens = (*current.rel_gens).clone();
        // Relations added by the update enter at the new version.
        rel_gens.resize(db.num_relations(), version);
        if let Some(gen) = rel_gens.get_mut(touched.index()) {
            *gen = version;
        }
        let handle = DbHandle::freeze(
            Arc::clone(&current.name),
            db,
            version,
            rel_gens,
            Arc::clone(&current.atoms),
            Some((&current, touched)),
        );
        let mut entries = write_recover(&self.entries);
        let entry = entries
            .get_mut(name)
            .ok_or_else(|| CatalogError::UnknownDb(name.to_string()))?;
        entry.handle = handle.clone();
        Ok(handle)
    }

    /// Append `rows` to relation `rel_name` (copy-on-write; duplicates
    /// are dropped, matching relation set semantics).
    pub fn append_rows(
        &self,
        name: &str,
        rel_name: &str,
        rows: Vec<Tuple>,
    ) -> Result<DbHandle, CatalogError> {
        self.update_with(name, |db| {
            let rel = resolve(db, name, rel_name)?;
            check_arities(db, rel, rel_name, &rows)?;
            for row in rows {
                db.insert(rel, row);
            }
            Ok(rel)
        })
    }

    /// Replace relation `rel_name`'s contents wholesale (copy-on-write).
    pub fn replace_relation(
        &self,
        name: &str,
        rel_name: &str,
        rows: Vec<Tuple>,
    ) -> Result<DbHandle, CatalogError> {
        self.update_with(name, |db| {
            let rel = resolve(db, name, rel_name)?;
            check_arities(db, rel, rel_name, &rows)?;
            db.relation_mut(rel).replace_rows(rows);
            Ok(rel)
        })
    }

    /// Maintenance sweep: drop every atom-cache entry of `name` whose
    /// generation is no longer current. Only call once no session is
    /// still pinned to an older snapshot — stale entries are harmless
    /// (old snapshots *need* them), they just hold memory.
    pub fn purge_stale(&self, name: &str) -> Result<(), CatalogError> {
        let handle = self.snapshot(name)?;
        handle.atoms.purge_stale(&handle.rel_gens);
        Ok(())
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

/// Render a panic payload for error messages (`&str` and `String`
/// payloads verbatim, anything else a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn resolve(db: &Database, name: &str, rel_name: &str) -> Result<RelId, CatalogError> {
    db.rel_id(rel_name)
        .ok_or_else(|| CatalogError::UnknownRelation {
            db: name.to_string(),
            relation: rel_name.to_string(),
        })
}

fn check_arities(
    db: &Database,
    rel: RelId,
    rel_name: &str,
    rows: &[Tuple],
) -> Result<(), CatalogError> {
    let expected = db.relation(rel).arity();
    for row in rows {
        if row.len() != expected {
            return Err(CatalogError::ArityMismatch {
                relation: rel_name.to_string(),
                expected,
                got: row.len(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_relation::ints;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        db.insert(p, ints(&[1, 2]));
        db.insert(p, ints(&[2, 3]));
        db.insert(q, ints(&[2, 4]));
        db
    }

    #[test]
    fn register_freezes_and_warms() {
        let cat = Catalog::new();
        let h = cat.register("tele", sample_db()).unwrap();
        assert_eq!(h.name(), "tele");
        assert_eq!(h.version(), 1);
        assert_eq!(h.total_tuples(), 3);
        let p = h.database().rel_id("p").unwrap();
        assert_eq!(h.generation(p), 1);
        assert_eq!(h.frozen_rows(p).len(), 2);
        assert_eq!(h.frozen_rows(p).row(0), &ints(&[1, 2])[..]);
        assert_eq!(
            cat.register("tele", sample_db()).unwrap_err(),
            CatalogError::DuplicateDb("tele".into())
        );
        assert_eq!(cat.names(), vec!["tele".to_string()]);
    }

    #[test]
    fn append_bumps_only_touched_generation_and_keeps_old_snapshot() {
        let cat = Catalog::new();
        let old = cat.register("tele", sample_db()).unwrap();
        let p = old.database().rel_id("p").unwrap();
        let q = old.database().rel_id("q").unwrap();
        let new = cat.append_rows("tele", "q", vec![ints(&[9, 9])]).unwrap();
        assert_eq!(new.version(), 2);
        assert_eq!(new.generation(q), 2, "touched relation bumps");
        assert_eq!(new.generation(p), 1, "untouched relation keeps its gen");
        // The old snapshot is frozen: still 1 q-row, version 1.
        assert_eq!(old.version(), 1);
        assert_eq!(old.database().relation(q).len(), 1);
        assert_eq!(new.database().relation(q).len(), 2);
        // Untouched relations share arena storage with the old snapshot.
        assert!(ArenaRows::ptr_eq(old.frozen_rows(p), new.frozen_rows(p)));
        assert!(!ArenaRows::ptr_eq(old.frozen_rows(q), new.frozen_rows(q)));
        // The catalog now serves the new snapshot.
        assert_eq!(cat.snapshot("tele").unwrap().version(), 2);
    }

    #[test]
    fn replace_swaps_contents() {
        let cat = Catalog::new();
        cat.register("tele", sample_db()).unwrap();
        let h = cat
            .replace_relation("tele", "p", vec![ints(&[7, 8])])
            .unwrap();
        let p = h.database().rel_id("p").unwrap();
        assert_eq!(h.database().relation(p).len(), 1);
        assert!(h.database().relation(p).contains(&ints(&[7, 8])));
        assert_eq!(h.frozen_rows(p).len(), 1);
    }

    #[test]
    fn update_errors_are_reported() {
        let cat = Catalog::new();
        cat.register("tele", sample_db()).unwrap();
        assert!(matches!(
            cat.append_rows("tele", "zz", vec![]).unwrap_err(),
            CatalogError::UnknownRelation { .. }
        ));
        assert!(matches!(
            cat.append_rows("tele", "p", vec![ints(&[1])]).unwrap_err(),
            CatalogError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
        assert!(matches!(
            cat.append_rows("nope", "p", vec![]).unwrap_err(),
            CatalogError::UnknownDb(_)
        ));
        // A failed update leaves the entry untouched.
        assert_eq!(cat.snapshot("tele").unwrap().version(), 1);
    }

    #[test]
    fn panicking_update_is_isolated_and_entry_stays_usable() {
        let cat = Catalog::new();
        cat.register("tele", sample_db()).unwrap();
        // A panic mid-update surfaces as a per-update error...
        let err = cat
            .update_with("tele", |_db| -> Result<RelId, CatalogError> {
                panic!("boom in touch")
            })
            .unwrap_err();
        assert!(
            matches!(&err, CatalogError::UpdatePanicked { db, message }
                if db == "tele" && message.contains("boom")),
            "want UpdatePanicked, got {err:?}"
        );
        // ...the published snapshot is untouched...
        assert_eq!(cat.snapshot("tele").unwrap().version(), 1);
        // ...and both reads and later updates of the entry still work.
        let h = cat.append_rows("tele", "q", vec![ints(&[9, 9])]).unwrap();
        assert_eq!(h.version(), 2);
        assert_eq!(cat.names(), vec!["tele".to_string()]);
    }

    #[test]
    fn purge_stale_drops_only_old_generations() {
        use mq_core::engine::find_rules::find_rules_shared;
        use mq_core::engine::Thresholds;
        use mq_core::instantiate::InstType;
        use mq_core::parse::parse_metaquery;

        let cat = Catalog::new();
        let h = cat.register("tele", sample_db()).unwrap();
        let Some(memos) = h.memo_service() else {
            // MQ_SHARED_MEMO=0 in this environment: the persistent cache
            // sees no traffic, nothing to purge.
            return;
        };
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let _ = find_rules_shared(h.database(), &mq, InstType::Zero, Thresholds::none(), memos)
            .unwrap();
        let cache = Arc::clone(h.atom_cache());
        let before = cache.len();
        assert!(before > 0, "the search must have warmed the atom cache");
        cat.append_rows("tele", "q", vec![ints(&[5, 6])]).unwrap();
        cat.purge_stale("tele").unwrap();
        let after = cache.len();
        assert!(after < before, "stale q entries must be dropped");
        assert!(after > 0, "untouched p entries must survive");
    }
}
