//! # mq-service — concurrent multi-session metaquery serving
//!
//! The first subsystem **above** the search: where `mq-core` answers one
//! metaquery over one database, this crate serves **many concurrent
//! sessions over a shared catalog of databases**, reusing work across
//! searches instead of just across one search's workers:
//!
//! * [`Catalog`] / [`DbHandle`] — named, **generation-tagged** frozen
//!   database snapshots: pre-warmed `group_index`es, arena-frozen row
//!   storage ([`mq_store::ArenaRows`]), and a persistent cross-search
//!   atom cache per entry (`mq_core::engine::memo::AtomCache`, keyed by
//!   `(relation generation, relation, terms)`). Updates are
//!   copy-on-write: the entry version and only the touched relation's
//!   generation bump, running sessions finish on their snapshot, and
//!   every untouched relation's cache entries stay warm.
//! * [`MqService`] / [`Session`] — the session manager: admission
//!   control (bounded concurrent searches), per-session budgets, and a
//!   per-search memo service seeded from the catalog's atom cache
//!   (`find_rules_shared`).
//! * [`RequestTable`] — in-flight request dedup: identical concurrent
//!   requests (same snapshot version, metaquery, type, thresholds,
//!   budget) coalesce onto **one** running search whose result fans out
//!   to every caller.
//! * [`protocol`] — the line protocol behind `mq serve`, also usable
//!   in-process.
//!
//! Everything is answer-preserving: a served request's bytes equal a
//! cold `find_rules_seq` run over the same snapshot (see the cache
//! generation contract in `ARCHITECTURE.md`; regression-tested in
//! `tests/service.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod dedup;
pub mod faults;
pub mod net;
pub mod protocol;
pub mod session;

pub use catalog::{Catalog, CatalogError, DbHandle};
pub use dedup::{Joined, RequestTable, RetryPolicy, Ticket};
pub use faults::{set_plan_override, CountedSite, FaultPlan};
pub use net::{DrainReport, NetConfig, NetMetricsSnapshot, NetServer};
pub use protocol::{error_code, handle_line, handle_line_opts, register_db, ProtoOptions, Reply};
pub use session::{
    MetaqueryRequest, MqService, QueryOutcome, ServiceConfig, ServiceError, ServiceMetrics,
    Session, SessionBudget, SlowQuery,
};
