//! Deterministic fault injection for the serving stack.
//!
//! A **fault plan** names protocol sites and, per site, a firing
//! probability and an RNG seed: `MQ_FAULTS=site:prob:seed[,...]`, e.g.
//!
//! ```text
//! MQ_FAULTS=read.err:0.05:7,search.panic:0.02:11,write.err:0.05:13
//! ```
//!
//! Each instrumented boundary calls [`crate::faultpoint!`] with its site
//! name; the call returns `true` when the site's deterministic RNG says
//! the fault fires this time. Everything is reproducible: same plan,
//! same call sequence → same faults. The sites the net layer
//! instruments (see `net.rs`):
//!
//! | site           | boundary            | effect when fired            |
//! |----------------|---------------------|------------------------------|
//! | `read.err`     | protocol line read  | treated as an I/O error      |
//! | `read.delay`   | protocol line read  | sleep [`FIRE_DELAY`]         |
//! | `search.panic` | inside the search   | `panic!` (isolated per-request) |
//! | `write.err`    | reply write         | treated as an I/O error      |
//! | `write.delay`  | reply write         | sleep [`FIRE_DELAY`]         |
//!
//! The plan is resolved once from `MQ_FAULTS` (empty/absent = no
//! faults). Tests and harnesses install plans programmatically with
//! [`set_plan_override`] — mutating the environment at runtime is
//! unsound under concurrent reads, exactly like the scheduler's thread
//! override. Per-site fire counters ([`fired_counts`]) feed the chaos
//! harness's recovery accounting.
//!
//! ## Counters
//!
//! Fired/polled counts live in two places with different lifetimes:
//!
//! * **Per plan** ([`fired_counts`]) — counters travel with the
//!   [`FaultPlan`] instance, so installing a fresh plan
//!   ([`set_plan_override`]) starts them at zero. This is the chaos
//!   harness's ledger: each armed test case reads exactly its own
//!   plan's injections.
//! * **Per server** ([`CountedSite`]) — the serving layers poll their
//!   sites through `CountedSite` handles bound to a server's
//!   `mq-obs` registry, surfacing `mq_faults_fired_total` /
//!   `mq_faults_polled_total{site="…"}` in the `metrics` dump. These
//!   are instance counters (one per `MqService`/`NetServer`), never
//!   process-global, and they survive plan swaps — the ambient fault
//!   history of one server, not of one test case.

use mq_store::lock::{read_recover, write_recover};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Duration;

/// How long a `*.delay` site stalls when it fires: long enough to
/// exercise slow-path handling (read/write timeouts, queue backpressure)
/// without turning a chaos run into a sleep benchmark.
pub const FIRE_DELAY: Duration = Duration::from_millis(25);

/// One site's injection config: probability in `[0, 1]` and a
/// deterministic RNG state.
struct Site {
    /// Fire when the next RNG draw, scaled to `[0, 1)`, is below this.
    prob: f64,
    /// xorshift64* state; never zero.
    state: AtomicU64,
    /// How many times this site fired.
    fired: AtomicU64,
    /// How many times this site was consulted.
    polled: AtomicU64,
}

impl Site {
    fn new(prob: f64, seed: u64) -> Self {
        Site {
            prob: prob.clamp(0.0, 1.0),
            state: AtomicU64::new(seed | 1),
            fired: AtomicU64::new(0),
            polled: AtomicU64::new(0),
        }
    }

    /// Advance the RNG one step and decide. The state update is a CAS
    /// loop so concurrent connections draw distinct values; the sequence
    /// of draws (hence the fault schedule) is deterministic for a given
    /// plan even though which *caller* observes each draw may vary.
    fn fire(&self) -> bool {
        self.polled.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let mut x = cur;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match self
                .state
                .compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    let draw =
                        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
                    let hit = draw < self.prob;
                    if hit {
                        self.fired.fetch_add(1, Ordering::Relaxed);
                    }
                    return hit;
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A parsed fault plan: site name → injection config.
pub struct FaultPlan {
    sites: HashMap<String, Site>,
}

/// A malformed `MQ_FAULTS` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanError(String);

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed fault spec `{}` (want site:prob:seed[,site:prob:seed...])",
            self.0
        )
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// An empty plan (no site ever fires).
    pub fn none() -> Self {
        FaultPlan {
            sites: HashMap::new(),
        }
    }

    /// Parse `site:prob:seed[,site:prob:seed...]`. Empty input is the
    /// empty plan.
    pub fn parse(spec: &str) -> Result<Self, FaultPlanError> {
        let mut sites = HashMap::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let fields: Vec<&str> = part.split(':').collect();
            let [site, prob, seed] = fields[..] else {
                return Err(FaultPlanError(part.to_string()));
            };
            let prob: f64 = prob
                .parse()
                .ok()
                .filter(|p: &f64| (0.0..=1.0).contains(p))
                .ok_or_else(|| FaultPlanError(part.to_string()))?;
            let seed: u64 = seed.parse().map_err(|_| FaultPlanError(part.to_string()))?;
            sites.insert(site.to_string(), Site::new(prob, seed));
        }
        Ok(FaultPlan { sites })
    }

    /// Add (or replace) a site. Builder-style, for tests.
    pub fn with_site(mut self, site: &str, prob: f64, seed: u64) -> Self {
        self.sites.insert(site.to_string(), Site::new(prob, seed));
        self
    }

    /// Whether any site is configured.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    fn fire(&self, site: &str) -> bool {
        self.sites.get(site).is_some_and(Site::fire)
    }

    fn counts(&self) -> Vec<(String, u64, u64)> {
        let mut out: Vec<(String, u64, u64)> = self
            .sites
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    s.fired.load(Ordering::Relaxed),
                    s.polled.load(Ordering::Relaxed),
                )
            })
            .collect();
        out.sort();
        out
    }
}

/// The `MQ_FAULTS` plan, resolved once. `None` entries in the override
/// slot fall through to this.
fn env_plan() -> &'static FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    PLAN.get_or_init(|| match std::env::var("MQ_FAULTS") {
        Ok(spec) => match FaultPlan::parse(&spec) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("MQ_FAULTS ignored: {e}");
                FaultPlan::none()
            }
        },
        Err(_) => FaultPlan::none(),
    })
}

/// Programmatic plan override (tests, harnesses): set to bypass the
/// `MQ_FAULTS` resolution without mutating the environment.
static OVERRIDE: RwLock<Option<FaultPlan>> = RwLock::new(None);

/// Install `plan` as the active fault plan (`None` restores `MQ_FAULTS`
/// resolution). Process-global; intended for tests and the chaos
/// harness. Counters start fresh with each installed plan.
pub fn set_plan_override(plan: Option<FaultPlan>) {
    *write_recover(&OVERRIDE) = plan;
}

/// Should the fault at `site` fire now? Consults the override plan, else
/// the `MQ_FAULTS` plan. The hot no-faults path is one RwLock read and
/// one map probe of an empty map.
pub fn fire(site: &str) -> bool {
    if let Some(plan) = read_recover(&OVERRIDE).as_ref() {
        return plan.fire(site);
    }
    env_plan().fire(site)
}

/// Whether any fault site is active (used to label chaos runs).
pub fn active() -> bool {
    if let Some(plan) = read_recover(&OVERRIDE).as_ref() {
        return !plan.is_empty();
    }
    !env_plan().is_empty()
}

/// Per-site `(site, fired, polled)` counters of the active plan, sorted
/// by site name — the chaos harness's injected-fault ledger.
pub fn fired_counts() -> Vec<(String, u64, u64)> {
    if let Some(plan) = read_recover(&OVERRIDE).as_ref() {
        return plan.counts();
    }
    env_plan().counts()
}

/// Sleep [`FIRE_DELAY`] if the delay fault at `site` fires; reports
/// whether it did (callers feed per-server fired counters).
pub fn maybe_delay(site: &str) -> bool {
    let hit = fire(site);
    if hit {
        std::thread::sleep(FIRE_DELAY);
    }
    hit
}

/// An injected I/O error if the fault at `site` fires.
pub fn maybe_io(site: &str) -> std::io::Result<()> {
    if fire(site) {
        return Err(std::io::Error::other(format!("injected fault at {site}")));
    }
    Ok(())
}

/// Panic if the fault at `site` fires (the caller's `catch_unwind`
/// boundary is what's under test).
pub fn maybe_panic(site: &str) {
    if fire(site) {
        // lint:allow(no-panic-in-serving): deliberate injected panic — the serving boundary's catch_unwind is exactly what this fault exercises
        panic!("injected fault at {site}");
    }
}

/// One fault site's per-server registry counters: every poll and fire
/// at the site increments `mq_faults_polled_total` /
/// `mq_faults_fired_total` labeled `site="<name>"` in the owning
/// server's registry. Handles are created once at server construction;
/// polling is two relaxed increments plus the plan draw.
pub struct CountedSite {
    site: &'static str,
    polled: mq_obs::Counter,
    fired: mq_obs::Counter,
}

impl CountedSite {
    /// Counters for `site` in `registry`.
    pub fn new(registry: &mq_obs::Registry, site: &'static str) -> Self {
        CountedSite {
            site,
            polled: registry.counter_labeled(
                "mq_faults_polled_total",
                "Times a fault-injection site was consulted.",
                Some(("site", site)),
            ),
            fired: registry.counter_labeled(
                "mq_faults_fired_total",
                "Times an injected fault fired at a site.",
                Some(("site", site)),
            ),
        }
    }

    /// Draw the site once, counting the poll (and the fire, if any).
    fn draw(&self) -> bool {
        self.polled.inc();
        let hit = fire(self.site);
        if hit {
            self.fired.inc();
        }
        hit
    }

    /// [`maybe_delay`], counted.
    pub fn maybe_delay(&self) {
        if self.draw() {
            std::thread::sleep(FIRE_DELAY);
        }
    }

    /// [`maybe_io`], counted.
    pub fn maybe_io(&self) -> std::io::Result<()> {
        if self.draw() {
            return Err(std::io::Error::other(format!(
                "injected fault at {}",
                self.site
            )));
        }
        Ok(())
    }

    /// [`maybe_panic`], counted (the fire is recorded *before* the
    /// unwind, so the counter survives the caller's `catch_unwind`).
    pub fn maybe_panic(&self) {
        if self.draw() {
            // lint:allow(no-panic-in-serving): deliberate injected panic — the serving boundary's catch_unwind is exactly what this fault exercises
            panic!("injected fault at {}", self.site);
        }
    }
}

/// `true` when the fault at `$site` should fire now — the instrumented
/// boundary decides what "firing" means (I/O error, delay, panic).
/// Resolution comes from the active [`FaultPlan`] (`MQ_FAULTS` or
/// [`set_plan_override`]); with no plan the check is near-free.
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        $crate::faults::fire($site)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_well_formed_specs_and_rejects_garbage() {
        let plan = FaultPlan::parse("read.err:0.5:7, write.err:1:9").unwrap();
        assert!(!plan.is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("read.err:0.5").is_err());
        assert!(FaultPlan::parse("read.err:1.5:7").is_err());
        assert!(FaultPlan::parse("read.err:x:7").is_err());
        assert!(FaultPlan::parse("read.err:0.5:x").is_err());
    }

    #[test]
    fn prob_bounds_are_honored() {
        let always = FaultPlan::none().with_site("s", 1.0, 42);
        let never = FaultPlan::none().with_site("s", 0.0, 42);
        for _ in 0..100 {
            assert!(always.fire("s"));
            assert!(!never.fire("s"));
        }
        // Unknown sites never fire.
        assert!(!always.fire("other"));
        let counts = always.counts();
        assert_eq!(counts, vec![("s".to_string(), 100, 100)]);
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::none().with_site("s", 0.3, 1234);
        let b = FaultPlan::none().with_site("s", 0.3, 1234);
        let draws_a: Vec<bool> = (0..200).map(|_| a.fire("s")).collect();
        let draws_b: Vec<bool> = (0..200).map(|_| b.fire("s")).collect();
        assert_eq!(draws_a, draws_b, "deterministic for a fixed seed");
        let fired = draws_a.iter().filter(|&&f| f).count();
        assert!(
            (20..=100).contains(&fired),
            "p=0.3 over 200 draws fired {fired} times"
        );
    }
}
