//! The session manager: many concurrent metaquery searches over one
//! catalog.
//!
//! [`MqService`] is the top of the serving stack. Each request names a
//! catalog entry; the service pins the entry's current [`DbHandle`]
//! snapshot, coalesces identical in-flight requests
//! ([`crate::dedup::RequestTable`]), applies **admission control** (at
//! most [`ServiceConfig::max_concurrent`] searches execute at once —
//! excess owners queue on a semaphore; dedup followers never consume a
//! permit, they only wait for their owner), and runs `find_rules` with a
//! per-search memo service seeded from the entry's persistent
//! cross-search atom cache ([`DbHandle::memo_service`]).
//!
//! A [`Session`] pins one snapshot for its lifetime: every query it
//! issues sees exactly the rows the session opened with, even while the
//! catalog publishes updated snapshots underneath — the generation tags
//! in the memo keys guarantee its cache probes never observe post-update
//! bindings. Sessions also carry a [`SessionBudget`] applied to every
//! query they issue.
//!
//! Answers are **byte-identical to a cold `find_rules_seq` run** over
//! the same snapshot, whether a request executed, was coalesced onto a
//! concurrent twin, or was served from a warm atom cache — every cache
//! value is a deterministic function of its key and the snapshot
//! generations (regression-tested in `tests/service.rs`).

use crate::catalog::{panic_message, Catalog, CatalogError, DbHandle};
use crate::dedup::{Joined, RequestTable, RetryPolicy};
use crate::faults::CountedSite;
use mq_core::engine::find_rules::find_rules_instrumented;
use mq_core::engine::memo::MemoStats;
use mq_core::engine::{MqAnswer, Thresholds};
use mq_core::instantiate::{InstError, InstType};
use mq_core::parse::parse_metaquery;
use mq_core::plan::PlanNodeId;
use mq_obs::profile::{NodeStat, SearchProfile};
use mq_obs::{trace, Counter, FlightRecorder, Histogram, Registry};
use mq_relation::{Database, RelId, Tuple};
use mq_store::lock::{lock_recover, wait_recover};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

/// Errors surfaced to service callers. `Clone` because a deduplicated
/// error is fanned out to every coalesced caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Catalog lookup/update failure.
    Catalog(CatalogError),
    /// The request's metaquery text does not parse.
    Parse(String),
    /// The engine rejected the (metaquery, database, type) combination.
    Engine(InstError),
    /// The search panicked. Caught at the request boundary and published
    /// to every coalesced caller; the service stays up and later
    /// requests (even identical ones) run fresh searches.
    SearchPanicked(String),
    /// Every dedup retry after abandoned-owner wakeups failed — the
    /// request kept losing owners. Distinct from [`Self::SearchPanicked`]
    /// (this caller never got to run or share a search at all).
    RetriesExhausted {
        /// How many times this caller re-joined before giving up.
        attempts: u32,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Catalog(e) => write!(f, "{e}"),
            ServiceError::Parse(msg) => write!(f, "invalid metaquery: {msg}"),
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::SearchPanicked(msg) => write!(f, "search panicked: {msg}"),
            ServiceError::RetriesExhausted { attempts } => {
                write!(
                    f,
                    "request kept losing its owner; gave up after {attempts} retries"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CatalogError> for ServiceError {
    fn from(e: CatalogError) -> Self {
        ServiceError::Catalog(e)
    }
}

/// Service-wide configuration. The default admits everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceConfig {
    /// Maximum number of searches executing at once (`0` = unlimited).
    /// Excess requests queue; dedup followers wait on their owner
    /// without consuming a permit.
    pub max_concurrent: usize,
    /// Follower behavior after abandoned-owner dedup wakeups.
    pub retry: RetryPolicy,
}

/// Per-session limits applied to every query the session issues.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SessionBudget {
    /// Keep at most this many answers (sorted order, so the kept prefix
    /// is deterministic). `None` = unbounded.
    pub max_answers: Option<usize>,
    /// Per-query wall-clock deadline in milliseconds. The engine checks
    /// it cooperatively; an overrunning search returns
    /// [`InstError::DeadlineExceeded`] instead of partial answers.
    /// `None` = unbounded.
    pub max_wall_ms: Option<u64>,
}

/// One metaquery request against a named catalog entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MetaqueryRequest {
    /// The catalog entry to search.
    pub db: String,
    /// The metaquery text (also the dedup identity — textually identical
    /// requests coalesce; semantically equal but differently written
    /// ones do not).
    pub metaquery: String,
    /// The instantiation type.
    pub ty: InstType,
    /// The index thresholds.
    pub thresholds: Thresholds,
    /// Keep at most this many (sorted) answers.
    pub max_answers: Option<usize>,
    /// Per-request wall-clock deadline in milliseconds (`None` =
    /// unbounded).
    pub max_wall_ms: Option<u64>,
}

impl MetaqueryRequest {
    /// A type-0, no-thresholds, unbounded request.
    pub fn new(db: impl Into<String>, metaquery: impl Into<String>) -> Self {
        MetaqueryRequest {
            db: db.into(),
            metaquery: metaquery.into(),
            ty: InstType::Zero,
            thresholds: Thresholds::none(),
            max_answers: None,
            max_wall_ms: None,
        }
    }
}

/// The identity under which concurrent requests coalesce: everything
/// that determines the answer bytes, including the snapshot version (so
/// requests across an update never share results).
#[derive(Clone, PartialEq, Eq, Hash)]
struct RequestKey {
    db: String,
    version: u64,
    metaquery: String,
    ty: InstType,
    thresholds: Thresholds,
    max_answers: Option<usize>,
    max_wall_ms: Option<u64>,
}

/// What a finished search shares with every coalesced caller.
#[derive(Clone)]
struct CompletedSearch {
    answers: Arc<Vec<MqAnswer>>,
    db_version: u64,
    memo: MemoStats,
}

type SearchResult = Result<CompletedSearch, ServiceError>;

/// One answered request.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The answers, in `find_rules` order (shared when deduplicated).
    pub answers: Arc<Vec<MqAnswer>>,
    /// The snapshot version the search ran against.
    pub db_version: u64,
    /// `true` when this caller was coalesced onto another caller's
    /// in-flight search instead of executing its own.
    pub shared: bool,
    /// The executing search's memo-service hit/miss counters (the
    /// owner's counters, when `shared`).
    pub memo: MemoStats,
    /// The trace request id this query ran (or coalesced) under — the
    /// handle for `trace <req-id>` span lookup.
    pub req_id: u64,
}

/// One slow-query log entry: the request, its wall time, and the
/// hottest plan nodes of its (detailed) profile.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The trace request id (spans may still be in the rings).
    pub req_id: u64,
    /// Catalog entry searched.
    pub db: String,
    /// The metaquery text.
    pub metaquery: String,
    /// Wall milliseconds the search took.
    pub wall_ms: u64,
    /// Hottest plan nodes, `(node id, rendered op, stats)`, hottest
    /// first.
    pub nodes: Vec<(usize, String, NodeStat)>,
}

/// Entries the slow-query log retains (oldest evicted first).
const SLOWLOG_CAP: usize = 32;

/// Hottest plan nodes recorded per slow query.
const SLOWLOG_TOP_NODES: usize = 8;

/// The service's metric handles, pre-created at construction so hot
/// paths never take the registry lock. Names follow the
/// `mq_<family>_<metric>` contract enforced by mq-lint's
/// `metric-registry` rule.
struct Handles {
    requests: Counter,
    executed: Counter,
    deduped: Counter,
    dedup_retries: Counter,
    panics_caught: Counter,
    deadline_exceeded: Counter,
    memo_hits: Counter,
    memo_misses: Counter,
    sched_tasks: Counter,
    exec_nodes: Counter,
    exec_memo_hits: Counter,
    catalog_updates: Counter,
    admission_wait_ns: Histogram,
    search_wall_ns: Histogram,
    follower_wait_ns: Histogram,
    catalog_update_ns: Histogram,
}

impl Handles {
    fn new(reg: &Registry) -> Handles {
        Handles {
            requests: reg.counter(
                "mq_session_requests_total",
                "Metaquery requests received (including deduplicated ones).",
            ),
            executed: reg.counter(
                "mq_session_executed_total",
                "Searches actually executed (not served by dedup).",
            ),
            deduped: reg.counter(
                "mq_dedup_shared_total",
                "Requests served by coalescing onto an in-flight twin.",
            ),
            dedup_retries: reg.counter(
                "mq_dedup_retries_total",
                "Dedup re-joins after an owner abandoned its slot.",
            ),
            panics_caught: reg.counter(
                "mq_session_panics_caught_total",
                "Search panics caught at the request boundary.",
            ),
            deadline_exceeded: reg.counter(
                "mq_session_deadline_exceeded_total",
                "Searches that overran their wall-clock deadline.",
            ),
            memo_hits: reg.counter(
                "mq_memo_hits_total",
                "Memo-service hits, summed over executed searches.",
            ),
            memo_misses: reg.counter(
                "mq_memo_misses_total",
                "Memo-service misses, summed over executed searches.",
            ),
            sched_tasks: reg.counter(
                "mq_sched_tasks_total",
                "Scheduler prefix tasks claimed by search workers.",
            ),
            exec_nodes: reg.counter(
                "mq_exec_nodes_total",
                "Plan-node evaluations that ran an executor kernel.",
            ),
            exec_memo_hits: reg.counter(
                "mq_exec_memo_hits_total",
                "Plan-node evaluations satisfied from a memo instead.",
            ),
            catalog_updates: reg.counter(
                "mq_catalog_updates_total",
                "Copy-on-write catalog updates published.",
            ),
            admission_wait_ns: reg.histogram(
                "mq_session_admission_wait_ns",
                "Time owners waited on the admission semaphore.",
            ),
            search_wall_ns: reg.histogram(
                "mq_session_search_wall_ns",
                "Wall time of executed searches.",
            ),
            follower_wait_ns: reg.histogram(
                "mq_dedup_follower_wait_ns",
                "Time dedup followers blocked on their owner's search.",
            ),
            catalog_update_ns: reg.histogram(
                "mq_catalog_update_ns",
                "Wall time of copy-on-write catalog updates (including freeze).",
            ),
        }
    }
}

/// Counters the service accumulates across its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Requests received (including deduplicated ones).
    pub requests: u64,
    /// Searches actually executed.
    pub executed: u64,
    /// Requests served by coalescing onto an in-flight twin.
    pub deduped: u64,
    /// Searches that panicked and were caught at the request boundary.
    pub panics_caught: u64,
    /// Searches that overran their wall-clock deadline.
    pub deadline_exceeded: u64,
    /// Per-search memo-service traffic, summed over executed searches.
    pub memo: MemoStats,
}

/// A small counting semaphore (admission control). `max == 0` admits
/// everything.
struct Semaphore {
    max: usize,
    busy: Mutex<usize>,
    idle: Condvar,
}

struct Permit<'a>(Option<&'a Semaphore>);

impl Semaphore {
    fn new(max: usize) -> Self {
        Semaphore {
            max,
            busy: Mutex::new(0),
            idle: Condvar::new(),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        if self.max == 0 {
            return Permit(None);
        }
        let mut busy = lock_recover(&self.busy);
        while *busy >= self.max {
            busy = wait_recover(&self.idle, busy);
        }
        *busy += 1;
        Permit(Some(self))
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if let Some(sem) = self.0 {
            *lock_recover(&sem.busy) -= 1;
            sem.idle.notify_one();
        }
    }
}

/// The concurrent metaquery service: a catalog of frozen databases, a
/// dedup table, admission control and an `mq-obs` metrics registry. All
/// methods take `&self`; share it across session threads behind an
/// `Arc` (or plain borrows with `std::thread::scope`).
///
/// All counters live in the per-instance [`Registry`] (never
/// process-global — two services in one process keep separate books);
/// [`MqService::registry`] exposes it for Prometheus-text exposition.
pub struct MqService {
    catalog: Catalog,
    inflight: RequestTable<RequestKey, SearchResult>,
    gate: Semaphore,
    retry: RetryPolicy,
    registry: Arc<Registry>,
    m: Handles,
    search_panic: CountedSite,
    slowlog: Arc<Mutex<VecDeque<SlowQuery>>>,
    recorder: Arc<FlightRecorder>,
}

impl MqService {
    /// A service with default configuration (unlimited admission).
    pub fn new() -> Self {
        Self::with_config(ServiceConfig::default())
    }

    /// A service with explicit configuration.
    pub fn with_config(cfg: ServiceConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let m = Handles::new(&registry);
        let search_panic = CountedSite::new(&registry, "search.panic");
        let slowlog: Arc<Mutex<VecDeque<SlowQuery>>> = Arc::new(Mutex::new(VecDeque::new()));
        let recorder = Arc::new(FlightRecorder::new(&registry));
        // Incident context: the watchdog snapshots the latest slow
        // query's hottest plan nodes at detection time (empty while the
        // slow-query log is disarmed or has seen nothing slow).
        let incident_nodes = Arc::clone(&slowlog);
        recorder.set_node_source(Box::new(move || {
            lock_recover(&incident_nodes)
                .back()
                .map(|sq| {
                    sq.nodes
                        .iter()
                        .map(|(id, label, stat)| {
                            format!(
                                "node #{id} {label} wall_us={} execs={} rows_out={}",
                                stat.wall_ns / 1_000,
                                stat.execs,
                                stat.rows_out
                            )
                        })
                        .collect()
                })
                .unwrap_or_default()
        }));
        MqService {
            catalog: Catalog::new(),
            inflight: RequestTable::new(),
            gate: Semaphore::new(cfg.max_concurrent),
            retry: cfg.retry,
            registry,
            m,
            search_panic,
            slowlog,
            recorder,
        }
    }

    /// The underlying catalog (register/update/snapshot/purge).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// This service instance's metric registry (the `metrics` command
    /// renders it; the net layer registers its own families here too).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// This instance's flight recorder: metric history, SLO health
    /// verdicts, and the anomaly-incident log. Filled by the background
    /// scraper the net layer starts (`MQ_SCRAPE_MS`); library embedders
    /// can drive it directly via [`FlightRecorder::tick`].
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Snapshot of the slow-query log, oldest first. Armed by
    /// `MQ_SLOW_MS` / [`mq_obs::set_slow_ms_override`]; empty while
    /// disarmed.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        lock_recover(&self.slowlog).iter().cloned().collect()
    }

    /// Run one catalog mutation under the `catalog.update` span and the
    /// `mq_catalog_*` metrics.
    fn timed_update<T>(
        &self,
        op: impl FnOnce() -> Result<T, CatalogError>,
    ) -> Result<T, ServiceError> {
        let _span = trace::SpanGuard::start_always(trace::CATALOG_UPDATE);
        let t0 = trace::now_ns();
        let r = op();
        self.m
            .catalog_update_ns
            .observe_ns(trace::now_ns().saturating_sub(t0));
        if r.is_ok() {
            self.m.catalog_updates.inc();
        }
        Ok(r?)
    }

    /// Mutate `name` copy-on-write through an arbitrary closure (the
    /// instrumented face of [`Catalog::update_with`]): records the
    /// `catalog.update` span and update metrics like
    /// [`MqService::append_rows`] / [`MqService::replace_relation`].
    pub fn update_with(
        &self,
        name: &str,
        touch: impl FnOnce(&mut Database) -> Result<RelId, CatalogError>,
    ) -> Result<DbHandle, ServiceError> {
        self.timed_update(|| self.catalog.update_with(name, touch))
    }

    /// Register `db` under `name` (freezes and pre-warms it).
    pub fn register(&self, name: &str, db: Database) -> Result<DbHandle, ServiceError> {
        Ok(self.catalog.register(name, db)?)
    }

    /// Append rows to a relation — copy-on-write: bumps the entry
    /// version and only the touched relation's generation; running
    /// sessions finish on their snapshot.
    pub fn append_rows(
        &self,
        name: &str,
        rel: &str,
        rows: Vec<Tuple>,
    ) -> Result<DbHandle, ServiceError> {
        self.timed_update(|| self.catalog.append_rows(name, rel, rows))
    }

    /// Replace a relation's contents — copy-on-write, like
    /// [`MqService::append_rows`].
    pub fn replace_relation(
        &self,
        name: &str,
        rel: &str,
        rows: Vec<Tuple>,
    ) -> Result<DbHandle, ServiceError> {
        self.timed_update(|| self.catalog.replace_relation(name, rel, rows))
    }

    /// Open a session pinned to the current snapshot of `name`, with no
    /// budget.
    pub fn session(&self, name: &str) -> Result<Session<'_>, ServiceError> {
        self.session_with_budget(name, SessionBudget::default())
    }

    /// Open a budgeted session pinned to the current snapshot of `name`.
    pub fn session_with_budget(
        &self,
        name: &str,
        budget: SessionBudget,
    ) -> Result<Session<'_>, ServiceError> {
        Ok(Session {
            service: self,
            handle: self.catalog.snapshot(name)?,
            budget,
        })
    }

    /// Answer `req` against the **current** snapshot of its database
    /// (one-shot convenience; open a [`Session`] to pin a snapshot
    /// across several queries).
    pub fn query(&self, req: &MetaqueryRequest) -> Result<QueryOutcome, ServiceError> {
        let handle = self.catalog.snapshot(&req.db)?;
        self.query_at(&handle, req)
    }

    /// Answer `req` against an explicit snapshot. Identical concurrent
    /// requests (same snapshot version) coalesce onto one search.
    pub fn query_at(
        &self,
        handle: &DbHandle,
        req: &MetaqueryRequest,
    ) -> Result<QueryOutcome, ServiceError> {
        self.m.requests.inc();
        // Adopt the caller's trace request id (the net layer scopes the
        // connection thread before dispatching); mint one for direct
        // library callers so their spans assemble too.
        let ambient = trace::current_request();
        let req_id = if ambient != 0 {
            ambient
        } else {
            mq_obs::next_request_id()
        };
        let _scope = (ambient == 0).then(|| trace::request_scope(req_id));
        // Parse before joining the dedup table so malformed requests
        // fail fast without occupying a slot.
        let mq = parse_metaquery(&req.metaquery).map_err(|e| ServiceError::Parse(e.to_string()))?;
        let key = RequestKey {
            db: handle.name().to_string(),
            version: handle.version(),
            metaquery: req.metaquery.clone(),
            ty: req.ty,
            thresholds: req.thresholds,
            max_answers: req.max_answers,
            max_wall_ms: req.max_wall_ms,
        };
        let mut retries = 0u32;
        loop {
            let join_start = trace::now_ns();
            match self.inflight.join(key.clone()) {
                Joined::Owner(ticket) => {
                    let result = self.run_search(handle, &mq, req, req_id);
                    let result = ticket.publish(result);
                    return result.map(|c| QueryOutcome {
                        answers: c.answers,
                        db_version: c.db_version,
                        shared: false,
                        memo: c.memo,
                        req_id,
                    });
                }
                Joined::Shared(result) => {
                    // The join blocked until the owner published — that
                    // wait is this follower's whole service time.
                    let waited = trace::now_ns().saturating_sub(join_start);
                    self.m.deduped.inc();
                    self.m.follower_wait_ns.observe_ns(waited);
                    trace::record_span(trace::REQ_DEDUP_WAIT, req_id, join_start, waited);
                    return result.map(|c| QueryOutcome {
                        answers: c.answers,
                        db_version: c.db_version,
                        shared: true,
                        memo: c.memo,
                        req_id,
                    });
                }
                // The owner dropped its slot without publishing (it was
                // killed between joining and finishing — publish-side
                // panics are caught and published as errors, so this is
                // rare). Back off and re-join; give up after the
                // configured number of wakeups rather than spinning on a
                // crash-looping owner forever.
                Joined::Retry => {
                    self.m.dedup_retries.inc();
                    retries += 1;
                    if retries >= self.retry.max_attempts {
                        return Err(ServiceError::RetriesExhausted { attempts: retries });
                    }
                    std::thread::sleep(self.retry.backoff(retries));
                }
            }
        }
    }

    /// Execute one search under admission control, with a memo service
    /// seeded from the snapshot's persistent atom cache.
    fn run_search(
        &self,
        handle: &DbHandle,
        mq: &mq_core::ast::Metaquery,
        req: &MetaqueryRequest,
        req_id: u64,
    ) -> SearchResult {
        let wait_start = trace::now_ns();
        let _permit = {
            let _span = trace::SpanGuard::start_always(trace::REQ_ADMISSION);
            self.gate.acquire()
        };
        self.m
            .admission_wait_ns
            .observe_ns(trace::now_ns().saturating_sub(wait_start));
        self.m.executed.inc();
        let memos = handle.memo_service();
        // Always-on totals are two relaxed increments per node; per-node
        // detail only when someone will read it (tracing on, or the
        // slow-query log armed).
        let detailed = mq_obs::trace_enabled() || mq_obs::slow_ms().is_some();
        let profile = Arc::new(if detailed {
            SearchProfile::detailed()
        } else {
            SearchProfile::new()
        });
        let search_start = trace::now_ns();
        // Panic isolation boundary: a panic anywhere inside the search
        // (engine bug, injected `search.panic` fault — worker panics
        // propagate here through the scope join) becomes an error the
        // owner *publishes*, so every coalesced follower shares it
        // instead of retrying a search that would panic again.
        // `AssertUnwindSafe` is sound: the search mutates only state
        // owned by this call (the memo service tolerates abandoned
        // in-flight entries), and on `Err` nothing from the closure is
        // reused.
        let searched = catch_unwind(AssertUnwindSafe(|| {
            let _span = trace::SpanGuard::start_always(trace::SEARCH_RUN);
            self.search_panic.maybe_panic();
            // `memos: None` (MQ_SHARED_MEMO=0) keeps the engine's own
            // resolution: private per-worker memos, no persistence.
            find_rules_instrumented(
                handle.database(),
                mq,
                req.ty,
                req.thresholds,
                memos.clone(),
                req.max_wall_ms,
                Some(Arc::clone(&profile)),
                req_id,
            )
        }));
        let wall_ns = trace::now_ns().saturating_sub(search_start);
        self.m.search_wall_ns.observe_ns(wall_ns);
        // Drain the profile's always-on totals into the service
        // families (worker executors flushed on drop, panic or not).
        self.m
            .sched_tasks
            .add(profile.tasks.load(Ordering::Relaxed));
        self.m
            .exec_nodes
            .add(profile.node_execs.load(Ordering::Relaxed));
        self.m
            .exec_memo_hits
            .add(profile.node_memo_hits.load(Ordering::Relaxed));
        self.log_if_slow(handle, req, req_id, wall_ns, &profile, memos.as_deref());
        let searched = match searched {
            Ok(r) => r,
            Err(payload) => {
                self.m.panics_caught.inc();
                return Err(ServiceError::SearchPanicked(panic_message(&*payload)));
            }
        };
        if matches!(&searched, Err(InstError::DeadlineExceeded { .. })) {
            self.m.deadline_exceeded.inc();
        }
        match searched {
            Ok(mut answers) => {
                if let Some(limit) = req.max_answers {
                    answers.truncate(limit);
                }
                let memo = memos.as_ref().map(|m| m.stats()).unwrap_or_default();
                self.m.memo_hits.add(memo.hits);
                self.m.memo_misses.add(memo.misses);
                Ok(CompletedSearch {
                    answers: Arc::new(answers),
                    db_version: handle.version(),
                    memo,
                })
            }
            Err(e) => Err(ServiceError::Engine(e)),
        }
    }

    /// Append a slow-query entry when the log is armed and `wall_ns`
    /// crosses the threshold (panicked/errored searches included — a
    /// slow failure is still a slow query).
    fn log_if_slow(
        &self,
        handle: &DbHandle,
        req: &MetaqueryRequest,
        req_id: u64,
        wall_ns: u64,
        profile: &SearchProfile,
        memos: Option<&mq_core::engine::memo::SharedMemos>,
    ) {
        let Some(thresh_ms) = mq_obs::slow_ms() else {
            return;
        };
        let wall_ms = wall_ns / 1_000_000;
        if wall_ms < thresh_ms {
            return;
        }
        let nodes = profile
            .top_nodes(SLOWLOG_TOP_NODES)
            .into_iter()
            .map(|(id, stat)| {
                let label = memos
                    .and_then(|m| m.describe_plan_node(PlanNodeId(id as u32)))
                    .unwrap_or_else(|| format!("node#{id}"));
                (id, label, stat)
            })
            .collect();
        let mut log = lock_recover(&self.slowlog);
        if log.len() >= SLOWLOG_CAP {
            log.pop_front();
        }
        log.push_back(SlowQuery {
            req_id,
            db: handle.name().to_string(),
            metaquery: req.metaquery.clone(),
            wall_ms,
            nodes,
        });
    }

    /// Snapshot of the service counters (reads the registry handles).
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            requests: self.m.requests.get(),
            executed: self.m.executed.get(),
            deduped: self.m.deduped.get(),
            panics_caught: self.m.panics_caught.get(),
            deadline_exceeded: self.m.deadline_exceeded.get(),
            memo: MemoStats {
                hits: self.m.memo_hits.get(),
                misses: self.m.memo_misses.get(),
            },
        }
    }

    /// Hit/miss counters of `name`'s persistent cross-search atom cache.
    pub fn atom_cache_stats(&self, name: &str) -> Result<MemoStats, ServiceError> {
        Ok(self.catalog.snapshot(name)?.atom_cache().stats())
    }
}

impl Default for MqService {
    fn default() -> Self {
        Self::new()
    }
}

/// A session pinned to one database snapshot, with a per-session budget.
/// Queries issued through the session are snapshot-consistent: catalog
/// updates published after the session opened are invisible to it.
pub struct Session<'s> {
    service: &'s MqService,
    handle: DbHandle,
    budget: SessionBudget,
}

impl Session<'_> {
    /// The pinned snapshot.
    pub fn handle(&self) -> &DbHandle {
        &self.handle
    }

    /// The snapshot version this session is pinned to.
    pub fn db_version(&self) -> u64 {
        self.handle.version()
    }

    /// Answer a metaquery against the pinned snapshot, under the
    /// session's budget.
    pub fn query(
        &self,
        metaquery: &str,
        ty: InstType,
        thresholds: Thresholds,
    ) -> Result<QueryOutcome, ServiceError> {
        let req = MetaqueryRequest {
            db: self.handle.name().to_string(),
            metaquery: metaquery.to_string(),
            ty,
            thresholds,
            max_answers: self.budget.max_answers,
            max_wall_ms: self.budget.max_wall_ms,
        };
        self.service.query_at(&self.handle, &req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_core::engine::find_rules::find_rules;
    use mq_relation::ints;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        for i in 0..6i64 {
            db.insert(p, ints(&[i, i + 1]));
            db.insert(q, ints(&[i + 1, i + 2]));
        }
        db
    }

    const MQ: &str = "R(X,Z) <- P(X,Y), Q(Y,Z)";

    #[test]
    fn query_matches_direct_find_rules() {
        let svc = MqService::new();
        let db = sample_db();
        svc.register("tele", db.clone()).unwrap();
        let out = svc.query(&MetaqueryRequest::new("tele", MQ)).unwrap();
        let direct = find_rules(
            &db,
            &parse_metaquery(MQ).unwrap(),
            InstType::Zero,
            Thresholds::none(),
        )
        .unwrap();
        assert_eq!(*out.answers, direct);
        assert_eq!(out.db_version, 1);
        assert!(!out.shared);
        let m = svc.metrics();
        assert_eq!((m.requests, m.executed, m.deduped), (1, 1, 0));
    }

    #[test]
    fn parse_and_lookup_errors_fail_fast() {
        let svc = MqService::new();
        svc.register("tele", sample_db()).unwrap();
        assert!(matches!(
            svc.query(&MetaqueryRequest::new("nope", MQ)).unwrap_err(),
            ServiceError::Catalog(CatalogError::UnknownDb(_))
        ));
        assert!(matches!(
            svc.query(&MetaqueryRequest::new("tele", "not a metaquery"))
                .unwrap_err(),
            ServiceError::Parse(_)
        ));
        assert!(svc.inflight.is_empty());
    }

    #[test]
    fn session_budget_truncates_sorted_answers() {
        let svc = MqService::new();
        let db = sample_db();
        svc.register("tele", db.clone()).unwrap();
        let full = svc.query(&MetaqueryRequest::new("tele", MQ)).unwrap();
        assert!(full.answers.len() > 2);
        let sess = svc
            .session_with_budget(
                "tele",
                SessionBudget {
                    max_answers: Some(2),
                    ..SessionBudget::default()
                },
            )
            .unwrap();
        let limited = sess.query(MQ, InstType::Zero, Thresholds::none()).unwrap();
        assert_eq!(limited.answers.len(), 2);
        assert_eq!(&limited.answers[..], &full.answers[..2]);
    }

    #[test]
    fn admission_control_still_answers_everything() {
        let svc = Arc::new(MqService::with_config(ServiceConfig {
            max_concurrent: 1,
            ..ServiceConfig::default()
        }));
        let db = sample_db();
        svc.register("tele", db.clone()).unwrap();
        let expected = find_rules(
            &db,
            &parse_metaquery(MQ).unwrap(),
            InstType::Zero,
            Thresholds::none(),
        )
        .unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = Arc::clone(&svc);
                let expected = expected.clone();
                s.spawn(move || {
                    let out = svc.query(&MetaqueryRequest::new("tele", MQ)).unwrap();
                    assert_eq!(*out.answers, expected);
                });
            }
        });
        let m = svc.metrics();
        assert_eq!(m.requests, 4);
        assert_eq!(m.executed + m.deduped, 4);
        assert!(m.executed >= 1);
    }

    #[test]
    fn zero_wall_budget_surfaces_deadline_error() {
        let svc = MqService::new();
        svc.register("tele", sample_db()).unwrap();
        let req = MetaqueryRequest {
            max_wall_ms: Some(0),
            ..MetaqueryRequest::new("tele", MQ)
        };
        let err = svc.query(&req).unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::Engine(InstError::DeadlineExceeded { budget_ms: 0 })
            ),
            "want deadline error, got {err:?}"
        );
        assert_eq!(svc.metrics().deadline_exceeded, 1);
        // A generous budget answers normally (and is a distinct dedup
        // identity from the expired request).
        let ok = svc
            .query(&MetaqueryRequest {
                max_wall_ms: Some(60_000),
                ..MetaqueryRequest::new("tele", MQ)
            })
            .unwrap();
        assert!(!ok.answers.is_empty());
    }

    // NOTE: fault-plan injection tests (search.panic isolation, chaos
    // byte-identity) live in `tests/chaos.rs`: `set_plan_override` is
    // process-global, so they serialize behind a lock in their own test
    // binary instead of racing this crate's unit tests.

    #[test]
    fn session_pins_snapshot_across_updates() {
        let svc = MqService::new();
        let db = sample_db();
        svc.register("tele", db.clone()).unwrap();
        let sess = svc.session("tele").unwrap();
        // Update lands after the session opened.
        svc.append_rows("tele", "p", vec![ints(&[50, 0])]).unwrap();
        let pinned = sess.query(MQ, InstType::Zero, Thresholds::none()).unwrap();
        let old_expected = find_rules(
            &db,
            &parse_metaquery(MQ).unwrap(),
            InstType::Zero,
            Thresholds::none(),
        )
        .unwrap();
        assert_eq!(*pinned.answers, old_expected, "session sees its snapshot");
        assert_eq!(pinned.db_version, 1);
        // A fresh query sees the update.
        let fresh = svc.query(&MetaqueryRequest::new("tele", MQ)).unwrap();
        assert_eq!(fresh.db_version, 2);
        assert_ne!(*fresh.answers, old_expected);
    }
}
