//! The TCP transport: `mq serve --tcp` (the `mq-net` layer).
//!
//! A [`NetServer`] binds a `std::net::TcpListener` and serves the line
//! protocol ([`crate::protocol`]) thread-per-connection, wrapped in the
//! robustness layer the stdin server never needed:
//!
//! * **Connection admission** — at most [`NetConfig::max_connections`]
//!   live connections; excess connects are answered `err busy …` and
//!   closed (structured degradation, not a silent hang). Search
//!   concurrency stays bounded by the service's own admission
//!   semaphore.
//! * **Per-request deadlines** — [`NetConfig::default_wall_ms`] applies
//!   the cooperative engine deadline to every `mine` without an
//!   explicit `wall=` flag; an overrunning search answers
//!   `err deadline …` instead of hanging the connection.
//! * **Panic isolation** — each request runs under `catch_unwind`
//!   (on top of the service's own search-boundary isolation), so a
//!   panicking handler kills one reply, never the server.
//! * **Slow-client handling** — replies go through a bounded
//!   per-connection write queue drained by a writer thread with a
//!   socket write timeout. A client that stops reading first gets
//!   backpressure (the queue fills), then is disconnected once the
//!   queue stays full past [`NetConfig::write_timeout`] — it can never
//!   stall a protocol worker indefinitely.
//! * **Bounded request lines** — a line longer than
//!   [`NetConfig::max_line_len`] is answered `err oversized …` and the
//!   remainder of the line is discarded in bounded chunks; connection
//!   memory never grows with client input.
//! * **Graceful shutdown** — the `shutdown` protocol command (or a
//!   programmatic [`NetServer::shutdown`]) stops the accept loop,
//!   drains live connections until [`NetConfig::drain_deadline`], then
//!   force-closes stragglers and reports a [`DrainReport`]. (A SIGTERM
//!   handler would need `unsafe` signal code, which this crate forbids;
//!   process supervisors should send `shutdown` over a connection.)
//!
//! Fault-injection sites ([`crate::faults`], keyed by `MQ_FAULTS`):
//! `read.err` / `read.delay` at the request-read boundary (an injected
//! read fault answers that request `err io …`), `search.panic` inside
//! the search (see `session.rs`), `write.err` / `write.delay` at the
//! reply-write boundary (an injected write fault drops the connection —
//! clients observe a disconnect and recover by reconnecting).

use crate::faults::CountedSite;
use crate::protocol::{handle_line_opts, ProtoOptions, Reply};
use crate::session::MqService;
use mq_obs::{trace, Counter, Gauge, Histogram, Registry, Scraper};
use mq_store::lock::lock_recover;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// TCP server configuration. The defaults suit tests and moderate
/// serving; production deployments mostly tune `max_connections` and
/// `default_wall_ms`.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Maximum live connections; excess connects get `err busy` and are
    /// closed. `0` = unlimited.
    pub max_connections: usize,
    /// Socket read poll interval: how quickly an idle connection
    /// notices shutdown. Not an idle-client disconnect — reads that
    /// time out just loop.
    pub read_timeout: Duration,
    /// How long a reply may sit blocked on a full write queue or a
    /// stalled socket before the client is declared slow and
    /// disconnected.
    pub write_timeout: Duration,
    /// Maximum request-line length in bytes; longer lines are answered
    /// `err oversized` and discarded without buffering.
    pub max_line_len: usize,
    /// Bounded per-connection reply queue depth (requests whose replies
    /// the client has not drained yet).
    pub write_queue_depth: usize,
    /// How long [`NetServer::shutdown`] waits for live connections to
    /// finish before force-closing them.
    pub drain_deadline: Duration,
    /// Wall-clock budget applied to `mine` requests without an explicit
    /// `wall=` flag (`None` = unbounded).
    pub default_wall_ms: Option<u64>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_secs(2),
            max_line_len: 64 * 1024,
            write_queue_depth: 64,
            drain_deadline: Duration::from_secs(2),
            default_wall_ms: None,
        }
    }
}

/// What a graceful shutdown observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Connections that finished on their own during the drain window.
    pub drained: u64,
    /// Connections force-closed at the drain deadline.
    pub aborted: u64,
}

/// The transport's metric handles, registered in the served
/// [`MqService`]'s registry (one registry per service instance — never
/// process-global) and pre-created at bind so connection threads never
/// take the registry lock.
struct NetCounters {
    accepted: Counter,
    active: Gauge,
    rejected_busy: Counter,
    requests: Counter,
    err_replies: Counter,
    panics_caught: Counter,
    oversized: Counter,
    injected_read_errors: Counter,
    disconnects_slow: Counter,
    disconnects_io: Counter,
    request_ns: Histogram,
    read_delay: CountedSite,
    read_err: CountedSite,
    write_delay: CountedSite,
    write_err: CountedSite,
}

impl NetCounters {
    fn new(reg: &Registry) -> NetCounters {
        NetCounters {
            accepted: reg.counter(
                "mq_net_accepted_total",
                "Connections accepted (including later-disconnected ones).",
            ),
            active: reg.gauge("mq_net_active_connections", "Currently live connections."),
            rejected_busy: reg.counter(
                "mq_net_rejected_busy_total",
                "Connections refused with err busy at the admission cap.",
            ),
            requests: reg.counter("mq_net_requests_total", "Request lines processed."),
            err_replies: reg.counter(
                "mq_net_err_replies_total",
                "Requests answered with an err reply.",
            ),
            panics_caught: reg.counter(
                "mq_net_panics_caught_total",
                "Request handlers that panicked and were caught at the net boundary.",
            ),
            oversized: reg.counter(
                "mq_net_oversized_total",
                "Request lines discarded as oversized.",
            ),
            injected_read_errors: reg.counter(
                "mq_net_injected_read_errors_total",
                "Requests answered err io because the read.err fault fired.",
            ),
            disconnects_slow: reg.counter(
                "mq_net_disconnects_slow_total",
                "Clients disconnected for not draining replies in time.",
            ),
            disconnects_io: reg.counter(
                "mq_net_disconnects_io_total",
                "Connections dropped on socket errors (incl. injected write faults).",
            ),
            request_ns: reg.histogram(
                "mq_net_request_ns",
                "Request handling time at the transport (read fault to reply bytes).",
            ),
            read_delay: CountedSite::new(reg, "read.delay"),
            read_err: CountedSite::new(reg, "read.err"),
            write_delay: CountedSite::new(reg, "write.delay"),
            write_err: CountedSite::new(reg, "write.err"),
        }
    }
}

/// A point-in-time copy of the server counters, for harnesses and the
/// load generator's recovery accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetMetricsSnapshot {
    /// Connections accepted (including later-disconnected ones).
    pub accepted: u64,
    /// Connections refused with `err busy`.
    pub rejected_busy: u64,
    /// Request lines processed.
    pub requests: u64,
    /// Requests answered with an `err …` reply.
    pub err_replies: u64,
    /// Request handlers that panicked and were caught at the net
    /// boundary (over and above the service's search-boundary catches).
    pub panics_caught: u64,
    /// Request lines discarded as oversized.
    pub oversized: u64,
    /// Requests answered `err io` because the `read.err` fault fired.
    pub injected_read_errors: u64,
    /// Clients disconnected for not draining their replies in time.
    pub disconnects_slow: u64,
    /// Connections dropped on socket errors (including injected
    /// `write.err` faults).
    pub disconnects_io: u64,
}

/// State shared by the accept loop, every connection thread, and the
/// [`NetServer`] handle.
struct Shared {
    service: Arc<MqService>,
    cfg: NetConfig,
    shutting: AtomicBool,
    /// Live connections: id → a clone of the stream, kept so the drain
    /// can force-close stragglers.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    metrics: NetCounters,
    /// Filled by the accept thread once the drain completes.
    report: Mutex<Option<DrainReport>>,
}

impl Shared {
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
        lock_recover(&self.conns)
    }
}

/// A running TCP server. Bind with [`NetServer::bind`]; stop with
/// [`NetServer::shutdown`] (also run on drop). The accept loop and all
/// connection handling run on background threads — the handle is just
/// control.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    /// The flight-recorder scrape thread — alive for exactly the
    /// server's serving window (`None` when `MQ_SCRAPE_MS=0`).
    scraper: Option<Scraper>,
}

impl NetServer {
    /// Bind `cfg.addr` and start serving `service`.
    pub fn bind(service: Arc<MqService>, cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking accept + short sleeps so the loop notices the
        // shutdown flag promptly (no self-connect tricks needed).
        listener.set_nonblocking(true)?;
        // The net families live in the served service's registry, so one
        // `metrics` dump covers the whole stack.
        let metrics = NetCounters::new(service.registry());
        // Serving is what gives the flight recorder a time axis: start
        // the background scraper with the server, stop it on drain.
        // Gated on MQ_SCRAPE_MS — off means no thread and no cost.
        let scraper = service
            .recorder()
            .start_scraper(Arc::clone(service.registry()));
        let shared = Arc::new(Shared {
            service,
            cfg,
            shutting: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            metrics,
            report: Mutex::new(None),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(NetServer {
            shared,
            addr,
            accept: Some(accept),
            scraper,
        })
    }

    /// The bound address (useful with `addr: 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters (reads the registry handles).
    pub fn metrics(&self) -> NetMetricsSnapshot {
        let m = &self.shared.metrics;
        NetMetricsSnapshot {
            accepted: m.accepted.get(),
            rejected_busy: m.rejected_busy.get(),
            requests: m.requests.get(),
            err_replies: m.err_replies.get(),
            panics_caught: m.panics_caught.get(),
            oversized: m.oversized.get(),
            injected_read_errors: m.injected_read_errors.get(),
            disconnects_slow: m.disconnects_slow.get(),
            disconnects_io: m.disconnects_io.get(),
        }
    }

    /// Whether a shutdown (command or programmatic) has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, drain live connections until
    /// the configured deadline, force-close the rest. Idempotent;
    /// returns the drain report (zeroes if already shut down).
    pub fn shutdown(&mut self) -> DrainReport {
        self.shared.shutting.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Stop the scrape cadence with the serving window (joins the
        // thread, so no tick outlives the server).
        if let Some(mut scraper) = self.scraper.take() {
            scraper.stop();
        }
        lock_recover(&self.shared.report).unwrap_or_default()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.shutting.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let cap = shared.cfg.max_connections;
                if cap != 0 && shared.lock_conns().len() >= cap {
                    shared.metrics.rejected_busy.inc();
                    reject_busy(stream);
                    continue;
                }
                shared.metrics.accepted.inc();
                shared.metrics.active.inc();
                let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.lock_conns().insert(id, clone);
                }
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    handle_conn(&shared, id, stream);
                    shared.lock_conns().remove(&id);
                    shared.metrics.active.dec();
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            // Transient accept errors (per-connection resets etc.):
            // keep serving.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let report = drain(shared);
    *lock_recover(&shared.report) = Some(report);
}

/// Answer an over-capacity connect with a structured error, best-effort.
fn reject_busy(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = stream.write_all(b"err busy connection limit reached, retry later\n");
    let _ = stream.shutdown(Shutdown::Both);
}

/// Wait for live connections to finish, force-close stragglers.
fn drain(shared: &Shared) -> DrainReport {
    let at_start = shared.lock_conns().len() as u64;
    let deadline = Instant::now() + shared.cfg.drain_deadline;
    loop {
        if shared.lock_conns().is_empty() {
            break;
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let stragglers: Vec<TcpStream> = {
        let mut conns = shared.lock_conns();
        let ids: Vec<u64> = conns.keys().copied().collect();
        ids.into_iter().filter_map(|id| conns.remove(&id)).collect()
    };
    let aborted = stragglers.len() as u64;
    for s in &stragglers {
        let _ = s.shutdown(Shutdown::Both);
    }
    DrainReport {
        drained: at_start.saturating_sub(aborted),
        aborted,
    }
}

/// What the reader asks the writer thread to do.
enum WriteJob {
    /// One reply block: the trace request id it answers (0 =
    /// unattributed, e.g. oversized-line errors) and already
    /// newline-terminated bytes.
    Block(u64, Vec<u8>),
}

/// Why a connection ended (metrics accounting).
enum ConnEnd {
    /// EOF, `quit`, or shutdown drain — the normal paths.
    Clean,
    /// The client stopped draining replies.
    Slow,
    /// A socket error (including injected write faults).
    Io,
}

fn handle_conn(shared: &Arc<Shared>, _id: u64, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = sync_channel::<WriteJob>(shared.cfg.write_queue_depth.max(1));
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || writer_loop(&shared, write_half, rx))
    };
    let end = reader_loop(shared, stream, &tx);
    // Closing the channel lets the writer flush queued replies and exit.
    drop(tx);
    let _ = writer.join();
    match end {
        ConnEnd::Clean => {}
        ConnEnd::Slow => shared.metrics.disconnects_slow.inc(),
        ConnEnd::Io => shared.metrics.disconnects_io.inc(),
    }
}

/// Drain the bounded reply queue onto the socket. Exits when the reader
/// hangs up (channel closed) or the socket fails — including the
/// injected `write.err` fault, which models a broken reply path.
fn writer_loop(shared: &Shared, mut stream: TcpStream, rx: Receiver<WriteJob>) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    while let Ok(WriteJob::Block(req, bytes)) = rx.recv() {
        // The writer runs on its own thread: re-enter the request's
        // trace scope so the write span lands on the right request.
        let _scope = (req != 0).then(|| trace::request_scope(req));
        let _span = trace::SpanGuard::start_always(trace::REQ_WRITE);
        shared.metrics.write_delay.maybe_delay();
        let injected = shared.metrics.write_err.maybe_io();
        if injected.is_err() || stream.write_all(&bytes).is_err() {
            // Reply path is broken: drop the connection. The reader
            // notices on its next enqueue (channel disconnected).
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Enqueue one reply block under backpressure: retry a full queue until
/// `write_timeout`, then declare the client slow.
fn enqueue(
    shared: &Shared,
    tx: &SyncSender<WriteJob>,
    req: u64,
    bytes: Vec<u8>,
) -> Result<(), ConnEnd> {
    let mut job = WriteJob::Block(req, bytes);
    let deadline = Instant::now() + shared.cfg.write_timeout;
    loop {
        match tx.try_send(job) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Full(j)) => {
                if Instant::now() >= deadline {
                    return Err(ConnEnd::Slow);
                }
                job = j;
                std::thread::sleep(Duration::from_millis(2));
            }
            // Writer died on a socket error.
            Err(TrySendError::Disconnected(_)) => return Err(ConnEnd::Io),
        }
    }
}

fn reader_loop(shared: &Arc<Shared>, mut stream: TcpStream, tx: &SyncSender<WriteJob>) -> ConnEnd {
    let opts = ProtoOptions {
        default_wall_ms: shared.cfg.default_wall_ms,
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // True while discarding the remainder of an oversized line.
    let mut discarding = false;
    // When the wait for the current request line began (the `req.read`
    // span: socket wait plus client think time).
    let mut read_start = trace::now_ns();
    loop {
        // Process every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            if discarding {
                // The tail of an already-answered oversized line.
                discarding = false;
                read_start = trace::now_ns();
                continue;
            }
            let line = String::from_utf8_lossy(&line_bytes[..line_bytes.len() - 1]).into_owned();
            // One trace request per line: the read span is backdated to
            // when we started waiting for it, then the whole dispatch
            // runs inside the request's scope so service/engine spans
            // attribute to it.
            let req = mq_obs::next_request_id();
            trace::record_span(
                trace::REQ_READ,
                req,
                read_start,
                trace::now_ns().saturating_sub(read_start),
            );
            let served = {
                let _scope = trace::request_scope(req);
                serve_line(shared, &opts, &line)
            };
            read_start = trace::now_ns();
            match served {
                Served::Reply(bytes) => {
                    if let Err(end) = enqueue(shared, tx, req, bytes) {
                        return end;
                    }
                }
                Served::Quit => return ConnEnd::Clean,
                Served::Shutdown(bytes) => {
                    let _ = enqueue(shared, tx, req, bytes);
                    // Begin the server-wide drain; the accept loop does
                    // the rest. This connection closes now.
                    shared.shutting.store(true, Ordering::SeqCst);
                    return ConnEnd::Clean;
                }
            }
        }
        // Oversized line: answer once, then discard until the newline.
        if !discarding && buf.len() > shared.cfg.max_line_len {
            shared.metrics.oversized.inc();
            shared.metrics.err_replies.inc();
            let reply = format!(
                "err oversized request line exceeds {} bytes\n",
                shared.cfg.max_line_len
            );
            if let Err(end) = enqueue(shared, tx, 0, reply.into_bytes()) {
                return end;
            }
            buf.clear();
            discarding = true;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ConnEnd::Clean, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle poll tick: close idle connections once draining.
                if shared.shutting.load(Ordering::SeqCst) && buf.is_empty() {
                    return ConnEnd::Clean;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ConnEnd::Io,
        }
    }
}

/// One request line's outcome at the transport layer.
enum Served {
    /// Send these bytes, keep the connection.
    Reply(Vec<u8>),
    /// Close the connection (client `quit` / EOF path).
    Quit,
    /// Send these bytes, then start a server-wide graceful shutdown.
    Shutdown(Vec<u8>),
}

fn serve_line(shared: &Shared, opts: &ProtoOptions, line: &str) -> Served {
    let _span = trace::SpanGuard::start_always(trace::REQ_SERVE);
    let t0 = trace::now_ns();
    let served = serve_line_inner(shared, opts, line);
    shared
        .metrics
        .request_ns
        .observe_ns(trace::now_ns().saturating_sub(t0));
    served
}

fn serve_line_inner(shared: &Shared, opts: &ProtoOptions, line: &str) -> Served {
    shared.metrics.requests.inc();
    // Injected read-boundary faults: a delay, or an I/O error that
    // consumes this request (answered with a structured error so the
    // client's framing survives).
    shared.metrics.read_delay.maybe_delay();
    if shared.metrics.read_err.maybe_io().is_err() {
        shared.metrics.injected_read_errors.inc();
        shared.metrics.err_replies.inc();
        return Served::Reply(b"err io injected fault at read.err\n".to_vec());
    }
    if shared.shutting.load(Ordering::SeqCst) {
        shared.metrics.err_replies.inc();
        return Served::Reply(b"err shutting-down server is draining\n".to_vec());
    }
    // Transport-level panic isolation: on top of the service's
    // search-boundary catch, so even a bug in protocol parsing or
    // rendering kills one reply, not the connection (let alone the
    // server).
    let reply = catch_unwind(AssertUnwindSafe(|| {
        handle_line_opts(&shared.service, line, opts)
    }))
    .unwrap_or_else(|payload| {
        shared.metrics.panics_caught.inc();
        Reply::err(
            "panic",
            format_args!(
                "request handler panicked: {}",
                crate::catalog::panic_message(&*payload)
            ),
        )
    });
    match reply {
        Reply::Quit => Served::Quit,
        Reply::Shutdown => Served::Shutdown(b"ok shutdown draining\n".to_vec()),
        Reply::Lines(lines) => {
            if lines.first().is_some_and(|l| l.starts_with("err ")) {
                shared.metrics.err_replies.inc();
            }
            let mut bytes = Vec::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
            for l in &lines {
                bytes.extend_from_slice(l.as_bytes());
                bytes.push(b'\n');
            }
            if bytes.is_empty() {
                // Blank/comment lines still get a framing line so simple
                // request/reply clients never block.
                bytes.extend_from_slice(b"ok\n");
            }
            Served::Reply(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::register_db;
    use mq_relation::{ints, Database};
    use std::io::{BufRead, BufReader, Write};

    fn server() -> (NetServer, SocketAddr) {
        let svc = Arc::new(MqService::new());
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        for i in 0..5i64 {
            db.insert(p, ints(&[i, i + 1]));
            db.insert(q, ints(&[i + 1, i + 2]));
        }
        assert!(matches!(register_db(&svc, "tele", db), Reply::Lines(_)));
        let srv = NetServer::bind(
            svc,
            NetConfig {
                max_line_len: 512,
                drain_deadline: Duration::from_millis(500),
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = srv.local_addr();
        (srv, addr)
    }

    fn send(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        conn.write_all(line.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(conn.try_clone().unwrap());
        (conn, reader)
    }

    #[test]
    fn serves_protocol_over_tcp() {
        let (mut srv, addr) = server();
        let (mut conn, mut reader) = connect(addr);
        assert_eq!(send(&mut conn, &mut reader, "ping"), "ok pong");
        let first = send(
            &mut conn,
            &mut reader,
            "mine tele limit=1 :: R(X,Z) <- P(X,Y), Q(Y,Z)",
        );
        assert!(first.starts_with("ok mine "), "got: {first}");
        let mut rule = String::new();
        reader.read_line(&mut rule).unwrap();
        assert!(rule.starts_with("rule "), "got: {rule}");
        // Malformed lines answer structured errors, connection survives.
        assert!(send(&mut conn, &mut reader, "bogus").starts_with("err usage "));
        assert_eq!(send(&mut conn, &mut reader, "ping"), "ok pong");
        let report = srv.shutdown();
        assert_eq!(report.aborted + report.drained, 1);
    }

    #[test]
    fn oversized_lines_are_bounded_and_answered() {
        let (mut srv, addr) = server();
        let (mut conn, mut reader) = connect(addr);
        let huge = format!("mine tele :: {}", "X".repeat(4096));
        let reply = send(&mut conn, &mut reader, &huge);
        assert!(reply.starts_with("err oversized "), "got: {reply}");
        // Framing survives: the next request is answered normally.
        assert_eq!(send(&mut conn, &mut reader, "ping"), "ok pong");
        assert_eq!(srv.metrics().oversized, 1);
        drop(conn);
        srv.shutdown();
    }

    #[test]
    fn shutdown_command_drains_and_stops_accepting() {
        let (mut srv, addr) = server();
        let (mut conn, mut reader) = connect(addr);
        assert_eq!(
            send(&mut conn, &mut reader, "shutdown"),
            "ok shutdown draining"
        );
        // The server refuses new connections once the drain completes.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            std::thread::sleep(Duration::from_millis(20));
            let refused = match TcpStream::connect(addr) {
                Err(_) => true,
                // A connect may still land in the OS backlog; it must
                // at least never be served.
                Ok(s) => {
                    let mut r = BufReader::new(s.try_clone().unwrap());
                    s.try_clone()
                        .unwrap()
                        .set_read_timeout(Some(Duration::from_millis(200)))
                        .unwrap();
                    let mut line = String::new();
                    r.get_ref()
                        .set_read_timeout(Some(Duration::from_millis(200)))
                        .unwrap();
                    !matches!(r.read_line(&mut line), Ok(n) if n > 0 && line.starts_with("ok"))
                }
            };
            if refused || Instant::now() >= deadline {
                assert!(refused, "server still serving after shutdown");
                break;
            }
        }
        let report = srv.shutdown();
        assert!(report.drained + report.aborted <= 1);
    }

    #[test]
    fn busy_rejection_is_structured() {
        let svc = Arc::new(MqService::new());
        let mut srv = NetServer::bind(
            svc,
            NetConfig {
                max_connections: 1,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = srv.local_addr();
        let (mut c1, mut r1) = connect(addr);
        assert_eq!(send(&mut c1, &mut r1, "ping"), "ok pong");
        // Second connection is over the cap: answered err busy + closed.
        let (_c2, mut r2) = connect(addr);
        let mut line = String::new();
        r2.read_line(&mut line).unwrap();
        assert!(line.starts_with("err busy "), "got: {line}");
        assert_eq!(srv.metrics().rejected_busy, 1);
        srv.shutdown();
    }
}
