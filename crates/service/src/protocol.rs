//! A line-oriented text protocol over the service (the `mq serve` mode).
//!
//! One request per line, one-or-more response lines per request; every
//! response block starts with `ok …` or `err …` so clients can frame
//! replies without counting lines ahead of time. Commands:
//!
//! ```text
//! ping
//! open <name> <path>                       load a textio database file
//! mine <name> [type=0|1|2] [sup=K] [cvr=K] [cnf=K] [limit=N] :: <metaquery>
//! append <name> <relation> <v,v,..> [<v,v,..> ...]
//! replace <name> <relation> [<v,v,..> ...]
//! dump <name> <relation> [limit]           rows from the frozen arena
//! stats <name>
//! metrics                                  Prometheus-text registry dump
//! health                                   SLO verdict, rules, incidents
//! top [window]                             hottest counter series (default 10s)
//! history <series> [window]                raw scrape samples (default 1m)
//! trace [<req-id>|last]                    span tree of one request
//! slowlog                                  slow-query log (MQ_SLOW_MS)
//! quit
//! ```
//!
//! Values in `append`/`replace` rows are integers or bare symbols
//! (interned into the database's symbol table during the copy-on-write
//! update). `mine` thresholds accept `1/2`, `0.5` or `0`, exactly like
//! the `mq mine` CLI; answers render as instantiated rules with their
//! indices, one per line, prefixed `rule `.
//!
//! ## Error replies
//!
//! Every failure is a **structured** one-line reply
//! `err <code> <message>`: a stable machine-readable code first, a
//! human-readable message after. Codes: `usage` (malformed command or
//! flags), `parse` (metaquery text), `io` (file or socket I/O,
//! including injected faults), `unknown-db`, `duplicate-db`,
//! `unknown-relation`, `arity`, `update-panic` (a panicking update
//! closure, isolated per entry), `deadline` (the search overran its
//! wall budget), `panic` (the search panicked and was caught),
//! `retries` (dedup followers exhausted their retry budget), `engine`
//! (any other engine rejection), `internal` (a broken internal
//! invariant, e.g. an update snapshot disagreeing with itself),
//! `oversized` (request line over the transport limit), `busy`
//! (connection admission refused), and `shutting-down` (server
//! draining). A malformed line never tears down the connection — the
//! handler answers `err …` and keeps reading. The machine-readable
//! contract (checked by `mq-lint`'s `err-code-stability` rule) lives in
//! ARCHITECTURE.md's failure-handling section.

use crate::session::{MetaqueryRequest, MqService, ServiceError};
use mq_core::instantiate::{apply_instantiation, InstError, InstType};
use mq_relation::{parse_database, Database, Frac, Tuple, Value};

/// The reply to one protocol line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Response lines to send back (first line is `ok …` or `err …`).
    Lines(Vec<String>),
    /// The client asked to close the connection.
    Quit,
    /// The client asked the server to shut down gracefully (stop
    /// accepting, drain in-flight connections). The stdin/stdout server
    /// treats it like [`Reply::Quit`]; the TCP server starts a drain.
    Shutdown,
}

impl Reply {
    fn ok(line: impl Into<String>) -> Reply {
        Reply::Lines(vec![format!("ok {}", line.into())])
    }

    /// A structured error reply: `err <code> <message>`.
    pub(crate) fn err(code: &str, msg: impl std::fmt::Display) -> Reply {
        Reply::Lines(vec![format!("err {code} {msg}")])
    }

    /// An error reply for a service failure, coded by failure class.
    fn service_err(e: ServiceError) -> Reply {
        Reply::err(error_code(&e), e)
    }

    /// The reply's text lines (empty for [`Reply::Quit`] /
    /// [`Reply::Shutdown`]).
    pub fn lines(&self) -> &[String] {
        match self {
            Reply::Lines(lines) => lines,
            Reply::Quit | Reply::Shutdown => &[],
        }
    }
}

/// The stable machine-readable code for a service failure (the first
/// word after `err` in protocol replies).
pub fn error_code(e: &ServiceError) -> &'static str {
    use crate::catalog::CatalogError;
    match e {
        ServiceError::Catalog(CatalogError::UnknownDb(_)) => "unknown-db",
        ServiceError::Catalog(CatalogError::DuplicateDb(_)) => "duplicate-db",
        ServiceError::Catalog(CatalogError::UnknownRelation { .. }) => "unknown-relation",
        ServiceError::Catalog(CatalogError::ArityMismatch { .. }) => "arity",
        ServiceError::Catalog(CatalogError::UpdatePanicked { .. }) => "update-panic",
        ServiceError::Parse(_) => "parse",
        ServiceError::Engine(InstError::DeadlineExceeded { .. }) => "deadline",
        ServiceError::Engine(_) => "engine",
        ServiceError::SearchPanicked(_) => "panic",
        ServiceError::RetriesExhausted { .. } => "retries",
    }
}

/// Per-connection protocol options (the transport layer's knobs).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtoOptions {
    /// Wall-clock budget applied to `mine` requests that carry no
    /// explicit `wall=` flag (`None` = unbounded).
    pub default_wall_ms: Option<u64>,
}

/// Handle one protocol line against `service` (default options).
pub fn handle_line(service: &MqService, line: &str) -> Reply {
    handle_line_opts(service, line, &ProtoOptions::default())
}

/// Handle one protocol line against `service` under explicit options.
pub fn handle_line_opts(service: &MqService, line: &str, opts: &ProtoOptions) -> Reply {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Reply::Lines(Vec::new());
    }
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((cmd, rest)) => (cmd, rest.trim()),
        None => (line, ""),
    };
    match cmd {
        "ping" => Reply::ok("pong"),
        "quit" | "exit" => Reply::Quit,
        "shutdown" => Reply::Shutdown,
        "open" => cmd_open(service, rest),
        "mine" => cmd_mine(service, rest, opts),
        "append" => cmd_update(service, rest, UpdateKind::Append),
        "replace" => cmd_update(service, rest, UpdateKind::Replace),
        "dump" => cmd_dump(service, rest),
        "stats" => cmd_stats(service, rest),
        "metrics" => cmd_metrics(service),
        "health" => cmd_health(service),
        "top" => cmd_top(service, rest),
        "history" => cmd_history(service, rest),
        "trace" => cmd_trace(rest),
        "slowlog" => cmd_slowlog(service),
        other => Reply::err(
            "usage",
            format_args!(
                "unknown command `{other}` \
                 (ping|open|mine|append|replace|dump|stats|metrics|health|top|history|trace\
                 |slowlog|shutdown|quit)"
            ),
        ),
    }
}

fn cmd_open(service: &MqService, rest: &str) -> Reply {
    let Some((name, path)) = rest.split_once(char::is_whitespace) else {
        return Reply::err("usage", "usage: open <name> <path>");
    };
    let text = match std::fs::read_to_string(path.trim()) {
        Ok(t) => t,
        Err(e) => return Reply::err("io", format_args!("cannot read `{}`: {e}", path.trim())),
    };
    let db = match parse_database(&text) {
        Ok(db) => db,
        Err(e) => return Reply::err("parse", format_args!("cannot parse `{}`: {e}", path.trim())),
    };
    register_db(service, name, db)
}

/// Register a database under `name` (shared by `open` and in-process
/// embedders that already hold a [`Database`]).
pub fn register_db(service: &MqService, name: &str, db: Database) -> Reply {
    let relations = db.num_relations();
    let tuples = db.total_tuples();
    match service.register(name, db) {
        Ok(h) => Reply::ok(format!(
            "open {name} version={} relations={relations} tuples={tuples}",
            h.version()
        )),
        Err(e) => Reply::service_err(e),
    }
}

fn cmd_mine(service: &MqService, rest: &str, opts: &ProtoOptions) -> Reply {
    let Some((head, mq_text)) = rest.split_once("::") else {
        return Reply::err(
            "usage",
            "usage: mine <name> [type=T] [sup=K] [cvr=K] [cnf=K] [limit=N] [wall=MS] \
             :: <metaquery>",
        );
    };
    let mut words = head.split_whitespace();
    let Some(name) = words.next() else {
        return Reply::err("usage", "mine: missing database name");
    };
    let mut req = MetaqueryRequest::new(name, mq_text.trim());
    req.max_wall_ms = opts.default_wall_ms;
    for word in words {
        let Some((key, value)) = word.split_once('=') else {
            return Reply::err(
                "usage",
                format_args!("mine: malformed flag `{word}` (want key=value)"),
            );
        };
        match key {
            "type" => {
                req.ty = match value {
                    "0" => InstType::Zero,
                    "1" => InstType::One,
                    "2" => InstType::Two,
                    other => {
                        return Reply::err("usage", format_args!("mine: invalid type `{other}`"))
                    }
                }
            }
            "sup" | "cvr" | "cnf" => {
                let k = match value.parse::<Frac>() {
                    Ok(k) if k.is_probability() => k,
                    _ => {
                        return Reply::err(
                            "usage",
                            format_args!("mine: threshold `{value}` must be a fraction in [0, 1]"),
                        )
                    }
                };
                match key {
                    "sup" => req.thresholds.sup = Some(k),
                    "cvr" => req.thresholds.cvr = Some(k),
                    _ => req.thresholds.cnf = Some(k),
                }
            }
            "limit" => match value.parse::<usize>() {
                Ok(n) => req.max_answers = Some(n),
                Err(_) => {
                    return Reply::err("usage", format_args!("mine: invalid limit `{value}`"))
                }
            },
            "wall" => match value.parse::<u64>() {
                Ok(ms) => req.max_wall_ms = Some(ms),
                Err(_) => {
                    return Reply::err(
                        "usage",
                        format_args!("mine: invalid wall budget `{value}` (milliseconds)"),
                    )
                }
            },
            other => return Reply::err("usage", format_args!("mine: unknown flag `{other}`")),
        }
    }
    // Pin one snapshot for both the search and the rendering, so a
    // concurrent update can't make the rendered rules disagree with the
    // answered version.
    let handle = match service.catalog().snapshot(name) {
        Ok(h) => h,
        Err(e) => return Reply::service_err(ServiceError::from(e)),
    };
    let out = match service.query_at(&handle, &req) {
        Ok(out) => out,
        Err(e) => return Reply::service_err(e),
    };
    let mq = match mq_core::parse::parse_metaquery(&req.metaquery) {
        Ok(mq) => mq,
        Err(e) => return Reply::err("parse", format_args!("invalid metaquery: {e}")),
    };
    let db = handle.database();
    // `req=` hands the client the trace id to feed `trace <req-id>`.
    let mut lines = vec![format!(
        "ok mine {} answer(s) version={}{} req={}",
        out.answers.len(),
        out.db_version,
        if out.shared { " deduped" } else { "" },
        out.req_id
    )];
    for a in out.answers.iter() {
        match apply_instantiation(db, &mq, &a.inst) {
            Ok(rule) => lines.push(format!(
                "rule {} sup={} cvr={} cnf={}",
                rule.render(db),
                a.indices.sup,
                a.indices.cvr,
                a.indices.cnf
            )),
            Err(e) => lines.push(format!("rule <unrenderable: {e}>")),
        }
    }
    Reply::Lines(lines)
}

enum UpdateKind {
    Append,
    Replace,
}

fn cmd_update(service: &MqService, rest: &str, kind: UpdateKind) -> Reply {
    let mut words = rest.split_whitespace();
    let (Some(name), Some(rel)) = (words.next(), words.next()) else {
        return Reply::err(
            "usage",
            "usage: append|replace <name> <relation> [<v,v,..> ...]",
        );
    };
    let raw_rows: Vec<&str> = words.collect();
    if matches!(kind, UpdateKind::Append) && raw_rows.is_empty() {
        return Reply::err("usage", "append: no rows given");
    }
    // Interning bare-word symbols needs the (cloned) database of the
    // update itself, so row parsing happens inside the copy-on-write
    // closure. Routed through the service (not the bare catalog) so the
    // update lands in the catalog.update span and mq_catalog_* metrics.
    let result = service.update_with(name, |db| {
        let rel_id =
            db.rel_id(rel)
                .ok_or_else(|| crate::catalog::CatalogError::UnknownRelation {
                    db: name.to_string(),
                    relation: rel.to_string(),
                })?;
        let arity = db.relation(rel_id).arity();
        let mut rows: Vec<Tuple> = Vec::with_capacity(raw_rows.len());
        for raw in &raw_rows {
            let values: Vec<Value> = raw
                .split(',')
                .map(|tok| {
                    let tok = tok.trim();
                    match tok.parse::<i64>() {
                        Ok(n) => Value::Int(n),
                        Err(_) => db.sym(tok),
                    }
                })
                .collect();
            if values.len() != arity {
                return Err(crate::catalog::CatalogError::ArityMismatch {
                    relation: rel.to_string(),
                    expected: arity,
                    got: values.len(),
                });
            }
            rows.push(values.into_boxed_slice());
        }
        match kind {
            UpdateKind::Append => {
                for row in rows {
                    db.insert(rel_id, row);
                }
            }
            UpdateKind::Replace => db.relation_mut(rel_id).replace_rows(rows),
        }
        Ok(rel_id)
    });
    match result {
        Ok(h) => {
            // The closure above resolved `rel` in the updated clone, so
            // it must exist in the published snapshot — but answer a
            // structured error rather than tearing down the connection
            // if that invariant ever breaks.
            let Some(rel_id) = h.database().rel_id(rel) else {
                return Reply::err(
                    "internal",
                    format_args!("updated relation `{rel}` missing from published snapshot"),
                );
            };
            Reply::ok(format!(
                "update {name} version={} {rel} rows={} generation={}",
                h.version(),
                h.database().relation(rel_id).len(),
                h.generation(rel_id)
            ))
        }
        Err(e) => Reply::service_err(e),
    }
}

/// Serve a relation's rows straight from the snapshot's frozen arena
/// (never touching the live `Relation`): the arena is the read surface
/// row-dump traffic is meant to hit, one contiguous scan per reply.
fn cmd_dump(service: &MqService, rest: &str) -> Reply {
    let mut words = rest.split_whitespace();
    let (Some(name), Some(rel)) = (words.next(), words.next()) else {
        return Reply::err("usage", "usage: dump <name> <relation> [limit]");
    };
    let limit = match words.next() {
        None => usize::MAX,
        Some(tok) => match tok.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Reply::err("usage", format_args!("dump: invalid limit `{tok}`")),
        },
    };
    let handle = match service.catalog().snapshot(name) {
        Ok(h) => h,
        Err(e) => return Reply::service_err(ServiceError::from(e)),
    };
    let db = handle.database();
    let Some(rel_id) = db.rel_id(rel) else {
        return Reply::err(
            "unknown-relation",
            format_args!("database `{name}` has no relation `{rel}`"),
        );
    };
    let arena = handle.frozen_rows(rel_id);
    let mut lines = vec![format!(
        "ok dump {name} {rel} rows={} generation={} version={}",
        arena.len(),
        handle.generation(rel_id),
        handle.version()
    )];
    let symbols = db.symbols();
    for row in arena.rows().take(limit) {
        let cells: Vec<String> = row.iter().map(|v| v.display(symbols).to_string()).collect();
        lines.push(format!("row {}", cells.join(",")));
    }
    Reply::Lines(lines)
}

fn cmd_stats(service: &MqService, rest: &str) -> Reply {
    let name = rest.trim();
    if name.is_empty() {
        return Reply::err("usage", "usage: stats <name>");
    }
    let handle = match service.catalog().snapshot(name) {
        Ok(h) => h,
        Err(e) => return Reply::service_err(ServiceError::from(e)),
    };
    let db = handle.database();
    let atom = handle.atom_cache().stats();
    let mut lines = vec![format!(
        "ok stats {name} version={} relations={} tuples={} atom_cache_hits={} atom_cache_misses={}",
        handle.version(),
        db.num_relations(),
        handle.total_tuples(),
        atom.hits,
        atom.misses
    )];
    for id in db.rel_ids() {
        let rel = db.relation(id);
        lines.push(format!(
            "relation {}/{} rows={} generation={}",
            rel.name(),
            rel.arity(),
            handle.frozen_rows(id).len(),
            handle.generation(id)
        ));
    }
    Reply::Lines(lines)
}

/// Dump the service's whole metric registry (session, dedup, memo,
/// scheduler, executor, catalog, net, fault families) in Prometheus
/// text exposition format, framed by a line count so line-oriented
/// clients know how much to read.
fn cmd_metrics(service: &MqService) -> Reply {
    let dump = service.registry().render_prometheus();
    let body: Vec<String> = dump.lines().map(str::to_string).collect();
    let mut lines = Vec::with_capacity(body.len() + 1);
    lines.push(format!("ok metrics lines={}", body.len()));
    lines.extend(body);
    Reply::Lines(lines)
}

/// Serve the flight recorder's latest verdict: one `rule` line per SLO
/// rule (name, verdict, numeric evidence), then the buffered incident
/// log — each `incident` line followed by the hottest plan nodes and
/// slowest live spans captured at detection time. Default-Healthy with
/// `scrapes=0` when the recorder is off (`MQ_SCRAPE_MS=0`).
fn cmd_health(service: &MqService) -> Reply {
    let rec = service.recorder();
    let report = rec.health();
    let mut body = Vec::new();
    for r in &report.rules {
        body.push(format!(
            "rule {} {} {}",
            r.rule,
            r.verdict.as_str(),
            r.evidence
        ));
    }
    for i in &rec.incidents() {
        body.push(format!(
            "incident t_ms={} series={} rate_per_s={:.3} baseline_mean={:.3} baseline_mad={:.3}",
            i.t_ms, i.series, i.rate, i.baseline_mean, i.baseline_mad
        ));
        // Node lines arrive pre-formatted (`node #<id> …`) from the
        // service's slow-query log.
        body.extend(i.nodes.iter().cloned());
        body.extend(i.slow_spans.iter().map(|s| format!("span {s}")));
    }
    let mut lines = Vec::with_capacity(body.len() + 1);
    lines.push(format!(
        "ok health {} t_ms={} scrapes={} lines={}",
        report.verdict.as_str(),
        report.t_ms,
        rec.scrapes(),
        body.len()
    ));
    lines.extend(body);
    Reply::Lines(lines)
}

/// Rank the hottest counter series by windowed per-second rate
/// (default window 10 s), then attach the hottest plan nodes of the
/// latest slow query for drill-down context.
fn cmd_top(service: &MqService, rest: &str) -> Reply {
    let token = match rest.trim() {
        "" => "10s",
        t => t,
    };
    let Some(window_ms) = mq_obs::parse_window(token) else {
        return Reply::err(
            "usage",
            format_args!("top: invalid window `{token}` (want e.g. 10s|1m|5m)"),
        );
    };
    let now_ms = mq_obs::trace::now_ns() / 1_000_000;
    let top = service
        .recorder()
        .history()
        .top_rates(window_ms, now_ms, 10);
    let mut body: Vec<String> = top
        .iter()
        .map(|(name, rate)| format!("series {name} rate_per_s={rate:.3}"))
        .collect();
    if let Some(e) = service.slow_queries().last() {
        for (id, label, n) in &e.nodes {
            body.push(format!(
                "node #{id} {label} wall_ns={} execs={} memo_hits={} rows_in={} rows_out={}",
                n.wall_ns, n.execs, n.memo_hits, n.rows_in, n.rows_out
            ));
        }
    }
    let mut lines = Vec::with_capacity(body.len() + 1);
    lines.push(format!("ok top window={token} lines={}", body.len()));
    lines.extend(body);
    Reply::Lines(lines)
}

/// Serve one series' raw buffered scrape samples within the trailing
/// window (default 1 m), oldest first — timestamps are monotone, at
/// most [`mq_obs::history::RING_SAMPLES`] points.
fn cmd_history(service: &MqService, rest: &str) -> Reply {
    let mut words = rest.split_whitespace();
    let Some(series) = words.next() else {
        return Reply::err("usage", "usage: history <series> [window]");
    };
    let token = words.next().unwrap_or("1m");
    if words.next().is_some() {
        return Reply::err("usage", "usage: history <series> [window]");
    }
    let Some(window_ms) = mq_obs::parse_window(token) else {
        return Reply::err(
            "usage",
            format_args!("history: invalid window `{token}` (want e.g. 10s|1m|5m)"),
        );
    };
    let history = service.recorder().history();
    if history.ring(series).is_none() {
        return Reply::err(
            "usage",
            format_args!("history: unknown series `{series}` (nothing scraped under that name)"),
        );
    }
    let now_ms = mq_obs::trace::now_ns() / 1_000_000;
    let pts = history.points(series, window_ms, now_ms);
    let mut lines = Vec::with_capacity(pts.len() + 1);
    lines.push(format!(
        "ok history {series} window={token} lines={}",
        pts.len()
    ));
    for p in &pts {
        lines.push(format!("point t_ms={} v={}", p.t_ms, p.value.as_scalar()));
    }
    Reply::Lines(lines)
}

/// Render one request's buffered span tree. `trace last` (or bare
/// `trace`) picks the most recent traced request other than the one
/// serving this command.
fn cmd_trace(rest: &str) -> Reply {
    use mq_obs::trace;
    let arg = rest.trim();
    let req = if arg.is_empty() || arg == "last" {
        match trace::latest_request(trace::current_request()) {
            Some(r) => r,
            None => return Reply::Lines(vec!["ok trace req=0 spans=0".to_string()]),
        }
    } else {
        match arg.parse::<u64>() {
            Ok(r) => r,
            Err(_) => {
                return Reply::err(
                    "usage",
                    format_args!("trace: invalid request id `{arg}` (want a number or `last`)"),
                )
            }
        }
    };
    let spans = trace::collect_request(req);
    let mut lines = vec![format!("ok trace req={req} spans={}", spans.len())];
    for s in &spans {
        lines.push(format!(
            "span depth={} name={} start_ns={} dur_ns={}",
            s.depth, s.name, s.start_ns, s.dur_ns
        ));
    }
    Reply::Lines(lines)
}

/// Render the slow-query log: one `slow` line per entry, followed by
/// its hottest plan nodes. Empty unless `MQ_SLOW_MS` armed the log.
fn cmd_slowlog(service: &MqService) -> Reply {
    let entries = service.slow_queries();
    let mut lines = vec![format!("ok slowlog {} entries", entries.len())];
    for e in &entries {
        lines.push(format!(
            "slow req={} db={} wall_ms={} mq={}",
            e.req_id, e.db, e.wall_ms, e.metaquery
        ));
        for (id, label, n) in &e.nodes {
            lines.push(format!(
                "node #{id} {label} wall_ns={} execs={} memo_hits={} rows_in={} rows_out={}",
                n.wall_ns, n.execs, n.memo_hits, n.rows_in, n.rows_out
            ));
        }
    }
    Reply::Lines(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_relation::ints;

    fn service_with_db() -> MqService {
        let svc = MqService::new();
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        for i in 0..5i64 {
            db.insert(p, ints(&[i, i + 1]));
            db.insert(q, ints(&[i + 1, i + 2]));
        }
        svc.register("tele", db).unwrap();
        svc
    }

    fn first_line(reply: &Reply) -> &str {
        &reply.lines()[0]
    }

    #[test]
    fn ping_quit_unknown() {
        let svc = MqService::new();
        assert_eq!(handle_line(&svc, "ping"), Reply::ok("pong"));
        assert_eq!(handle_line(&svc, "quit"), Reply::Quit);
        assert_eq!(handle_line(&svc, ""), Reply::Lines(Vec::new()));
        assert!(first_line(&handle_line(&svc, "bogus x")).starts_with("err "));
    }

    #[test]
    fn mine_renders_rules() {
        let svc = service_with_db();
        // No thresholds: every instantiation qualifies (they are strict
        // lower bounds, so sup=0 would already filter zero-support rules).
        let reply = handle_line(&svc, "mine tele type=0 :: R(X,Z) <- P(X,Y), Q(Y,Z)");
        let lines = reply.lines();
        assert!(lines[0].starts_with("ok mine "), "got: {}", lines[0]);
        assert!(lines[0].contains("version=1"));
        assert!(lines.len() > 1, "some rules expected");
        assert!(lines[1].starts_with("rule "));
        assert!(lines[1].contains("sup="));
        // limit caps the rule lines.
        let limited = handle_line(&svc, "mine tele limit=1 :: R(X,Z) <- P(X,Y), Q(Y,Z)");
        assert_eq!(limited.lines().len(), 2);
    }

    #[test]
    fn mine_flag_errors() {
        let svc = service_with_db();
        assert!(
            first_line(&handle_line(&svc, "mine tele sup=2 :: R(X,Z) <- P(X,Y)"))
                .starts_with("err ")
        );
        assert!(first_line(&handle_line(&svc, "mine tele :: not a metaquery")).starts_with("err "));
        assert!(
            first_line(&handle_line(&svc, "mine nosuch :: R(X,Z) <- P(X,Y)")).starts_with("err ")
        );
        assert!(first_line(&handle_line(&svc, "mine tele")).starts_with("err "));
    }

    #[test]
    fn append_replace_and_stats_roundtrip() {
        let svc = service_with_db();
        let reply = handle_line(&svc, "append tele p 10,11 11,12");
        assert!(
            first_line(&reply).starts_with("ok update tele version=2"),
            "got: {}",
            first_line(&reply)
        );
        assert!(first_line(&reply).contains("rows=7"));
        assert!(first_line(&reply).contains("generation=2"));
        let reply = handle_line(&svc, "replace tele q 0,ann");
        assert!(first_line(&reply).contains("version=3"));
        assert!(first_line(&reply).contains("rows=1"));
        let stats = handle_line(&svc, "stats tele");
        let lines = stats.lines();
        assert!(lines[0].starts_with("ok stats tele version=3"));
        assert!(lines
            .iter()
            .any(|l| l == "relation p/2 rows=7 generation=2"));
        assert!(lines
            .iter()
            .any(|l| l == "relation q/2 rows=1 generation=3"));
        // Arity errors surface as err.
        assert!(first_line(&handle_line(&svc, "append tele p 1,2,3")).starts_with("err "));
        assert!(first_line(&handle_line(&svc, "append tele zz 1,2")).starts_with("err "));
        // A failed update did not bump the version.
        assert!(first_line(&handle_line(&svc, "stats tele")).contains("version=3"));
    }

    #[test]
    fn dump_serves_rows_from_the_arena() {
        let svc = service_with_db();
        let reply = handle_line(&svc, "dump tele p");
        let lines = reply.lines();
        assert!(lines[0].starts_with("ok dump tele p rows=5 generation=1"));
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[1], "row 0,1");
        // Limit caps the row lines; updates show up (and symbols render).
        let _ = handle_line(&svc, "replace tele p 7,ann");
        let reply = handle_line(&svc, "dump tele p 1");
        let lines = reply.lines();
        assert!(lines[0].starts_with("ok dump tele p rows=1 generation=2"));
        assert_eq!(lines[1], "row 7,ann");
        assert!(first_line(&handle_line(&svc, "dump tele zz")).starts_with("err "));
        assert!(first_line(&handle_line(&svc, "dump nosuch p")).starts_with("err "));
        assert!(first_line(&handle_line(&svc, "dump tele p x")).starts_with("err "));
    }

    #[test]
    fn errors_are_structured_code_plus_message() {
        let svc = service_with_db();
        assert!(first_line(&handle_line(&svc, "bogus x")).starts_with("err usage "));
        assert!(
            first_line(&handle_line(&svc, "mine nosuch :: R(X,Z) <- P(X,Y)"))
                .starts_with("err unknown-db ")
        );
        assert!(
            first_line(&handle_line(&svc, "mine tele :: not a metaquery"))
                .starts_with("err parse ")
        );
        assert!(first_line(&handle_line(&svc, "append tele p 1,2,3")).starts_with("err arity "));
        assert!(first_line(&handle_line(&svc, "append tele zz 1,2"))
            .starts_with("err unknown-relation "));
        assert!(first_line(&handle_line(&svc, "dump tele p x")).starts_with("err usage "));
        assert_eq!(handle_line(&svc, "shutdown"), Reply::Shutdown);
    }

    #[test]
    fn mine_wall_flag_and_default_wall_budget() {
        let svc = service_with_db();
        // wall=0: already expired, surfaced as a structured deadline
        // error (the connection stays usable).
        let r = handle_line(&svc, "mine tele wall=0 :: R(X,Z) <- P(X,Y), Q(Y,Z)");
        assert!(
            first_line(&r).starts_with("err deadline "),
            "got: {}",
            first_line(&r)
        );
        // The transport's default budget applies when no flag is given…
        let opts = ProtoOptions {
            default_wall_ms: Some(0),
        };
        let r = handle_line_opts(&svc, "mine tele :: R(X,Z) <- P(X,Y), Q(Y,Z)", &opts);
        assert!(first_line(&r).starts_with("err deadline "));
        // …and an explicit flag overrides it.
        let r = handle_line_opts(
            &svc,
            "mine tele wall=60000 :: R(X,Z) <- P(X,Y), Q(Y,Z)",
            &opts,
        );
        assert!(first_line(&r).starts_with("ok mine "));
        assert!(
            first_line(&handle_line(&svc, "mine tele wall=x :: R(X,Z) <- P(X,Y)"))
                .starts_with("err usage ")
        );
    }

    #[test]
    fn metrics_is_a_parsable_prometheus_dump() {
        let svc = service_with_db();
        let _ = handle_line(&svc, "mine tele :: R(X,Z) <- P(X,Y), Q(Y,Z)");
        let _ = handle_line(&svc, "mine tele :: R(X,Z) <- P(X,Y), Q(Y,Z)");
        let reply = handle_line(&svc, "metrics");
        let lines = reply.lines();
        assert!(
            lines[0].starts_with("ok metrics lines="),
            "got: {}",
            lines[0]
        );
        let body = lines[1..].join("\n");
        let samples = mq_obs::parse_prometheus(&body).expect("valid Prometheus text");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing sample {name}"))
                .value
        };
        assert_eq!(get("mq_session_requests_total"), 2.0);
        assert_eq!(get("mq_session_executed_total"), 2.0);
        assert_eq!(get("mq_session_search_wall_ns_count"), 2.0);
    }

    #[test]
    fn health_top_history_verbs() {
        let svc = service_with_db();
        // Before any scrape: default-Healthy, zero body lines.
        let idle = handle_line(&svc, "health");
        assert!(
            first_line(&idle).starts_with("ok health healthy"),
            "got: {}",
            first_line(&idle)
        );
        assert!(first_line(&idle).contains("scrapes=0"));
        // Two deterministic scrapes at the live trace clock with
        // traffic in between, so windowed rates are measurable.
        let rec = svc.recorder();
        rec.tick(svc.registry());
        let _ = handle_line(&svc, "mine tele :: R(X,Z) <- P(X,Y), Q(Y,Z)");
        std::thread::sleep(std::time::Duration::from_millis(10));
        rec.tick(svc.registry());

        let health = handle_line(&svc, "health");
        let lines = health.lines();
        assert!(
            lines[0].starts_with("ok health healthy"),
            "got: {}",
            lines[0]
        );
        assert!(lines[0].contains("scrapes=2"), "got: {}", lines[0]);
        let framed: usize = lines[0]
            .rsplit("lines=")
            .next()
            .unwrap()
            .parse()
            .expect("lines= count");
        assert_eq!(lines.len() - 1, framed);
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("rule error-rate healthy ")),
            "want a named rule line: {lines:?}"
        );

        let top = handle_line(&svc, "top 1m");
        let tl = top.lines();
        assert!(
            tl[0].starts_with("ok top window=1m lines="),
            "got: {}",
            tl[0]
        );
        assert!(
            tl.iter()
                .any(|l| l.starts_with("series mq_session_requests_total rate_per_s=")),
            "want the session counter ranked: {tl:?}"
        );

        let hist = handle_line(&svc, "history mq_session_requests_total 5m");
        let hl = hist.lines();
        assert!(
            hl[0].starts_with("ok history mq_session_requests_total window=5m lines=2"),
            "got: {}",
            hl[0]
        );
        assert!(hl[1].starts_with("point t_ms="));
        let t = |line: &str| -> u64 {
            line.split_whitespace()
                .find_map(|w| w.strip_prefix("t_ms="))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            t(&hl[1]) <= t(&hl[2]),
            "timestamps must be monotone: {hl:?}"
        );

        // Structured usage errors: bad window, unknown series, extra args.
        assert!(first_line(&handle_line(&svc, "top banana")).starts_with("err usage "));
        assert!(first_line(&handle_line(&svc, "history")).starts_with("err usage "));
        assert!(first_line(&handle_line(&svc, "history nosuch_series")).starts_with("err usage "));
        assert!(first_line(&handle_line(
            &svc,
            "history mq_session_requests_total 1m extra"
        ))
        .starts_with("err usage "));
        assert!(first_line(&handle_line(
            &svc,
            "history mq_session_requests_total banana"
        ))
        .starts_with("err usage "));
    }

    #[test]
    fn trace_command_returns_request_spans() {
        let svc = service_with_db();
        let reply = handle_line(&svc, "mine tele :: R(X,Z) <- P(X,Y), Q(Y,Z)");
        let head = first_line(&reply);
        let req = head
            .split_whitespace()
            .find_map(|w| w.strip_prefix("req="))
            .expect("mine reply carries req=")
            .to_string();
        let traced = handle_line(&svc, &format!("trace {req}"));
        let lines = traced.lines();
        assert!(
            lines[0].starts_with(&format!("ok trace req={req} spans=")),
            "got: {}",
            lines[0]
        );
        assert!(
            lines.iter().any(|l| l.contains("name=search.run")),
            "want a search.run span, got: {lines:?}"
        );
        // Bad ids are structured usage errors; an armed-but-empty log
        // still frames.
        assert!(first_line(&handle_line(&svc, "trace zz")).starts_with("err usage "));
        assert_eq!(
            first_line(&handle_line(&svc, "slowlog")),
            "ok slowlog 0 entries"
        );
    }
}
