//! In-flight request deduplication.
//!
//! When many sessions fire the **same** request (same database snapshot
//! version, metaquery, type, thresholds, budget) at once, running one
//! search per caller wastes the whole cost of the duplicates — the
//! answers are deterministic, so one search serves everyone. A
//! [`RequestTable`] coalesces them: the first caller to
//! [`RequestTable::join`] a key becomes the **owner** (it runs the
//! computation and [`Ticket::publish`]es the result), every concurrent
//! caller becomes a **follower** and blocks until the owner's result is
//! shared with it.
//!
//! Completed results are *not* cached here: the entry is removed at
//! publication, so a request arriving after the result was handed out
//! recomputes (and can hit the memo layers instead). Dedup is strictly
//! about concurrent identical work.
//!
//! Owner crash safety: if the owner unwinds (or otherwise drops its
//! ticket without publishing), the slot is marked abandoned and waiting
//! followers get [`Joined::Retry`] — they re-join, and one of them
//! becomes the new owner. No lock is held while the owner computes.
//!
//! Observability: the table itself carries no counters. The session
//! layer wraps [`RequestTable::join`] with the `mq_dedup_*` metric
//! family (shared/retry counters, follower-wait histogram) and the
//! `req.dedup.wait` span — see `session.rs`.

use mq_store::lock::{lock_recover, wait_recover};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How a follower behaves after an abandoned-owner wakeup
/// ([`Joined::Retry`]): capped exponential backoff between re-joins, and
/// a hard attempt cap so a crash-looping owner can't spin followers
/// forever. The backoff keeps a stampede of released followers from all
/// re-joining in the same instant (one becomes the new owner
/// immediately; the rest arrive staggered and coalesce onto it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Give up after this many [`Joined::Retry`] wakeups.
    pub max_attempts: u32,
    /// Backoff before the first re-join; doubles per attempt.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The backoff before re-join number `attempt` (1-based):
    /// `base · 2^(attempt-1)`, capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        self.base.saturating_mul(1u32 << exp).min(self.cap)
    }
}

/// State of one in-flight slot.
enum SlotState<V> {
    /// The owner is still computing.
    Pending,
    /// The owner published this result.
    Done(V),
    /// The owner dropped its ticket without publishing (panic path).
    Abandoned,
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    cv: Condvar,
}

/// Outcome of [`RequestTable::join`].
pub enum Joined<'t, K: Hash + Eq + Clone, V: Clone> {
    /// This caller owns the computation: run it, then
    /// [`Ticket::publish`] the result so followers wake up.
    Owner(Ticket<'t, K, V>),
    /// Another caller owned an identical in-flight request; this is its
    /// (cloned) result.
    Shared(V),
    /// The owner abandoned the slot (it panicked); call `join` again.
    Retry,
}

/// The owner's obligation to publish: created by [`RequestTable::join`],
/// resolved by [`Ticket::publish`]. Dropping it unpublished marks the
/// slot abandoned so followers retry instead of hanging.
pub struct Ticket<'t, K: Hash + Eq + Clone, V: Clone> {
    table: &'t RequestTable<K, V>,
    key: K,
    slot: Arc<Slot<V>>,
    published: bool,
}

impl<K: Hash + Eq + Clone, V: Clone> Ticket<'_, K, V> {
    /// Publish `value`: wake every follower with a clone and retire the
    /// in-flight entry (later identical requests start a fresh
    /// computation). Returns `value` back for the owner's own use.
    pub fn publish(mut self, value: V) -> V {
        {
            let mut state = lock_recover(&self.slot.state);
            *state = SlotState::Done(value.clone());
        }
        self.slot.cv.notify_all();
        self.published = true;
        self.table.remove(&self.key);
        value
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Drop for Ticket<'_, K, V> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        // Owner failed to publish (unwinding): release the followers.
        {
            let mut state = lock_recover(&self.slot.state);
            *state = SlotState::Abandoned;
        }
        self.slot.cv.notify_all();
        self.table.remove(&self.key);
    }
}

/// A table of in-flight computations keyed by request identity.
pub struct RequestTable<K, V> {
    inflight: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> RequestTable<K, V> {
    /// An empty table.
    pub fn new() -> Self {
        RequestTable {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Join the in-flight computation for `key`: become the owner if
    /// nobody holds it, otherwise block until the owner publishes (or
    /// abandons) and share its result.
    pub fn join(&self, key: K) -> Joined<'_, K, V> {
        let slot = {
            let mut map = lock_recover(&self.inflight);
            match map.entry(key.clone()) {
                Entry::Vacant(e) => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending),
                        cv: Condvar::new(),
                    });
                    e.insert(Arc::clone(&slot));
                    return Joined::Owner(Ticket {
                        table: self,
                        key,
                        slot,
                        published: false,
                    });
                }
                Entry::Occupied(e) => Arc::clone(e.get()),
            }
        };
        let mut state = lock_recover(&slot.state);
        loop {
            match &*state {
                SlotState::Pending => {
                    state = wait_recover(&slot.cv, state);
                }
                SlotState::Done(v) => return Joined::Shared(v.clone()),
                SlotState::Abandoned => return Joined::Retry,
            }
        }
    }

    /// Number of requests currently in flight.
    pub fn len(&self) -> usize {
        lock_recover(&self.inflight).len()
    }

    /// Whether no request is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn remove(&self, key: &K) {
        lock_recover(&self.inflight).remove(key);
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for RequestTable<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn retry_policy_backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(10), "cap binds");
        assert_eq!(p.backoff(100), Duration::from_millis(10), "no overflow");
    }

    #[test]
    fn first_joiner_owns_and_later_one_recomputes() {
        let table: RequestTable<u32, String> = RequestTable::new();
        let Joined::Owner(ticket) = table.join(7) else {
            panic!("first joiner must own");
        };
        assert_eq!(table.len(), 1);
        let out = ticket.publish("seven".into());
        assert_eq!(out, "seven");
        assert!(table.is_empty(), "publication retires the entry");
        // After publication the next joiner owns a fresh computation.
        assert!(matches!(table.join(7), Joined::Owner(_)));
    }

    /// Deterministic dedup: the follower registers *while* the owner
    /// holds the slot, so it must block and then receive the owner's
    /// result — never compute.
    #[test]
    fn follower_blocks_until_owner_publishes() {
        let table: Arc<RequestTable<u32, String>> = Arc::new(RequestTable::new());
        let Joined::Owner(ticket) = table.join(1) else {
            panic!("owner expected");
        };
        let entered = Arc::new(Barrier::new(2));
        let follower = {
            let table = Arc::clone(&table);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                entered.wait();
                match table.join(1) {
                    Joined::Shared(v) => v,
                    _ => panic!("concurrent identical request must share"),
                }
            })
        };
        entered.wait();
        // Give the follower time to actually park on the slot before the
        // owner publishes (publication must wake parked waiters).
        std::thread::sleep(std::time::Duration::from_millis(20));
        ticket.publish("one".into());
        assert_eq!(follower.join().unwrap(), "one");
    }

    /// An owner that panics (drops the ticket unpublished) must not hang
    /// its followers: they retry and one becomes the new owner.
    #[test]
    fn abandoned_owner_releases_followers_for_retry() {
        let table: Arc<RequestTable<u32, u32>> = Arc::new(RequestTable::new());
        let Joined::Owner(ticket) = table.join(5) else {
            panic!("owner expected");
        };
        let follower = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || loop {
                match table.join(5) {
                    Joined::Shared(v) => return v,
                    Joined::Retry => continue,
                    Joined::Owner(t) => return t.publish(99),
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(ticket); // abandon without publishing
        assert_eq!(follower.join().unwrap(), 99);
        assert!(table.is_empty());
    }

    /// Many concurrent joiners of one key: exactly the owners compute,
    /// everyone agrees on a canonical result per round.
    #[test]
    fn concurrent_joiners_converge() {
        let table: Arc<RequestTable<u32, u32>> = Arc::new(RequestTable::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let table = Arc::clone(&table);
            let computes = Arc::clone(&computes);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                loop {
                    match table.join(3) {
                        Joined::Owner(t) => {
                            computes.fetch_add(1, Ordering::SeqCst);
                            return t.publish(42);
                        }
                        Joined::Shared(v) => return v,
                        Joined::Retry => continue,
                    }
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert!(computes.load(Ordering::SeqCst) >= 1);
        assert!(table.is_empty());
    }
}
