//! The linter lints its own tree: the real workspace must be at zero
//! unwaivered violations, with every rule actually exercised by the
//! loaded file set (so a green run means the rules ran, not that their
//! scopes were empty).

use std::path::Path;

use mq_lint::{lint, load_workspace};

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_zero_unwaivered_violations() {
    let ws = load_workspace(&repo_root()).expect("workspace readable");
    let diags = lint(&ws);
    assert!(
        diags.is_empty(),
        "mq-lint violations in the real tree:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_walk_sees_the_interesting_files() {
    let ws = load_workspace(&repo_root()).expect("workspace readable");
    for expected in [
        "crates/service/src/net.rs",
        "crates/service/src/protocol.rs",
        "crates/service/src/session.rs",
        "crates/store/src/lock.rs",
        "crates/core/src/engine/parallel.rs",
        "src/bin/mq.rs",
    ] {
        assert!(
            ws.files.iter().any(|f| f.path == expected),
            "walk missed {expected}"
        );
    }
    // Fixtures must never leak into a real run.
    assert!(
        ws.files.iter().all(|f| !f.path.contains("/fixtures/")),
        "fixtures leaked into the workspace walk"
    );
    assert!(ws.check_completeness);
    assert!(ws.architecture_md.as_deref().is_some_and(|a| !a.is_empty()));
    assert!(ws.performance_md.as_deref().is_some_and(|p| !p.is_empty()));
}

#[test]
fn seeding_a_violation_into_the_real_tree_is_caught() {
    let mut ws = load_workspace(&repo_root()).expect("workspace readable");
    let file = ws
        .files
        .iter_mut()
        .find(|f| f.path == "crates/service/src/session.rs")
        .expect("session.rs present");
    file.text
        .push_str("\npub fn seeded(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let line = file.text.lines().count();
    let diags = lint(&ws);
    assert!(
        diags.iter().any(|d| d.rule == "no-panic-in-serving"
            && d.path == "crates/service/src/session.rs"
            && d.line == line),
        "seeded violation not caught: {diags:?}"
    );
}
