//! Seeded-violation fixtures: each file in `crates/lint/fixtures/`
//! carries exactly the violations its header comment says, and the
//! engine must report the exact rule id on the exact line.
//!
//! Fixtures are fed through the library API under fake workspace paths
//! (rule scopes are path-based); the binary's workspace walk skips
//! `fixtures/` directories, so these files never taint a real run.

use mq_lint::rules::{
    BAD_WAIVER, ERR_CODE_STABILITY, FAULTPOINT_COVERAGE, KNOB_REGISTRY, METRIC_REGISTRY,
    NO_DEPRECATED_CALLS, NO_PANIC_IN_SERVING, NO_RC_REFCELL, POISON_SAFE_LOCKS,
};
use mq_lint::{lint, Diagnostic, SourceFile, Workspace};

/// A PERFORMANCE.md with both generated tables present, one of which
/// can be replaced by a stale body.
fn perf_doc(knob_table: &str, metric_table: &str) -> String {
    format!(
        "# Perf\n<!-- knob-table:begin -->\n{knob_table}<!-- knob-table:end -->\n\
         <!-- metric-table:begin -->\n{metric_table}<!-- metric-table:end -->\n"
    )
}

/// A single-fixture workspace: no docs, no completeness checks.
fn ws(path: &str, text: &str) -> Workspace {
    Workspace {
        files: vec![SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        }],
        architecture_md: None,
        performance_md: None,
        check_completeness: false,
    }
}

fn rule_lines(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn no_panic_fixture_fires_on_the_seeded_line_only() {
    let diags = lint(&ws(
        "crates/service/src/bad.rs",
        include_str!("../fixtures/no_panic.rs"),
    ));
    assert_eq!(rule_lines(&diags, NO_PANIC_IN_SERVING), vec![5]);
    assert_eq!(diags.len(), 1, "test-mod unwrap must be exempt: {diags:?}");
}

#[test]
fn no_panic_fixture_is_clean_outside_serving_scope() {
    let diags = lint(&ws(
        "crates/relation/src/bad.rs",
        include_str!("../fixtures/no_panic.rs"),
    ));
    assert!(diags.is_empty(), "non-serving scope: {diags:?}");
}

#[test]
fn poison_locks_fixture_fires_on_the_seeded_line() {
    let diags = lint(&ws(
        "crates/store/src/bad.rs",
        include_str!("../fixtures/poison_locks.rs"),
    ));
    assert_eq!(rule_lines(&diags, POISON_SAFE_LOCKS), vec![7]);
    assert_eq!(diags.len(), 1, "{diags:?}");
}

#[test]
fn rc_refcell_fixture_fires_on_the_seeded_line() {
    let diags = lint(&ws(
        "crates/core/src/engine/bad.rs",
        include_str!("../fixtures/rc_refcell.rs"),
    ));
    assert_eq!(rule_lines(&diags, NO_RC_REFCELL), vec![4]);
    assert_eq!(diags.len(), 1, "Arc must not be flagged: {diags:?}");
}

#[test]
fn knob_fixture_fires_on_the_undeclared_read() {
    let diags = lint(&ws(
        "crates/core/src/engine/bad.rs",
        include_str!("../fixtures/knob.rs"),
    ));
    assert_eq!(rule_lines(&diags, KNOB_REGISTRY), vec![6]);
    assert_eq!(diags.len(), 1, "{diags:?}");
}

#[test]
fn knob_table_drift_is_a_violation() {
    let mut w = ws("crates/core/src/engine/ok.rs", "pub fn nothing() {}\n");
    w.performance_md = Some(perf_doc(
        "| stale | table |\n",
        &mq_lint::metrics::render_table(),
    ));
    let diags = lint(&w);
    assert_eq!(
        diags.iter().map(|d| d.rule).collect::<Vec<_>>(),
        vec![KNOB_REGISTRY]
    );
    assert_eq!(diags[0].path, "PERFORMANCE.md");

    // …and the generated tables are accepted verbatim.
    w.performance_md = Some(perf_doc(
        &mq_lint::knobs::render_table(),
        &mq_lint::metrics::render_table(),
    ));
    assert!(lint(&w).is_empty());
}

#[test]
fn metric_fixture_fires_on_the_undeclared_registration() {
    let diags = lint(&ws(
        "crates/service/src/bad.rs",
        include_str!("../fixtures/metric.rs"),
    ));
    assert_eq!(rule_lines(&diags, METRIC_REGISTRY), vec![8]);
    assert_eq!(diags.len(), 1, "declared name must pass: {diags:?}");
}

#[test]
fn metric_table_drift_is_a_violation() {
    let mut w = ws("crates/core/src/engine/ok.rs", "pub fn nothing() {}\n");
    w.performance_md = Some(perf_doc(
        &mq_lint::knobs::render_table(),
        "| stale | table |\n",
    ));
    let diags = lint(&w);
    assert_eq!(
        diags.iter().map(|d| d.rule).collect::<Vec<_>>(),
        vec![METRIC_REGISTRY]
    );
    assert_eq!(diags[0].path, "PERFORMANCE.md");
}

#[test]
fn err_code_fixture_fires_on_the_undocumented_code() {
    let mut w = ws(
        "crates/service/src/protocol.rs",
        include_str!("../fixtures/err_code.rs"),
    );
    w.architecture_md =
        Some("# Arch\n<!-- err-codes:begin -->\n`parse`\n<!-- err-codes:end -->\n".to_string());
    let diags = lint(&w);
    assert_eq!(rule_lines(&diags, ERR_CODE_STABILITY), vec![15]);
    assert_eq!(diags.len(), 1, "documented `parse` is fine: {diags:?}");

    // Documenting the code clears it.
    w.architecture_md = Some(
        "# Arch\n<!-- err-codes:begin -->\n`novel-code` `parse`\n<!-- err-codes:end -->\n"
            .to_string(),
    );
    assert!(lint(&w).is_empty());
}

#[test]
fn faultpoint_fixture_fires_per_missing_site() {
    let diags = lint(&ws(
        "crates/service/src/net.rs",
        include_str!("../fixtures/faultpoint.rs"),
    ));
    // The constructor lost both read-boundary sites; the write sites
    // survive inside it.
    assert_eq!(rule_lines(&diags, FAULTPOINT_COVERAGE), vec![9, 9]);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags[0].message.contains("read.delay"), "{diags:?}");
    assert!(diags[1].message.contains("read.err"), "{diags:?}");
}

#[test]
fn deprecated_fixture_fires_on_the_nontest_caller() {
    let diags = lint(&ws(
        "crates/core/src/counters.rs",
        include_str!("../fixtures/deprecated.rs"),
    ));
    assert_eq!(rule_lines(&diags, NO_DEPRECATED_CALLS), vec![11]);
    assert_eq!(
        diags.len(),
        1,
        "definition span and test caller must be exempt: {diags:?}"
    );
}

#[test]
fn bad_waiver_fixture_fires_and_does_not_suppress() {
    let diags = lint(&ws(
        "crates/service/src/bad.rs",
        include_str!("../fixtures/bad_waiver.rs"),
    ));
    assert_eq!(rule_lines(&diags, BAD_WAIVER), vec![7, 11]);
    // The reason-less waiver must not have suppressed the unwrap below it.
    assert_eq!(rule_lines(&diags, NO_PANIC_IN_SERVING), vec![8]);
    assert_eq!(diags.len(), 3, "{diags:?}");
}

#[test]
fn a_reasoned_waiver_suppresses_the_line_below() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // lint:allow(no-panic-in-serving): fixture — audited\n    x.unwrap()\n}\n";
    let diags = lint(&ws("crates/service/src/bad.rs", src));
    assert!(diags.is_empty(), "{diags:?}");
}
