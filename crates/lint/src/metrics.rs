//! The central `mq_*` metric registry.
//!
//! Every metric the workspace registers against an `mq_obs::Registry`
//! must be declared here (name, kind, purpose) — the `metric-registry`
//! rule fails on any `"mq_…"` metric literal in non-test code that has
//! no entry, on any entry no code registers (dead registry rot), and on
//! a PERFORMANCE.md metric table that drifted from [`render_table`]'s
//! output. The registry is the stable-names contract: dashboards and
//! the `metrics` protocol command key on these strings, so renames must
//! be deliberate (edit here, then `--fix-docs`).

/// One declared metric.
pub struct Metric {
    /// The exposition name (`mq_<family>_<metric>`; histograms get
    /// `_bucket`/`_sum`/`_count` series derived from it).
    pub name: &'static str,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: &'static str,
    /// One-line purpose, rendered into the docs table.
    pub purpose: &'static str,
}

/// Every metric the workspace registers, alphabetically.
pub const METRICS: &[Metric] = &[
    Metric {
        name: "mq_catalog_update_ns",
        kind: "histogram",
        purpose: "Wall time of one copy-on-write catalog update (append/replace)",
    },
    Metric {
        name: "mq_catalog_updates_total",
        kind: "counter",
        purpose: "Successful catalog updates (snapshot version bumps)",
    },
    Metric {
        name: "mq_dedup_follower_wait_ns",
        kind: "histogram",
        purpose: "Time a deduped follower blocked on the owning search",
    },
    Metric {
        name: "mq_dedup_retries_total",
        kind: "counter",
        purpose: "Dedup re-joins after an owning search abandoned its slot",
    },
    Metric {
        name: "mq_dedup_shared_total",
        kind: "counter",
        purpose: "Requests answered from another caller's in-flight search",
    },
    Metric {
        name: "mq_exec_memo_hits_total",
        kind: "counter",
        purpose: "Plan-node evaluations answered by the memo service",
    },
    Metric {
        name: "mq_exec_nodes_total",
        kind: "counter",
        purpose: "Plan-node evaluations executed (memo misses included)",
    },
    Metric {
        name: "mq_faults_fired_total",
        kind: "counter",
        purpose: "Fault injections that fired, labeled by `site`",
    },
    Metric {
        name: "mq_faults_polled_total",
        kind: "counter",
        purpose: "Fault-injection site consultations, labeled by `site`",
    },
    Metric {
        name: "mq_memo_hits_total",
        kind: "counter",
        purpose: "Per-search memo hits drained from finished searches",
    },
    Metric {
        name: "mq_memo_misses_total",
        kind: "counter",
        purpose: "Per-search memo misses drained from finished searches",
    },
    Metric {
        name: "mq_net_accepted_total",
        kind: "counter",
        purpose: "TCP connections accepted",
    },
    Metric {
        name: "mq_net_active_connections",
        kind: "gauge",
        purpose: "Currently served connections",
    },
    Metric {
        name: "mq_net_disconnects_io_total",
        kind: "counter",
        purpose: "Connections dropped on read/write I/O errors",
    },
    Metric {
        name: "mq_net_disconnects_slow_total",
        kind: "counter",
        purpose: "Connections dropped by the slow-client writer deadline",
    },
    Metric {
        name: "mq_net_err_replies_total",
        kind: "counter",
        purpose: "Structured `err <code>` replies written",
    },
    Metric {
        name: "mq_net_injected_read_errors_total",
        kind: "counter",
        purpose: "Injected `read.err` faults surfaced to a connection",
    },
    Metric {
        name: "mq_net_oversized_total",
        kind: "counter",
        purpose: "Request lines rejected for exceeding the line cap",
    },
    Metric {
        name: "mq_net_panics_caught_total",
        kind: "counter",
        purpose: "Per-request panics isolated by the connection guard",
    },
    Metric {
        name: "mq_net_rejected_busy_total",
        kind: "counter",
        purpose: "Connections refused at the accept gate (server full)",
    },
    Metric {
        name: "mq_net_request_ns",
        kind: "histogram",
        purpose: "End-to-end serve time of one request line",
    },
    Metric {
        name: "mq_net_requests_total",
        kind: "counter",
        purpose: "Request lines served over TCP",
    },
    Metric {
        name: "mq_sched_tasks_total",
        kind: "counter",
        purpose: "Scheduler tasks claimed across finished searches",
    },
    Metric {
        name: "mq_scrape_runs_total",
        kind: "counter",
        purpose: "Flight-recorder scrape ticks (history samples recorded)",
    },
    Metric {
        name: "mq_session_admission_wait_ns",
        kind: "histogram",
        purpose: "Time a search waited at the admission gate",
    },
    Metric {
        name: "mq_session_deadline_exceeded_total",
        kind: "counter",
        purpose: "Searches cut off by their wall-clock budget",
    },
    Metric {
        name: "mq_session_executed_total",
        kind: "counter",
        purpose: "Searches actually run (dedup followers excluded)",
    },
    Metric {
        name: "mq_session_panics_caught_total",
        kind: "counter",
        purpose: "Search panics caught and converted to structured errors",
    },
    Metric {
        name: "mq_session_requests_total",
        kind: "counter",
        purpose: "Metaquery requests received by the session layer",
    },
    Metric {
        name: "mq_session_search_wall_ns",
        kind: "histogram",
        purpose: "Wall time of one executed search (admission excluded)",
    },
];

/// Registry entry for `name`, if declared.
pub fn lookup(name: &str) -> Option<&'static Metric> {
    METRICS.iter().find(|m| m.name == name)
}

/// The generated markdown metric table — the exact content the
/// `metric-registry` rule requires between PERFORMANCE.md's
/// `<!-- metric-table:begin -->` / `<!-- metric-table:end -->` markers.
pub fn render_table() -> String {
    let mut out = String::from("| Metric | Kind | Purpose |\n|---|---|---|\n");
    for m in METRICS {
        out.push_str(&format!("| `{}` | {} | {} |\n", m.name, m.kind, m.purpose));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in METRICS.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "registry must stay alphabetical and duplicate-free: {} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn kinds_are_the_three_instruments() {
        for m in METRICS {
            assert!(
                matches!(m.kind, "counter" | "gauge" | "histogram"),
                "{}: unknown kind {}",
                m.name,
                m.kind
            );
        }
    }

    #[test]
    fn every_entry_renders_one_table_row() {
        let table = render_table();
        for m in METRICS {
            assert!(table.contains(&format!("| `{}` |", m.name)));
        }
        assert_eq!(table.lines().count(), METRICS.len() + 2);
    }

    #[test]
    fn lookup_finds_declared_metrics_only() {
        assert!(lookup("mq_net_requests_total").is_some());
        assert!(lookup("mq_not_a_metric_total").is_none());
    }
}
