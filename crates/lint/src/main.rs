//! The `mq-lint` binary: walk the workspace, run every rule, report.
//!
//! ```text
//! cargo run -p mq-lint --              # advisory: print findings, exit 0
//! cargo run -p mq-lint -- --deny       # CI mode: exit 1 on any finding
//! cargo run -p mq-lint -- --fix-docs   # regenerate the PERFORMANCE.md knob table
//! cargo run -p mq-lint -- --list-rules # print the stable rule ids
//! cargo run -p mq-lint -- --root <dir> # lint a different checkout
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mq_lint::{knobs, lint, load_workspace, ALL_RULES};

fn main() -> ExitCode {
    let mut deny = false;
    let mut fix_docs = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--fix-docs" => fix_docs = true,
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mq-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("mq-lint: unknown flag `{other}` (try --deny, --fix-docs, --list-rules, --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    if fix_docs {
        return match rewrite_knob_table(&root) {
            Ok(changed) => {
                println!(
                    "PERFORMANCE.md knob table {}",
                    if changed {
                        "rewritten"
                    } else {
                        "already in sync"
                    }
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mq-lint: --fix-docs failed: {e}");
                ExitCode::from(2)
            }
        };
    }
    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("mq-lint: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let n_files = ws.files.len();
    let diags = lint(&ws);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("mq-lint: {n_files} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "mq-lint: {} violation{} in {n_files} files{}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            if deny {
                ""
            } else {
                " (advisory; use --deny in CI)"
            }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]` — works from any crate dir and from CI.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Regenerate the knob table between PERFORMANCE.md's
/// `<!-- knob-table:begin -->` / `<!-- knob-table:end -->` markers.
fn rewrite_knob_table(root: &Path) -> Result<bool, String> {
    let path = root.join("PERFORMANCE.md");
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let begin = "<!-- knob-table:begin -->";
    let end = "<!-- knob-table:end -->";
    let b = text
        .find(begin)
        .ok_or_else(|| format!("{} has no `{begin}` marker", path.display()))?;
    let e = text
        .find(end)
        .ok_or_else(|| format!("{} has no `{end}` marker", path.display()))?;
    if e < b {
        return Err("knob-table markers are reversed".to_string());
    }
    let new = format!(
        "{}{begin}\n{}{end}{}",
        &text[..b],
        knobs::render_table(),
        &text[e + end.len()..]
    );
    if new == text {
        return Ok(false);
    }
    fs::write(&path, new).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(true)
}
