//! The `mq-lint` binary: walk the workspace, run every rule, report.
//!
//! ```text
//! cargo run -p mq-lint --              # advisory: print findings, exit 0
//! cargo run -p mq-lint -- --deny       # CI mode: exit 1 on any finding
//! cargo run -p mq-lint -- --fix-docs   # regenerate the PERFORMANCE.md registry tables
//! cargo run -p mq-lint -- --list-rules # print the stable rule ids
//! cargo run -p mq-lint -- --root <dir> # lint a different checkout
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mq_lint::{knobs, lint, load_workspace, metrics, ALL_RULES};

fn main() -> ExitCode {
    let mut deny = false;
    let mut fix_docs = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--fix-docs" => fix_docs = true,
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mq-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("mq-lint: unknown flag `{other}` (try --deny, --fix-docs, --list-rules, --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    if fix_docs {
        for (marker, table) in [
            ("knob-table", knobs::render_table()),
            ("metric-table", metrics::render_table()),
        ] {
            match rewrite_table(&root, marker, &table) {
                Ok(changed) => println!(
                    "PERFORMANCE.md {marker} {}",
                    if changed {
                        "rewritten"
                    } else {
                        "already in sync"
                    }
                ),
                Err(e) => {
                    eprintln!("mq-lint: --fix-docs failed: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("mq-lint: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let n_files = ws.files.len();
    let diags = lint(&ws);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("mq-lint: {n_files} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "mq-lint: {} violation{} in {n_files} files{}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            if deny {
                ""
            } else {
                " (advisory; use --deny in CI)"
            }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]` — works from any crate dir and from CI.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Regenerate a registry table between PERFORMANCE.md's
/// `<!-- <marker>:begin -->` / `<!-- <marker>:end -->` markers.
fn rewrite_table(root: &Path, marker: &str, table: &str) -> Result<bool, String> {
    let path = root.join("PERFORMANCE.md");
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let begin = format!("<!-- {marker}:begin -->");
    let end = format!("<!-- {marker}:end -->");
    let b = text
        .find(&begin)
        .ok_or_else(|| format!("{} has no `{begin}` marker", path.display()))?;
    let e = text
        .find(&end)
        .ok_or_else(|| format!("{} has no `{end}` marker", path.display()))?;
    if e < b {
        return Err(format!("{marker} markers are reversed"));
    }
    let new = format!(
        "{}{begin}\n{table}{end}{}",
        &text[..b],
        &text[e + end.len()..]
    );
    if new == text {
        return Ok(false);
    }
    fs::write(&path, new).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(true)
}
