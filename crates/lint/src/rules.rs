//! The rule engine: every workspace contract, as a token-stream check.
//!
//! Rules are line-level and waivable (`// lint:allow(<rule>): <reason>`
//! on the violating line or the line above — the reason is mandatory).
//! Diagnostics carry stable rule ids, so CI output and waivers stay
//! meaningful across refactors.

use crate::lexer::{lex, matching, Lexed, Tok, Token};
use crate::{knobs, metrics};

/// `no-panic-in-serving`: no `.unwrap()` / `.expect()` / `panic!` /
/// `unreachable!` / `todo!` / `unimplemented!` in non-test serving code
/// (`crates/service`, `src/bin`) — the structured-error contract.
pub const NO_PANIC_IN_SERVING: &str = "no-panic-in-serving";
/// `poison-safe-locks`: lock acquisitions in the concurrency layers must
/// route through `mq_store::lock`, never bare `.unwrap()`/`.expect()`
/// or inline `PoisonError` recovery.
pub const POISON_SAFE_LOCKS: &str = "poison-safe-locks";
/// `no-rc-refcell-in-sendsync`: no `Rc`/`RefCell`/`Cell`/`UnsafeCell`
/// in the Send+Sync layers (store, service, engine).
pub const NO_RC_REFCELL: &str = "no-rc-refcell-in-sendsync";
/// `knob-registry`: every `MQ_*` literal must be declared in the knob
/// registry, no dead entries, docs table in sync.
pub const KNOB_REGISTRY: &str = "knob-registry";
/// `metric-registry`: every `mq_*` metric literal must be declared in
/// the metric registry, no dead entries, docs table in sync.
pub const METRIC_REGISTRY: &str = "metric-registry";
/// `err-code-stability`: emitted `err <code>` strings must exactly match
/// the documented contract in ARCHITECTURE.md.
pub const ERR_CODE_STABILITY: &str = "err-code-stability";
/// `faultpoint-coverage`: declared serving-boundary functions must
/// contain their fault-injection sites.
pub const FAULTPOINT_COVERAGE: &str = "faultpoint-coverage";
/// `no-deprecated-calls`: nothing calls an item carrying `#[deprecated]`.
pub const NO_DEPRECATED_CALLS: &str = "no-deprecated-calls";
/// `bad-waiver`: a waiver comment with no reason, or naming no known rule.
pub const BAD_WAIVER: &str = "bad-waiver";

/// Every rule id, for waiver validation and `--list-rules`.
pub const ALL_RULES: &[&str] = &[
    NO_PANIC_IN_SERVING,
    POISON_SAFE_LOCKS,
    NO_RC_REFCELL,
    KNOB_REGISTRY,
    METRIC_REGISTRY,
    ERR_CODE_STABILITY,
    FAULTPOINT_COVERAGE,
    NO_DEPRECATED_CALLS,
    BAD_WAIVER,
];

/// One source file handed to the engine: a workspace-relative path (with
/// forward slashes) plus its text.
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/service/src/net.rs`.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

/// Everything the engine lints in one run.
pub struct Workspace {
    /// The `.rs` files.
    pub files: Vec<SourceFile>,
    /// ARCHITECTURE.md contents (`None` skips the err-code doc check —
    /// fixture runs; the CLI always supplies it).
    pub architecture_md: Option<String>,
    /// PERFORMANCE.md contents (`None` skips the knob-table doc check).
    pub performance_md: Option<String>,
    /// Whether whole-workspace completeness checks run (dead registry
    /// entries, declared faultpoint files actually present). True for
    /// real runs, false for single-fixture runs.
    pub check_completeness: bool,
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule id.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Declared serving-boundary fault sites: (file, function, sites).
/// The boundaries poll their sites through per-server `CountedSite`
/// handles (so fired/polled counts land in the instance's metric
/// registry); the site literals live where the handles are constructed,
/// so the rule anchors there — deleting a handle (and with it the
/// boundary poll) trips the check.
const FAULTPOINTS: &[(&str, &str, &[&str])] = &[
    (
        // NetCounters::new — the only `fn new` in net.rs.
        "crates/service/src/net.rs",
        "new",
        &["read.delay", "read.err", "write.delay", "write.err"],
    ),
    (
        "crates/service/src/session.rs",
        "with_config",
        &["search.panic"],
    ),
];

/// The file allowed to mention `PoisonError`: the recovery helper itself
/// (its own lines carry audited waivers too, but path-level knowledge
/// keeps the diagnostics meaningful if the file is renamed).
const LOCK_HELPER: &str = "crates/store/src/lock.rs";

fn in_serving_scope(path: &str) -> bool {
    path.starts_with("crates/service/src/") || path.starts_with("src/bin/")
}

fn in_sendsync_scope(path: &str) -> bool {
    path.starts_with("crates/store/src/")
        || path.starts_with("crates/service/src/")
        || path.starts_with("crates/core/src/engine/")
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Lint a whole workspace. Waivers are already applied; what comes back
/// is the set of *unwaivered* findings.
pub fn lint(ws: &Workspace) -> Vec<Diagnostic> {
    let lexed: Vec<(usize, Lexed)> = ws
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (i, lex(&f.text)))
        .collect();
    let mut diags = Vec::new();
    for (i, lx) in &lexed {
        let path = &ws.files[*i].path;
        check_waiver_syntax(path, lx, &mut diags);
        if in_serving_scope(path) {
            check_no_panic(path, lx, &mut diags);
        }
        if in_sendsync_scope(path) {
            check_poison_safe_locks(path, lx, &mut diags);
            check_no_rc_refcell(path, lx, &mut diags);
        }
    }
    check_knob_registry(ws, &lexed, &mut diags);
    check_metric_registry(ws, &lexed, &mut diags);
    check_err_codes(ws, &lexed, &mut diags);
    check_faultpoints(ws, &lexed, &mut diags);
    check_no_deprecated_calls(ws, &lexed, &mut diags);
    // Apply waivers (doc-file diagnostics have no waiver channel).
    diags.retain(|d| {
        let Some((i, lx)) = lexed.iter().find(|(i, _)| ws.files[*i].path == d.path) else {
            return true;
        };
        let _ = i;
        !lx.waived(d.line, d.rule)
    });
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    diags
}

/// `bad-waiver`: reason-less waivers and unknown rule ids are findings
/// themselves — a waiver must stay auditable.
fn check_waiver_syntax(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    for w in &lx.waivers {
        if !ALL_RULES.contains(&w.rule.as_str()) {
            out.push(Diagnostic {
                path: path.to_string(),
                line: w.line,
                rule: BAD_WAIVER,
                message: format!("waiver names unknown rule `{}`", w.rule),
            });
        } else if w.reason.is_empty() {
            out.push(Diagnostic {
                path: path.to_string(),
                line: w.line,
                rule: BAD_WAIVER,
                message: format!(
                    "waiver for `{}` has no reason — write `// lint:allow({}): <why>`",
                    w.rule, w.rule
                ),
            });
        }
    }
}

fn check_no_panic(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    for k in 0..toks.len() {
        if lx.is_test[k] {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if is_punct(toks.get(k), '.') {
            if let Some(name) = toks.get(k + 1).and_then(ident) {
                if matches!(name, "unwrap" | "expect") && is_punct(toks.get(k + 2), '(') {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: toks[k + 1].line,
                        rule: NO_PANIC_IN_SERVING,
                        message: format!(
                            ".{name}() in serving code — return a structured error instead"
                        ),
                    });
                }
            }
        }
        // `panic!` & friends
        if let Some(name) = ident(&toks[k]) {
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && is_punct(toks.get(k + 1), '!')
            {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: toks[k].line,
                    rule: NO_PANIC_IN_SERVING,
                    message: format!("{name}! in serving code — return a structured error instead"),
                });
            }
        }
    }
}

fn check_poison_safe_locks(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    for k in 0..toks.len() {
        if lx.is_test[k] {
            continue;
        }
        // `PoisonError` outside the helper module.
        if ident(&toks[k]) == Some("PoisonError") && path != LOCK_HELPER {
            out.push(Diagnostic {
                path: path.to_string(),
                line: toks[k].line,
                rule: POISON_SAFE_LOCKS,
                message: "PoisonError handled outside mq_store::lock — use \
                          lock_recover/read_recover/write_recover/wait_recover"
                    .to_string(),
            });
        }
        if !is_punct(toks.get(k), '.') {
            continue;
        }
        let Some(name) = toks.get(k + 1).and_then(ident) else {
            continue;
        };
        if !is_punct(toks.get(k + 2), '(') {
            continue;
        }
        // `.unwrap_or_else(… into_inner …)` — inline poison recovery.
        if name == "unwrap_or_else" {
            if let Some(close) = matching(toks, k + 2, '(', ')') {
                if toks[k + 3..close]
                    .iter()
                    .any(|t| ident(t) == Some("into_inner"))
                {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: toks[k + 1].line,
                        rule: POISON_SAFE_LOCKS,
                        message: "inline poison recovery — route through \
                                  mq_store::lock instead"
                            .to_string(),
                    });
                }
            }
            continue;
        }
        // `.lock()/.read()/.write()/.into_inner()` (no args) or
        // `.wait(…)`, followed by `.unwrap()` / `.expect(…)`.
        let zero_arg = matches!(name, "lock" | "read" | "write" | "into_inner");
        if !zero_arg && name != "wait" {
            continue;
        }
        if zero_arg && !is_punct(toks.get(k + 3), ')') {
            continue; // has arguments: not a lock acquisition
        }
        let Some(close) = matching(toks, k + 2, '(', ')') else {
            continue;
        };
        if is_punct(toks.get(close + 1), '.') {
            if let Some(m) = toks.get(close + 2).and_then(ident) {
                if matches!(m, "unwrap" | "expect") {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: toks[close + 2].line,
                        rule: POISON_SAFE_LOCKS,
                        message: format!(
                            ".{name}().{m}() — a poisoned lock panics the whole layer; \
                             use mq_store::lock::{}",
                            match name {
                                "lock" => "lock_recover",
                                "read" => "read_recover",
                                "write" => "write_recover",
                                "wait" => "wait_recover",
                                _ => "unpoison",
                            }
                        ),
                    });
                }
            }
        }
    }
}

fn check_no_rc_refcell(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    for (k, t) in lx.tokens.iter().enumerate() {
        if lx.is_test[k] {
            continue;
        }
        if let Some(name) = ident(t) {
            if matches!(name, "Rc" | "RefCell" | "Cell" | "UnsafeCell") {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: t.line,
                    rule: NO_RC_REFCELL,
                    message: format!(
                        "{name} in a Send+Sync layer — this code crosses worker \
                         threads; use Arc/Mutex/atomics"
                    ),
                });
            }
        }
    }
}

fn check_knob_registry(ws: &Workspace, lexed: &[(usize, Lexed)], out: &mut Vec<Diagnostic>) {
    let mut used: Vec<&str> = Vec::new();
    for (i, lx) in lexed {
        let path = &ws.files[*i].path;
        if path.ends_with("lint/src/knobs.rs") {
            continue; // the registry itself doesn't count as a use
        }
        for (k, t) in lx.tokens.iter().enumerate() {
            if lx.is_test[k] {
                continue;
            }
            let Tok::Str(s) = &t.tok else { continue };
            if !is_knob_name(s) {
                continue;
            }
            match knobs::lookup(s) {
                Some(k) => used.push(k.name),
                None => out.push(Diagnostic {
                    path: path.clone(),
                    line: t.line,
                    rule: KNOB_REGISTRY,
                    message: format!(
                        "`{s}` is not in the knob registry — declare it in \
                         crates/lint/src/knobs.rs (name, default, purpose)"
                    ),
                }),
            }
        }
    }
    if ws.check_completeness {
        for k in knobs::KNOBS {
            if !used.contains(&k.name) {
                out.push(Diagnostic {
                    path: "crates/lint/src/knobs.rs".to_string(),
                    line: 1,
                    rule: KNOB_REGISTRY,
                    message: format!(
                        "dead registry entry `{}` — no non-test code reads it",
                        k.name
                    ),
                });
            }
        }
    }
    // Docs sync: the PERFORMANCE.md table must equal the generated one.
    if let Some(perf) = &ws.performance_md {
        match marker_block(perf, "knob-table") {
            Some((line, body)) => {
                if body.trim() != knobs::render_table().trim() {
                    out.push(Diagnostic {
                        path: "PERFORMANCE.md".to_string(),
                        line,
                        rule: KNOB_REGISTRY,
                        message: "knob table is out of sync with the registry — \
                                  run `cargo run -p mq-lint -- --fix-docs`"
                            .to_string(),
                    });
                }
            }
            None => out.push(Diagnostic {
                path: "PERFORMANCE.md".to_string(),
                line: 1,
                rule: KNOB_REGISTRY,
                message: "missing `<!-- knob-table:begin -->` / `<!-- knob-table:end -->` \
                          markers"
                    .to_string(),
            }),
        }
    }
}

fn check_metric_registry(ws: &Workspace, lexed: &[(usize, Lexed)], out: &mut Vec<Diagnostic>) {
    let mut used: Vec<&str> = Vec::new();
    for (i, lx) in lexed {
        let path = &ws.files[*i].path;
        if path.ends_with("lint/src/metrics.rs") {
            continue; // the registry itself doesn't count as a use
        }
        for (k, t) in lx.tokens.iter().enumerate() {
            if lx.is_test[k] {
                continue;
            }
            let Tok::Str(s) = &t.tok else { continue };
            if !is_metric_name(s) {
                continue;
            }
            match metrics::lookup(s) {
                Some(m) => used.push(m.name),
                None => out.push(Diagnostic {
                    path: path.clone(),
                    line: t.line,
                    rule: METRIC_REGISTRY,
                    message: format!(
                        "`{s}` is not in the metric registry — declare it in \
                         crates/lint/src/metrics.rs (name, kind, purpose)"
                    ),
                }),
            }
        }
    }
    if ws.check_completeness {
        for m in metrics::METRICS {
            if !used.contains(&m.name) {
                out.push(Diagnostic {
                    path: "crates/lint/src/metrics.rs".to_string(),
                    line: 1,
                    rule: METRIC_REGISTRY,
                    message: format!(
                        "dead registry entry `{}` — no non-test code registers it",
                        m.name
                    ),
                });
            }
        }
    }
    // Docs sync: the PERFORMANCE.md table must equal the generated one.
    if let Some(perf) = &ws.performance_md {
        match marker_block(perf, "metric-table") {
            Some((line, body)) => {
                if body.trim() != metrics::render_table().trim() {
                    out.push(Diagnostic {
                        path: "PERFORMANCE.md".to_string(),
                        line,
                        rule: METRIC_REGISTRY,
                        message: "metric table is out of sync with the registry — \
                                  run `cargo run -p mq-lint -- --fix-docs`"
                            .to_string(),
                    });
                }
            }
            None => out.push(Diagnostic {
                path: "PERFORMANCE.md".to_string(),
                line: 1,
                rule: METRIC_REGISTRY,
                message: "missing `<!-- metric-table:begin -->` / `<!-- metric-table:end -->` \
                          markers"
                    .to_string(),
            }),
        }
    }
}

/// A metric-name-shaped literal: `mq_<family>_<metric>` — lowercase
/// snake case with at least two underscores, so crate-name literals
/// (`mq_obs`) and unrelated strings don't trip the rule.
fn is_metric_name(s: &str) -> bool {
    s.starts_with("mq_")
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        && s.bytes().filter(|&b| b == b'_').count() >= 2
}

fn is_knob_name(s: &str) -> bool {
    s.len() > 3
        && s.starts_with("MQ_")
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Extract the block between `<!-- name:begin -->` and `<!-- name:end -->`.
/// Returns (1-based line of the begin marker, block body).
fn marker_block(doc: &str, name: &str) -> Option<(usize, String)> {
    let begin = format!("<!-- {name}:begin -->");
    let end = format!("<!-- {name}:end -->");
    let mut body = String::new();
    let mut begin_line = None;
    for (n, l) in doc.lines().enumerate() {
        if l.trim() == begin {
            begin_line = Some(n + 1);
            body.clear();
            continue;
        }
        if l.trim() == end {
            return begin_line.map(|bl| (bl, body));
        }
        if begin_line.is_some() {
            body.push_str(l);
            body.push('\n');
        }
    }
    None
}

fn check_err_codes(ws: &Workspace, lexed: &[(usize, Lexed)], out: &mut Vec<Diagnostic>) {
    // Collect every code the protocol/transport layer can emit.
    let mut emitted: Vec<(String, String, usize)> = Vec::new(); // (code, path, line)
    for (i, lx) in lexed {
        let path = &ws.files[*i].path;
        if !(path.ends_with("crates/service/src/protocol.rs")
            || path.ends_with("crates/service/src/net.rs"))
        {
            continue;
        }
        let toks = &lx.tokens;
        for k in 0..toks.len() {
            if lx.is_test[k] {
                continue;
            }
            // `Reply::err("<code>", …)` — literal first argument.
            if ident(&toks[k]) == Some("err")
                && is_punct(toks.get(k + 1), '(')
                && k >= 2
                && is_punct(toks.get(k - 1), ':')
            {
                if let Some(Tok::Str(code)) = toks.get(k + 2).map(|t| &t.tok) {
                    if is_code_like(code) {
                        emitted.push((code.clone(), path.clone(), toks[k + 2].line));
                    }
                }
            }
            // Pre-rendered `"err <code> …"` wire literals.
            if let Tok::Str(s) = &toks[k].tok {
                if let Some(rest) = s.strip_prefix("err ") {
                    if let Some(code) = rest.split_whitespace().next() {
                        if is_code_like(code) {
                            emitted.push((code.to_string(), path.clone(), toks[k].line));
                        }
                    }
                }
            }
            // Every literal inside `fn error_code` is a code.
            if ident(&toks[k]) == Some("fn")
                && toks.get(k + 1).and_then(ident) == Some("error_code")
            {
                if let Some(open) = toks[k..]
                    .iter()
                    .position(|t| t.tok == Tok::Punct('{'))
                    .map(|p| p + k)
                {
                    if let Some(close) = matching(toks, open, '{', '}') {
                        for t in &toks[open..close] {
                            if let Tok::Str(code) = &t.tok {
                                if is_code_like(code) {
                                    emitted.push((code.clone(), path.clone(), t.line));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let Some(arch) = &ws.architecture_md else {
        return;
    };
    let Some((marker_line, body)) = marker_block(arch, "err-codes") else {
        out.push(Diagnostic {
            path: "ARCHITECTURE.md".to_string(),
            line: 1,
            rule: ERR_CODE_STABILITY,
            message: "missing `<!-- err-codes:begin -->` / `<!-- err-codes:end -->` \
                      markers around the error-code contract"
                .to_string(),
        });
        return;
    };
    let documented: Vec<String> = backticked(&body);
    for (code, path, line) in &emitted {
        if !documented.contains(code) {
            out.push(Diagnostic {
                path: path.clone(),
                line: *line,
                rule: ERR_CODE_STABILITY,
                message: format!(
                    "error code `{code}` is emitted but not documented in \
                     ARCHITECTURE.md's err-codes block — codes are a stable contract"
                ),
            });
        }
    }
    if ws.check_completeness {
        for code in &documented {
            if !emitted.iter().any(|(c, _, _)| c == code) {
                out.push(Diagnostic {
                    path: "ARCHITECTURE.md".to_string(),
                    line: marker_line,
                    rule: ERR_CODE_STABILITY,
                    message: format!(
                        "documented error code `{code}` is never emitted by \
                         protocol.rs/net.rs — stale contract entry"
                    ),
                });
            }
        }
    }
}

fn is_code_like(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// All `` `backticked` `` tokens in `text`.
fn backticked(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('`') {
        let Some(len) = rest[start + 1..].find('`') else {
            break;
        };
        out.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + 1 + len + 1..];
    }
    out
}

fn check_faultpoints(ws: &Workspace, lexed: &[(usize, Lexed)], out: &mut Vec<Diagnostic>) {
    for (file, func, sites) in FAULTPOINTS {
        let Some((i, lx)) = lexed
            .iter()
            .find(|(i, _)| ws.files[*i].path.ends_with(file))
        else {
            if ws.check_completeness {
                out.push(Diagnostic {
                    path: (*file).to_string(),
                    line: 1,
                    rule: FAULTPOINT_COVERAGE,
                    message: format!("declared faultpoint file missing from workspace ({func})"),
                });
            }
            continue;
        };
        let path = &ws.files[*i].path;
        let toks = &lx.tokens;
        let mut found_fn = false;
        for k in 0..toks.len() {
            if ident(&toks[k]) == Some("fn") && toks.get(k + 1).and_then(ident) == Some(*func) {
                found_fn = true;
                let body: &[Token] = toks[k..]
                    .iter()
                    .position(|t| t.tok == Tok::Punct('{'))
                    .map(|p| p + k)
                    .and_then(|open| matching(toks, open, '{', '}').map(|close| &toks[open..close]))
                    .unwrap_or(&[]);
                for site in *sites {
                    let present = body
                        .iter()
                        .any(|t| matches!(&t.tok, Tok::Str(s) if s == site));
                    if !present {
                        out.push(Diagnostic {
                            path: path.clone(),
                            line: toks[k].line,
                            rule: FAULTPOINT_COVERAGE,
                            message: format!(
                                "`{func}` lost its `{site}` fault-injection site — \
                                 the chaos harness depends on it"
                            ),
                        });
                    }
                }
                break;
            }
        }
        if !found_fn {
            out.push(Diagnostic {
                path: path.clone(),
                line: 1,
                rule: FAULTPOINT_COVERAGE,
                message: format!("declared serving-boundary fn `{func}` not found in {file}"),
            });
        }
    }
}

fn check_no_deprecated_calls(ws: &Workspace, lexed: &[(usize, Lexed)], out: &mut Vec<Diagnostic>) {
    // Pass 1: find `#[deprecated…]` items and their definition spans.
    struct Deprecated {
        name: String,
        file: usize,
        span: (usize, usize), // token index range, inclusive
    }
    let mut items: Vec<Deprecated> = Vec::new();
    for (i, lx) in lexed {
        let toks = &lx.tokens;
        let mut k = 0usize;
        while k < toks.len() {
            let is_attr_open = toks[k].tok == Tok::Punct('#') && is_punct(toks.get(k + 1), '[');
            if !is_attr_open {
                k += 1;
                continue;
            }
            let Some(attr_end) = matching(toks, k + 1, '[', ']') else {
                break;
            };
            let deprecated = toks[k + 2..attr_end]
                .iter()
                .any(|t| ident(t) == Some("deprecated"));
            if !deprecated {
                k = attr_end + 1;
                continue;
            }
            // Skip further attributes, then find the item keyword + name.
            let mut j = attr_end + 1;
            while toks.get(j).map(|t| &t.tok) == Some(&Tok::Punct('#'))
                && is_punct(toks.get(j + 1), '[')
            {
                match matching(toks, j + 1, '[', ']') {
                    Some(e) => j = e + 1,
                    None => break,
                }
            }
            let mut name = None;
            while j < toks.len() {
                if let Some(kw) = ident(&toks[j]) {
                    if matches!(
                        kw,
                        "fn" | "struct" | "enum" | "trait" | "type" | "const" | "static" | "mod"
                    ) {
                        name = toks.get(j + 1).and_then(ident).map(str::to_string);
                        break;
                    }
                }
                if matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    break;
                }
                j += 1;
            }
            let Some(name) = name else {
                k = attr_end + 1;
                continue;
            };
            // Item extent: the matching `}` of its first brace, or `;`.
            let mut end = j;
            while end < toks.len() {
                match &toks[end].tok {
                    Tok::Punct(';') => break,
                    Tok::Punct('{') => {
                        end = matching(toks, end, '{', '}').unwrap_or(toks.len() - 1);
                        break;
                    }
                    _ => end += 1,
                }
            }
            items.push(Deprecated {
                name,
                file: *i,
                span: (k, end),
            });
            k = end + 1;
        }
    }
    if items.is_empty() {
        return;
    }
    // Pass 2: flag every non-test use outside the definition span.
    for (i, lx) in lexed {
        for (k, t) in lx.tokens.iter().enumerate() {
            if lx.is_test[k] {
                continue;
            }
            let Some(name) = ident(t) else { continue };
            for item in &items {
                if item.name != name {
                    continue;
                }
                if item.file == *i && k >= item.span.0 && k <= item.span.1 {
                    continue; // the definition itself
                }
                out.push(Diagnostic {
                    path: ws.files[*i].path.clone(),
                    line: t.line,
                    rule: NO_DEPRECATED_CALLS,
                    message: format!(
                        "`{name}` is #[deprecated] — migrate to its replacement \
                         instead of suppressing the warning"
                    ),
                });
            }
        }
    }
}
