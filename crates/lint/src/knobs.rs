//! The central `MQ_*` knob registry.
//!
//! Every environment variable the workspace reads must be declared here
//! (name, default, purpose) — the `knob-registry` rule fails on any
//! `"MQ_…"` literal in non-test code that has no entry, on any entry no
//! code reads (dead registry rot), and on a PERFORMANCE.md knob table
//! that drifted from [`render_table`]'s output.

/// One declared environment knob.
pub struct Knob {
    /// The environment variable name (`MQ_…`).
    pub name: &'static str,
    /// The effective default when unset.
    pub default: &'static str,
    /// One-line purpose, rendered into the docs table.
    pub purpose: &'static str,
}

/// Every `MQ_*` knob the workspace reads, alphabetically.
pub const KNOBS: &[Knob] = &[
    Knob {
        name: "MQ_BENCH_HISTORY",
        default: "BENCH_history.jsonl",
        purpose: "Append path for `bench_report`'s per-run trajectory records",
    },
    Knob {
        name: "MQ_BENCH_MAX_NET_P99_MS",
        default: "10000",
        purpose: "`net_load` p99 latency guard threshold, in milliseconds",
    },
    Knob {
        name: "MQ_BENCH_MAX_SCRAPE_OVERHEAD_PCT",
        default: "5",
        purpose: "Bench guard: max % regression of net p99 with the 1 s flight-recorder scraper on",
    },
    Knob {
        name: "MQ_BENCH_MAX_TRACE_OVERHEAD_PCT",
        default: "5",
        purpose: "Bench guard: max % slowdown of the traced vs untraced fig4 run",
    },
    Knob {
        name: "MQ_BENCH_MAX_WIDTH2_LAG",
        default: "30",
        purpose: "Bench guard: max allowed `fig4_width2_cycle4` / `fig4_width1_chain2` ratio",
    },
    Knob {
        name: "MQ_BENCH_MIN_WIDTH3_RPS",
        default: "4000",
        purpose: "Bench guard: min `fig4_width3_star4` optimized rows/sec (columnar floor)",
    },
    Knob {
        name: "MQ_BENCH_NET_CONNS",
        default: "120",
        purpose: "`net_load` workload: concurrent client connections",
    },
    Knob {
        name: "MQ_BENCH_NET_FAULTS",
        default: "(none)",
        purpose: "`net_load` workload: `MQ_FAULTS`-syntax plan injected for the run",
    },
    Knob {
        name: "MQ_BENCH_NET_REQS",
        default: "5",
        purpose: "`net_load` workload: requests sent per connection",
    },
    Knob {
        name: "MQ_BENCH_ONLY",
        default: "(unset)",
        purpose: "Substring filter restricting `bench_report` to matching workloads",
    },
    Knob {
        name: "MQ_BENCH_OUT",
        default: "BENCH_findrules.json",
        purpose: "Output path of the `bench_report` JSON report",
    },
    Knob {
        name: "MQ_BENCH_SAMPLES",
        default: "5",
        purpose: "Timed samples per (workload, core) in `bench_report`",
    },
    Knob {
        name: "MQ_BENCH_THREADS",
        default: "(unset)",
        purpose: "Comma list of worker counts to sweep the optimized core over (first = primary)",
    },
    Knob {
        name: "MQ_COLUMNAR",
        default: "1 (on)",
        purpose: "Column-major kernels over `ColumnarRows` (`0` falls back to the row-major loops)",
    },
    Knob {
        name: "MQ_FAULTS",
        default: "(none)",
        purpose: "Deterministic fault plan `site:prob:seed[,…]` for the serving stack",
    },
    Knob {
        name: "MQ_HEALTH_ANOMALY_K",
        default: "4",
        purpose: "Watchdog sensitivity: anomaly when a counter rate exceeds baseline mean + k·MAD",
    },
    Knob {
        name: "MQ_HEALTH_MAX_ERR_RATE",
        default: "0.05",
        purpose: "Health rule `error-rate`: structured-err fraction ceiling (4× is Unhealthy)",
    },
    Knob {
        name: "MQ_HEALTH_P99_MS",
        default: "1000",
        purpose: "Health rule `p99-burn`: request-latency objective for the two-window burn math",
    },
    Knob {
        name: "MQ_PARALLEL",
        default: "1 (on)",
        purpose: "Work-stealing `findRules` scheduler (`0`/`false`/`off` disables)",
    },
    Knob {
        name: "MQ_SCRAPE_MS",
        default: "1000",
        purpose: "Flight-recorder scrape cadence, ms (`0` keeps the recorder fully off)",
    },
    Knob {
        name: "MQ_SHARED_MEMO",
        default: "1 (on)",
        purpose: "Cross-worker shared memo service (`0` falls back to private per-worker slices)",
    },
    Knob {
        name: "MQ_SLOW_MS",
        default: "(off)",
        purpose: "Slow-query log threshold, ms — slower searches capture a per-node profile",
    },
    Knob {
        name: "MQ_SPLIT_DEPTH",
        default: "2",
        purpose: "How many leading patterns the parallel split enumerates into tasks",
    },
    Knob {
        name: "MQ_THREADS",
        default: "CPU count",
        purpose: "Worker-thread cap for the scheduler pool (rayon shim)",
    },
    Knob {
        name: "MQ_TRACE",
        default: "0 (off)",
        purpose:
            "Hot-path span tracing (`1` records scheduler/executor spans and per-node profiles)",
    },
];

/// Registry entry for `name`, if declared.
pub fn lookup(name: &str) -> Option<&'static Knob> {
    KNOBS.iter().find(|k| k.name == name)
}

/// The generated markdown knob table — the exact content the
/// `knob-registry` rule requires between PERFORMANCE.md's
/// `<!-- knob-table:begin -->` / `<!-- knob-table:end -->` markers.
pub fn render_table() -> String {
    let mut out = String::from("| Knob | Default | Purpose |\n|---|---|---|\n");
    for k in KNOBS {
        out.push_str(&format!(
            "| `{}` | `{}` | {} |\n",
            k.name, k.default, k.purpose
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in KNOBS.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "registry must stay alphabetical and duplicate-free: {} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn every_entry_renders_one_table_row() {
        let table = render_table();
        for k in KNOBS {
            assert!(table.contains(&format!("| `{}` |", k.name)));
        }
        assert_eq!(table.lines().count(), KNOBS.len() + 2);
    }

    #[test]
    fn lookup_finds_declared_knobs_only() {
        assert!(lookup("MQ_THREADS").is_some());
        assert!(lookup("MQ_NOT_A_KNOB").is_none());
    }
}
