//! A hand-rolled Rust lexer, just deep enough for line-level linting.
//!
//! No `syn`, no proc-macro machinery — the build box is offline and the
//! linter must stay dependency-free. The lexer produces a flat token
//! stream with line numbers, which is all the rule engine needs:
//!
//! * comments are skipped, **except** that `// lint:allow(<rule>): <reason>`
//!   comments are harvested as [`Waiver`]s;
//! * string literals (plain, raw, byte, raw-byte) become single [`Tok::Str`]
//!   tokens carrying their (unescaped-as-written) content, so rule
//!   patterns never fire on text inside strings;
//! * char literals and lifetimes are disambiguated, so `'a'` and `'a`
//!   don't derail the stream;
//! * a second pass marks every token inside a `#[cfg(test)]` item
//!   (module, fn, use, …) as test code, nested regions included.

/// What a token is. `Str` carries decoded-enough content (quotes and
/// raw/byte prefixes stripped, escape sequences left as written).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A string literal's content (without quotes/prefix).
    Str(String),
    /// A numeric literal (content unused by rules).
    Num,
    /// A char literal (content unused by rules).
    Char,
    /// A lifetime (content unused by rules).
    Lifetime,
    /// Any single punctuation character.
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// A `// lint:allow(<rule>): <reason>` comment. A waiver suppresses
/// matching diagnostics on its own line and on the line directly below
/// it (so it can ride at end-of-line or stand on the line above).
#[derive(Clone, Debug)]
pub struct Waiver {
    /// 1-based line the waiver comment is on.
    pub line: usize,
    /// The rule id being waived.
    pub rule: String,
    /// The written justification (empty = invalid waiver).
    pub reason: String,
}

/// One lexed source file: tokens, waivers, and per-token test-region
/// flags (same length as `tokens`).
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Every `lint:allow` waiver comment found.
    pub waivers: Vec<Waiver>,
    /// `is_test[i]` — token `i` sits inside a `#[cfg(test)]` item.
    pub is_test: Vec<bool>,
}

impl Lexed {
    /// Whether the 1-based `line` is waived for `rule`.
    pub fn waived(&self, line: usize, rule: &str) -> bool {
        self.waivers.iter().any(|w| {
            w.rule == rule && !w.reason.is_empty() && (w.line == line || w.line + 1 == line)
        })
    }
}

/// Lex `src` into tokens + waivers and mark `#[cfg(test)]` regions.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut waivers = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut end = start;
                while end < chars.len() && chars[end] != '\n' {
                    end += 1;
                }
                let text: String = chars[start..end].iter().collect();
                if let Some(w) = parse_waiver(text.trim(), line) {
                    waivers.push(w);
                }
                i = end;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, nested per Rust rules.
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (content, next, newlines) = scan_plain_string(&chars, i + 1);
                tokens.push(Token {
                    tok: Tok::Str(content),
                    line,
                });
                line += newlines;
                i = next;
            }
            '\'' => {
                // Char literal vs lifetime: a backslash or a closing
                // quote two chars on means char literal.
                if chars.get(i + 1) == Some(&'\\') {
                    // '\x41' / '\n' / '\'' — scan to the closing quote.
                    let mut j = i + 2;
                    if j < chars.len() {
                        j += 1; // the escaped char
                    }
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i = j + 1;
                } else if chars.get(i + 2) == Some(&'\'') {
                    tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i += 3;
                } else {
                    // Lifetime: skip the identifier.
                    let mut j = i + 1;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let ident: String = chars[i..j].iter().collect();
                // String prefixes: r"", r#""#, b"", br#""#, rb…
                let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb")
                    && matches!(chars.get(j), Some('"') | Some('#'));
                if is_str_prefix && ident.contains('r') {
                    if let Some((content, next, newlines)) = scan_raw_string(&chars, j) {
                        tokens.push(Token {
                            tok: Tok::Str(content),
                            line,
                        });
                        line += newlines;
                        i = next;
                        continue;
                    }
                }
                if is_str_prefix && chars.get(j) == Some(&'"') {
                    let (content, next, newlines) = scan_plain_string(&chars, j + 1);
                    tokens.push(Token {
                        tok: Tok::Str(content),
                        line,
                    });
                    line += newlines;
                    i = next;
                    continue;
                }
                tokens.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
                i = j;
            }
            other => {
                tokens.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    let is_test = mark_test_regions(&tokens);
    Lexed {
        tokens,
        waivers,
        is_test,
    }
}

/// Scan a non-raw string body starting just after the opening quote.
/// Returns (content, index past closing quote, newlines crossed).
fn scan_plain_string(chars: &[char], start: usize) -> (String, usize, usize) {
    let mut content = String::new();
    let mut i = start;
    let mut newlines = 0usize;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                content.push('\\');
                if let Some(&e) = chars.get(i + 1) {
                    content.push(e);
                    if e == '\n' {
                        newlines += 1;
                    }
                }
                i += 2;
            }
            '"' => return (content, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                content.push(c);
                i += 1;
            }
        }
    }
    (content, i, newlines)
}

/// Scan a raw string starting at the first `#` or `"` after the `r`/`br`
/// prefix. Returns `None` if this isn't actually a raw string.
fn scan_raw_string(chars: &[char], start: usize) -> Option<(String, usize, usize)> {
    let mut i = start;
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return None;
    }
    i += 1;
    let mut content = String::new();
    let mut newlines = 0usize;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return Some((content, i + 1 + hashes, newlines));
            }
        }
        if chars[i] == '\n' {
            newlines += 1;
        }
        content.push(chars[i]);
        i += 1;
    }
    Some((content, i, newlines))
}

/// Parse one comment body as a waiver, if it is one.
fn parse_waiver(comment: &str, line: usize) -> Option<Waiver> {
    let rest = comment.strip_prefix("lint:allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let after = &rest[close + 1..];
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    Some(Waiver {
        line,
        rule,
        reason: reason.to_string(),
    })
}

/// Mark every token inside a `#[cfg(test)]` item. The scan finds
/// `#[…cfg…test…]` attribute groups, skips any further attributes, and
/// marks tokens up to the end of the annotated item — the matching `}`
/// of its first brace, or the terminating `;` for brace-less items.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut is_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Punct('#')
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
        {
            let attr_end = match matching(tokens, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            let mentions_test = tokens[i + 2..attr_end]
                .windows(1)
                .any(|w| matches!(&w[0].tok, Tok::Ident(id) if id == "test"))
                && tokens[i + 2..attr_end]
                    .iter()
                    .any(|t| matches!(&t.tok, Tok::Ident(id) if id == "cfg"));
            if !mentions_test {
                i = attr_end + 1;
                continue;
            }
            // Skip trailing attributes, then find the item's extent.
            let mut j = attr_end + 1;
            while tokens.get(j).map(|t| &t.tok) == Some(&Tok::Punct('#'))
                && tokens.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
            {
                match matching(tokens, j + 1, '[', ']') {
                    Some(e) => j = e + 1,
                    None => return is_test,
                }
            }
            let mut end = j;
            while end < tokens.len() {
                match &tokens[end].tok {
                    Tok::Punct(';') => break,
                    Tok::Punct('{') => {
                        end = matching(tokens, end, '{', '}').unwrap_or(tokens.len() - 1);
                        break;
                    }
                    _ => end += 1,
                }
            }
            for flag in is_test.iter_mut().take((end + 1).min(tokens.len())).skip(i) {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    is_test
}

/// Index of the token closing the group opened at `open_idx` (which must
/// hold `open`). Handles nesting; `None` if unbalanced.
pub fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        match &t.tok {
            Tok::Punct(c) if *c == open => depth += 1,
            Tok::Punct(c) if *c == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    fn strings(l: &Lexed) -> Vec<&str> {
        l.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_are_single_tokens_and_hide_their_content() {
        let l = lex(r#"let x = "a.unwrap() \" with escape"; call(x);"#);
        assert_eq!(strings(&l), vec![r#"a.unwrap() \" with escape"#]);
        // Nothing inside the string leaked into the ident stream.
        assert_eq!(idents(&l), vec!["let", "x", "call", "x"]);
    }

    #[test]
    fn raw_and_byte_strings_lex_as_strings() {
        let l = lex(r##"let a = r#"raw "inner" body"#; let b = b"bytes"; let c = br#"rb"#;"##);
        assert_eq!(strings(&l), vec![r#"raw "inner" body"#, "bytes", "rb"]);
        assert_eq!(idents(&l), vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn comments_are_skipped_including_nested_blocks() {
        let l = lex("a /* x /* nested */ y */ b // trailing .unwrap()\nc");
        assert_eq!(idents(&l), vec!["a", "b", "c"]);
        assert_eq!(l.tokens[2].line, 2, "line count survives comments");
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let l = lex("fn f<'a>(x: &'a str) { m('x'); n('\\n'); }");
        assert_eq!(idents(&l), vec!["fn", "f", "x", "str", "m", "n"]);
        let lifetimes = l.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let chars = l.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn waivers_parse_rule_and_reason() {
        let l =
            lex("x(); // lint:allow(some-rule): because reasons\ny();\n// lint:allow(bare)\nz();");
        assert_eq!(l.waivers.len(), 2);
        assert_eq!(l.waivers[0].rule, "some-rule");
        assert_eq!(l.waivers[0].reason, "because reasons");
        assert!(l.waived(1, "some-rule"), "same line");
        assert!(l.waived(2, "some-rule"), "line below");
        assert!(!l.waived(3, "some-rule"));
        // A reason-less waiver never suppresses anything.
        assert_eq!(l.waivers[1].reason, "");
        assert!(!l.waived(3, "bare"));
        assert!(!l.waived(4, "bare"));
    }

    #[test]
    fn cfg_test_regions_cover_nested_modules() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       mod inner { fn t() { b.unwrap(); } }\n\
                       fn u() { c.unwrap(); }\n\
                   }\n\
                   fn live2() { d.unwrap(); }";
        let l = lex(src);
        let flags: Vec<(String, bool)> = l
            .tokens
            .iter()
            .zip(&l.is_test)
            .filter_map(|(t, &f)| match &t.tok {
                Tok::Ident(s) if ["a", "b", "c", "d"].contains(&s.as_str()) => Some((s.clone(), f)),
                _ => None,
            })
            .collect();
        assert_eq!(
            flags,
            vec![
                ("a".to_string(), false),
                ("b".to_string(), true),
                ("c".to_string(), true),
                ("d".to_string(), false),
            ]
        );
    }

    #[test]
    fn cfg_test_on_braceless_item_stops_at_semicolon() {
        let l = lex("#[cfg(test)]\nuse foo::bar;\nfn live() { x.unwrap(); }");
        let x = l
            .tokens
            .iter()
            .zip(&l.is_test)
            .find(|(t, _)| matches!(&t.tok, Tok::Ident(s) if s == "x"))
            .expect("x token");
        assert!(!x.1, "item after the cfg(test) use must not be marked");
    }

    #[test]
    fn cfg_attrs_without_test_do_not_mark() {
        let l = lex("#[cfg(feature = \"x\")]\nfn f() { y.unwrap(); }");
        assert!(l.is_test.iter().all(|&f| !f));
    }
}
