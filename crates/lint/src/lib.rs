//! mq-lint: in-tree static analysis for the metaquery workspace.
//!
//! A dependency-free lexer + rule engine that enforces the contracts the
//! test suite can't see: no panics on serving paths, poison-safe lock
//! discipline, Send+Sync purity in the shared layers, a complete `MQ_*`
//! knob registry, a complete `mq_*` metric registry, wire-stable error
//! codes, preserved fault-injection sites, and no calls to deprecated
//! shims.
//!
//! The crate is split three ways:
//!
//! - [`lexer`] — a hand-rolled token scanner (strings, raw strings,
//!   nested comments, `cfg(test)` region marking, waiver harvesting).
//!   No `syn`: the build box is offline and the linter must stay
//!   buildable before anything else in the workspace.
//! - [`rules`] — the rule engine: [`rules::lint`] takes a
//!   [`rules::Workspace`] and returns unwaivered [`rules::Diagnostic`]s.
//! - [`knobs`] — the central `MQ_*` registry the `knob-registry` rule
//!   checks reads and docs against.
//! - [`metrics`] — the central `mq_*` metric-name registry the
//!   `metric-registry` rule checks registrations and docs against.
//!
//! Violations are waived in-place with
//! `// lint:allow(<rule>): <reason>` on the violating line or the line
//! above; the reason is mandatory and itself linted (`bad-waiver`).

pub mod knobs;
pub mod lexer;
pub mod metrics;
pub mod rules;

pub use rules::{lint, Diagnostic, SourceFile, Workspace, ALL_RULES};

use std::fs;
use std::path::Path;

/// Load a real checkout into a [`Workspace`]: every `.rs` file under
/// `src/` and `crates/` (skipping `target/`, `.git/`, and `fixtures/`
/// directories — seeded-violation fixtures are linted by the test suite
/// with their own expectations, never as part of the tree), plus the
/// two contract documents. Paths are workspace-relative with forward
/// slashes.
pub fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut files = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(Workspace {
        files,
        architecture_md: Some(fs::read_to_string(root.join("ARCHITECTURE.md")).unwrap_or_default()),
        performance_md: Some(fs::read_to_string(root.join("PERFORMANCE.md")).unwrap_or_default()),
        check_completeness: true,
    })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path: rel,
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}
