// Fixture: one seeded `no-deprecated-calls` violation — a non-test
// caller of a #[deprecated] item. Linted under the fake path
// crates/core/src/counters.rs.

#[deprecated(note = "use Stats::snapshot instead")]
pub fn take_global_counters() -> (u64, u64) {
    (0, 0)
}

pub fn report() -> u64 {
    let (hits, misses) = take_global_counters(); // seeded violation (line 11)
    hits + misses
}

#[cfg(test)]
mod tests {
    #[test]
    #[allow(deprecated)]
    fn test_calls_are_exempt() {
        let _ = super::take_global_counters();
    }
}
