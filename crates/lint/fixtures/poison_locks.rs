// Fixture: one seeded `poison-safe-locks` violation.
// Linted under the fake path crates/store/src/bad.rs.

use std::sync::Mutex;

pub fn bump(counter: &Mutex<u64>) {
    let mut guard = counter.lock().unwrap(); // seeded violation (line 7)
    *guard += 1;
}
