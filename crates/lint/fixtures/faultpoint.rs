// Fixture: one seeded `faultpoint-coverage` violation — a serve_line
// that lost its fault-injection sites. Linted under the fake path
// crates/service/src/net.rs.

pub fn serve_line(line: &str) -> String {
    // seeded violation: no faultpoint("read.delay") / faultpoint("read.err")
    line.to_uppercase()
}

pub fn writer_loop(replies: &[String]) -> usize {
    faultpoint("write.delay");
    faultpoint("write.err");
    replies.len()
}

fn faultpoint(_site: &str) {}
