// Fixture: seeded `faultpoint-coverage` violations — a counter-handle
// constructor that lost its read-boundary fault sites (the write sites
// survive). Linted under the fake path crates/service/src/net.rs, where
// the rule anchors on `fn new`.

pub struct Counters;

impl Counters {
    pub fn new() -> Counters {
        // seeded violation: no site("read.delay") / site("read.err")
        site("write.delay");
        site("write.err");
        Counters
    }
}

fn site(_s: &str) {}
