// Fixture: one seeded `err-code-stability` violation — an emitted code
// missing from the documented contract. Linted under the fake path
// crates/service/src/protocol.rs against a doc that documents only
// `parse`.

pub struct Reply;

impl Reply {
    pub fn err(_code: &str, _msg: &str) -> Reply {
        Reply
    }
}

pub fn reject() -> Reply {
    Reply::err("novel-code", "not in the documented contract") // seeded violation (line 15)
}

pub fn reject_known() -> Reply {
    Reply::err("parse", "documented, fine")
}
