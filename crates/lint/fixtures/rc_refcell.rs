// Fixture: one seeded `no-rc-refcell-in-sendsync` violation.
// Linted under the fake path crates/core/src/engine/bad.rs.

use std::rc::Rc; // seeded violation (line 4)

pub fn share(v: Vec<u32>) -> (std::sync::Arc<Vec<u32>>, usize) {
    let a = std::sync::Arc::new(v);
    let n = a.len();
    (a, n)
}
