// Fixture: one seeded `metric-registry` violation — registering a
// metric name the central registry doesn't declare. The declared name
// above it must pass. Linted under the fake path
// crates/service/src/bad.rs.

pub fn register(reg: &Registry) {
    reg.counter("mq_net_requests_total", "declared, passes");
    reg.counter("mq_bogus_widgets_total", "seeded violation");
}
