// Fixture: one seeded `knob-registry` violation — an MQ_* env read
// that no registry entry declares. Linted under the fake path
// crates/core/src/engine/bad.rs.

pub fn secret_tuning() -> bool {
    std::env::var("MQ_SECRET_UNDECLARED").is_ok() // seeded violation (line 6)
}
