// Fixture: one seeded `no-panic-in-serving` violation.
// Linted by the test suite under the fake path crates/service/src/bad.rs.

pub fn handle(input: Option<&str>) -> String {
    let line = input.unwrap(); // seeded violation (line 5)
    line.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}
