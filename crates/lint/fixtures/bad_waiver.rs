// Fixture: two seeded `bad-waiver` violations — a reason-less waiver
// (which also does NOT suppress the violation under it) and a waiver
// naming an unknown rule. Linted under the fake path
// crates/service/src/bad.rs.

pub fn reasonless(input: Option<&str>) -> usize {
    // lint:allow(no-panic-in-serving):
    input.unwrap().len() // still flagged: the waiver above has no reason
}

// lint:allow(not-a-real-rule): the rule id is wrong
pub fn unknown_rule() {}
