//! Acyclic and semi-acyclic metaqueries (Definition 3.31) and the
//! tractable evaluation of Theorem 3.32.
//!
//! The hypergraph `H(MQ)` has **both** ordinary and predicate variables as
//! vertices (one edge per literal scheme); the semi-hypergraph `SH(MQ)`
//! keeps ordinary variables only. `MQ` is acyclic/semi-acyclic iff the
//! corresponding hypergraph is GYO-acyclic. Acyclicity implies
//! semi-acyclicity.
//!
//! For acyclic metaqueries, `⟨DB, MQ, I, 0, 0⟩` is LOGCFL-complete
//! (Theorem 3.32); the membership direction is an executable logspace-style
//! reduction to an acyclic BCQ over a derived database `DDB`:
//! each relation name `r` becomes a constant `n_r`, each arity `a` in the
//! database becomes a relation `u_a` of arity `a+1` holding `(n_r, t)` for
//! every tuple `t ∈ r`, and each literal scheme `L(X1..Xa)` becomes the
//! atom `u_a(L, X1, ..., Xa)` with the predicate variable demoted to an
//! ordinary variable.

use crate::ast::{Metaquery, Pred};
use crate::index::IndexKind;
use mq_cq::{acyclic_satisfiable, Atom, Cq, Hypergraph};
use mq_relation::{Database, Term, Value, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// Structural class of a metaquery (Definition 3.31).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MqClass {
    /// `H(MQ)` is acyclic (hence also semi-acyclic).
    Acyclic,
    /// `SH(MQ)` is acyclic but `H(MQ)` is not.
    SemiAcyclic,
    /// Even `SH(MQ)` is cyclic.
    Cyclic,
}

/// Build `H(MQ)`: vertices are ordinary *and* predicate variables.
pub fn full_hypergraph(mq: &Metaquery) -> Hypergraph {
    // Ordinary variables use their ids; predicate variables are offset
    // past the largest ordinary id.
    let offset = mq.vars.len() as u32;
    let edges: Vec<BTreeSet<u32>> = mq
        .literal_schemes()
        .map(|l| {
            let mut e: BTreeSet<u32> = l.args.iter().map(|v| v.0).collect();
            if let Pred::Var(p) = l.pred {
                e.insert(offset + p.0);
            }
            e
        })
        .collect();
    Hypergraph::new(edges)
}

/// Build `SH(MQ)`: ordinary variables only.
pub fn semi_hypergraph(mq: &Metaquery) -> Hypergraph {
    let edges: Vec<BTreeSet<u32>> = mq
        .literal_schemes()
        .map(|l| l.args.iter().map(|v| v.0).collect())
        .collect();
    Hypergraph::new(edges)
}

/// Classify a metaquery per Definition 3.31.
pub fn classify(mq: &Metaquery) -> MqClass {
    if full_hypergraph(mq).is_acyclic() {
        MqClass::Acyclic
    } else if semi_hypergraph(mq).is_acyclic() {
        MqClass::SemiAcyclic
    } else {
        MqClass::Cyclic
    }
}

/// The derived instance of Theorem 3.32's membership proof: an acyclic
/// conjunctive query `QMQ` over a derived database `DDB` such that
/// `⟨DB, MQ, I, 0, 0⟩` is a YES instance iff `QMQ` is satisfiable.
#[derive(Debug)]
pub struct DerivedInstance {
    /// The derived database with the `u_a` relations.
    pub ddb: Database,
    /// The derived conjunctive query.
    pub query: Cq,
}

/// Build `⟨DDB, QMQ⟩` from `⟨DB, MQ, I⟩` (Theorem 3.32).
///
/// When `index == IndexKind::Sup` the head literal scheme is omitted from
/// `QMQ` (support's certifying set is the body alone; Proposition 3.20).
pub fn derived_instance(db: &Database, mq: &Metaquery, index: IndexKind) -> DerivedInstance {
    let mut ddb = Database::new();

    // Collect the arities used by literal schemes and by DB relations.
    let mut arities: BTreeSet<usize> = db.relations().map(|r| r.arity()).collect();
    for l in mq.literal_schemes() {
        arities.insert(l.arity());
    }

    // u_a relations: (n_r, t1, ..., ta). Relation-name constants are the
    // relation ids as integers.
    let mut u_rel = BTreeMap::new();
    for &a in &arities {
        let id = ddb.add_relation(format!("u{a}"), a + 1);
        u_rel.insert(a, id);
    }
    for rid in db.rel_ids() {
        let rel = db.relation(rid);
        let a = rel.arity();
        let n_r = Value::Int(rid.0 as i64);
        for row in rel.rows() {
            let mut t = Vec::with_capacity(a + 1);
            t.push(n_r);
            t.extend(row.iter().copied());
            ddb.insert(u_rel[&a], t.into_boxed_slice());
        }
    }

    // QMQ: each literal scheme becomes a u_a atom; predicate variables
    // become ordinary variables (offset past the metaquery's pool).
    let offset = mq.vars.len() as u32;
    let mut atoms = Vec::new();
    let include_head = index != IndexKind::Sup;
    let schemes: Vec<_> = if include_head {
        mq.literal_schemes().collect()
    } else {
        mq.body.iter().collect()
    };
    for l in schemes {
        let a = l.arity();
        let first: Term = match &l.pred {
            Pred::Var(p) => Term::Var(VarId(offset + p.0)),
            Pred::Rel(name) => {
                let rid = db
                    .rel_id(name)
                    .unwrap_or_else(|| panic!("relation `{name}` not in DB"));
                Term::Const(Value::Int(rid.0 as i64))
            }
        };
        let mut terms = Vec::with_capacity(a + 1);
        terms.push(first);
        terms.extend(l.args.iter().map(|&v| Term::Var(v)));
        atoms.push(Atom::new(u_rel[&a], terms));
    }
    DerivedInstance {
        ddb,
        query: Cq::new(atoms),
    }
}

/// Polynomial-time decision of `⟨DB, MQ, I, 0, 0⟩` for **acyclic**
/// metaqueries (Theorem 3.32). Returns `None` when `MQ` is not acyclic
/// (the reduction produces a cyclic query and the LOGCFL algorithm does
/// not apply — callers should fall back to a general engine).
pub fn decide_acyclic_zero(db: &Database, mq: &Metaquery, index: IndexKind) -> Option<bool> {
    if classify(mq) != MqClass::Acyclic {
        return None;
    }
    let derived = derived_instance(db, mq, index);
    // QMQ is acyclic because H(MQ) is: same hypergraph.
    acyclic_satisfiable(&derived.ddb, &derived.query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::naive;
    use crate::engine::MqProblem;
    use crate::instantiate::InstType;
    use crate::parse::parse_metaquery;
    use mq_relation::{ints, Frac};
    use rand::prelude::*;

    /// §3.4's examples: MQ1 acyclic, MQ2 cyclic (as metaqueries — MQ2's
    /// SH is still acyclic so it is semi-acyclic), N(X) <- N(Y), E(X,Y)
    /// semi-acyclic but not acyclic.
    #[test]
    fn paper_classifications() {
        let mq1 = parse_metaquery("P(X,Y) <- P(Y,Z), Q(Z,W)").unwrap();
        assert_eq!(classify(&mq1), MqClass::Acyclic);
        let mq2 = parse_metaquery("P(X,Y) <- Q(Y,Z), P(Z,W)").unwrap();
        assert_eq!(classify(&mq2), MqClass::SemiAcyclic);
        let mq3 = parse_metaquery("N(X) <- N(Y), E(X,Y)").unwrap();
        assert_eq!(classify(&mq3), MqClass::SemiAcyclic);
    }

    #[test]
    fn cyclic_classification() {
        // body triangle over ordinary variables, same pred var everywhere
        let mq = parse_metaquery("E(X,Y) <- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert_eq!(classify(&mq), MqClass::Cyclic);
    }

    /// Metaquery (4) is *cyclic*: its head shares X with the first body
    /// literal and Z with the second, closing a triangle in both H and SH.
    #[test]
    fn metaquery_4_is_cyclic() {
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        assert_eq!(classify(&mq), MqClass::Cyclic);
        // Dropping Z from the head breaks the triangle: acyclic.
        let open = parse_metaquery("R(X,Y) <- P(X,Y), Q(Y,Z)").unwrap();
        assert_eq!(classify(&open), MqClass::Acyclic);
    }

    #[test]
    fn derived_instance_matches_naive_decision() {
        let mut rng = StdRng::seed_from_u64(11);
        let mq = parse_metaquery("R(X,Y) <- P(X,Y), Q(Y,Z)").unwrap();
        for round in 0..15 {
            let mut db = Database::new();
            let p = db.add_relation("p", 2);
            let q = db.add_relation("q", 2);
            // Sparse domains make NO instances common.
            let dom = 3 + (round % 3) as i64 * 3;
            for _ in 0..6 {
                db.insert(p, ints(&[rng.gen_range(0..dom), rng.gen_range(0..dom)]));
                db.insert(q, ints(&[rng.gen_range(0..dom), rng.gen_range(0..dom)]));
            }
            for kind in IndexKind::ALL {
                let fast = decide_acyclic_zero(&db, &mq, kind).expect("acyclic metaquery");
                let slow = naive::decide(
                    &db,
                    &mq,
                    MqProblem {
                        index: kind,
                        threshold: Frac::ZERO,
                        ty: InstType::Zero,
                    },
                )
                .unwrap();
                assert_eq!(fast, slow, "disagree on {kind} round {round}");
            }
        }
    }

    #[test]
    fn derived_instance_shape() {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        db.insert(p, ints(&[1, 2]));
        db.add_relation("t", 3);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let derived = derived_instance(&db, &mq, IndexKind::Cnf);
        // u2 holds p's tuple tagged with its id; u3 exists and is empty.
        assert_eq!(derived.ddb.rel("u2").arity(), 3);
        assert_eq!(derived.ddb.rel("u2").len(), 1);
        assert_eq!(derived.ddb.rel("u3").len(), 0);
        assert_eq!(derived.query.atoms.len(), 3); // head + 2 body
                                                  // For sup the head is dropped.
        let derived_sup = derived_instance(&db, &mq, IndexKind::Sup);
        assert_eq!(derived_sup.query.atoms.len(), 2);
    }

    #[test]
    fn non_acyclic_returns_none() {
        let mut db = Database::new();
        db.add_relation("e", 2);
        let mq = parse_metaquery("N(X) <- N(Y), E(X,Y)").unwrap();
        assert!(decide_acyclic_zero(&db, &mq, IndexKind::Sup).is_none());
    }

    #[test]
    fn predicate_variable_consistency_respected() {
        // P occurs twice; DDB encoding shares the demoted variable so both
        // occurrences must pick the same relation constant.
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        db.insert(p, ints(&[1, 2]));
        db.insert(q, ints(&[2, 3]));
        let mq = parse_metaquery("P(X,Y) <- P(Y,Z), Q(Z,W)").unwrap();
        let fast = decide_acyclic_zero(&db, &mq, IndexKind::Sup).expect("acyclic");
        let slow = naive::decide(
            &db,
            &mq,
            MqProblem {
                index: IndexKind::Sup,
                threshold: Frac::ZERO,
                ty: InstType::Zero,
            },
        )
        .unwrap();
        assert_eq!(fast, slow);
    }
}
