//! The physical plan IR: "decide once, execute many".
//!
//! PR 2 introduced cost-guided λ-join planning, but the plan existed only
//! implicitly — interleaved with execution inside the engine. This module
//! reifies it as a first-class IR: a hash-consed DAG of relational
//! operators ([`PlanOp`]) interned in a [`PlanArena`]. The planner
//! ([`build_node_plan`]) is a pure function from a vertex's χ variables
//! and its λ atoms' statistics to a plan root; the executor
//! (`crate::engine::exec`) interprets plan nodes against [`mq_relation::Bindings`]
//! values and memoizes results **per plan-node id**.
//!
//! Hash-consing is what makes the memo work across instantiations: two
//! sibling λ assignments that differ only in later-planned atoms intern
//! the *same* nodes for their shared prefix (node identity is the operator
//! plus its operands, recursively), so the executor's per-id result memo
//! replaces PR 2's ad-hoc `(Vec<AtomKey>, Vec<VarId>)` tuple keys — one
//! `u32` lookup instead of re-hashing the whole prefix, and prefixes are
//! still shared across decomposition vertices whose λ labels overlap.
//!
//! Count-only evaluations (the cover/confidence semijoin counts and the
//! Yannakakis support counts) are tiny [`CountPlan`]s over input slots,
//! interpreted by the same executor, so every index computation runs
//! through the IR.

use mq_relation::{RelId, Term, VarId};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};

/// An instantiated atom — relation plus argument terms. The unit of
/// sharing for the atom cache and for plan-node identity.
pub type AtomKey = (RelId, Vec<Term>);

/// Identifier of an interned plan node (dense, per [`PlanArena`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PlanNodeId(pub u32);

/// A physical plan operator. `left` operands are plan nodes; atoms are
/// evaluated (and cached) by the executor from their [`AtomKey`].
///
/// Node identity — and therefore result-memo identity — is the operator
/// with its operands: interning the same op twice yields the same id.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PlanOp {
    /// Evaluate one instantiated atom against the database.
    Scan {
        /// The instantiated atom.
        atom: AtomKey,
    },
    /// Hash-join the left plan node with an atom on the given keys
    /// (the variables shared between the left result and the atom).
    HashJoin {
        /// Left input (the accumulated intermediate).
        left: PlanNodeId,
        /// Right input atom.
        atom: AtomKey,
        /// Shared variables joined on.
        keys: Vec<VarId>,
    },
    /// Filter the left plan node by an atom that contributes no needed
    /// variable: `π_V(J ⋈ A) = π_V(J ⋉ A)` when `A` adds nothing to `V`,
    /// and the semijoin never multiplies rows.
    Semijoin {
        /// Left input (the accumulated intermediate).
        left: PlanNodeId,
        /// Filtering atom.
        atom: AtomKey,
        /// Shared variables probed on.
        keys: Vec<VarId>,
    },
    /// Project the left plan node onto `vars` (with deduplication) —
    /// the "keep only `χ ∪ vars(remaining atoms)`" step between joins.
    Project {
        /// Input node.
        left: PlanNodeId,
        /// Variables kept (missing ones are ignored, as in
        /// [`mq_relation::Bindings::project`]).
        vars: Vec<VarId>,
    },
}

/// Hash-consing arena for plan nodes. Interning is idempotent: the same
/// operator (including operand ids) always returns the same node id, so
/// plans for sibling instantiations share their common prefixes
/// structurally.
#[derive(Default)]
pub struct PlanArena {
    nodes: Vec<PlanOp>,
    ids: HashMap<PlanOp, PlanNodeId>,
}

impl PlanArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `op`, returning the existing id if an identical node exists.
    pub fn intern(&mut self, op: PlanOp) -> PlanNodeId {
        if let Some(&id) = self.ids.get(&op) {
            return id;
        }
        let id = PlanNodeId(self.nodes.len() as u32);
        self.nodes.push(op.clone());
        self.ids.insert(op, id);
        id
    }

    /// The operator of node `id`.
    pub fn op(&self, id: PlanNodeId) -> &PlanOp {
        &self.nodes[id.0 as usize]
    }

    /// Number of interned nodes (result memos size themselves off this).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes were interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Per-atom statistics consumed by [`plan_join_order`]: the instantiated
/// atom's cardinality and its distinct variables.
#[derive(Clone, Debug)]
pub struct JoinAtomStats {
    /// Number of tuples of the instantiated atom.
    pub len: usize,
    /// Its distinct variables (any order).
    pub vars: Vec<VarId>,
}

/// Greedy cost-guided join order for a multi-atom join (the λ label of one
/// hypertree vertex).
///
/// Starts from the smallest atom, then repeatedly appends the *connected*
/// atom — one sharing at least one already-bound variable — with the
/// smallest `expansion(atom, shared_vars)` estimate. For hash joins the
/// natural estimate is the atom's average group size on the shared
/// columns (`len / distinct_keys`, see [`mq_relation::Bindings::distinct_keys`]): the
/// expected number of rows each probe row fans out into. Atoms sharing no
/// bound variable rank after every connected one and are only picked
/// (smallest first) when a cross product is unavoidable.
///
/// This is the fix for the width-2 cycle slowdown: a completed
/// decomposition routinely labels a vertex with variable-disjoint atom
/// pairs, and folding them in raw λ order materializes a `d²` cross
/// product that the remaining atoms then shrink back down.
///
/// Deterministic: ties break on `(len, index)`, so planned searches are
/// reproducible across runs and across parallel workers.
pub fn plan_join_order(
    stats: &[JoinAtomStats],
    mut expansion: impl FnMut(usize, &[VarId]) -> f64,
) -> Vec<usize> {
    let n = stats.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let first = (0..n)
        .min_by_key(|&i| (stats[i].len, i))
        .expect("n >= 1 atoms");
    let mut order = Vec::with_capacity(n);
    order.push(first);
    let mut bound: Vec<VarId> = Vec::new();
    for &v in &stats[first].vars {
        if !bound.contains(&v) {
            bound.push(v);
        }
    }
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != first).collect();
    let mut shared: Vec<VarId> = Vec::new();
    while !remaining.is_empty() {
        let mut best: Option<(f64, usize, usize)> = None; // (score, len, atom)
        for &i in &remaining {
            shared.clear();
            shared.extend(stats[i].vars.iter().copied().filter(|v| bound.contains(v)));
            let score = if shared.is_empty() {
                f64::INFINITY // cross product: last resort
            } else {
                expansion(i, &shared)
            };
            let better = match best {
                None => true,
                Some((bs, bl, bi)) => match score.total_cmp(&bs) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => (stats[i].len, i) < (bl, bi),
                },
            };
            if better {
                best = Some((score, stats[i].len, i));
            }
        }
        let (_, _, next) = best.expect("remaining is non-empty");
        order.push(next);
        remaining.retain(|&i| i != next);
        for &v in &stats[next].vars {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    order
}

/// Build the physical plan for one node join `π_χ(J(atoms))` — the pure
/// "decide" half of what used to be `Engine::plan_node_join`.
///
/// The λ atoms are joined in a planned order ([`plan_join_order`]); each
/// intermediate is projected onto the variables still *needed*
/// (`χ ∪ vars(remaining atoms)`), and an atom contributing no needed
/// variable becomes a [`PlanOp::Semijoin`] instead of a join. Every step
/// interns `(join|semijoin) → project` node pairs, so the executor's
/// per-node-id memo makes sibling plans resume from shared prefixes.
///
/// `stats[i]` must describe the evaluated atom `atom_keys[i]`; the
/// `expansion` estimate is the planner's fan-out oracle (see
/// [`plan_join_order`]). Returns the root node id.
pub fn build_node_plan(
    arena: &mut PlanArena,
    chi: &[VarId],
    atom_keys: &[AtomKey],
    stats: &[JoinAtomStats],
    expansion: impl FnMut(usize, &[VarId]) -> f64,
) -> PlanNodeId {
    let order = plan_join_order(stats, expansion);
    build_node_plan_ordered(arena, chi, atom_keys, stats, &order)
}

/// [`build_node_plan`] with the join order already decided — the
/// costing half split from the interning half. The cost model probes
/// row statistics (an O(rows) index build per uncached column set), so
/// callers sharing one arena across workers run [`plan_join_order`]
/// **outside** the arena lock and only intern — pure, allocation-light
/// work — under it.
pub fn build_node_plan_ordered(
    arena: &mut PlanArena,
    chi: &[VarId],
    atom_keys: &[AtomKey],
    stats: &[JoinAtomStats],
    order: &[usize],
) -> PlanNodeId {
    assert!(!atom_keys.is_empty(), "λ labels are non-empty");
    assert_eq!(atom_keys.len(), stats.len());
    assert_eq!(atom_keys.len(), order.len());
    if let [key] = atom_keys {
        let scan = arena.intern(PlanOp::Scan { atom: key.clone() });
        return arena.intern(PlanOp::Project {
            left: scan,
            vars: chi.to_vec(),
        });
    }
    // needed[k]: variables the pipeline still requires after step k —
    // χ plus everything a later-planned atom joins on.
    let mut needed: Vec<BTreeSet<VarId>> = Vec::with_capacity(order.len());
    let mut acc_need: BTreeSet<VarId> = chi.iter().copied().collect();
    for &ai in order.iter().rev() {
        needed.push(acc_need.clone());
        acc_need.extend(stats[ai].vars.iter().copied());
    }
    needed.reverse();

    let mut covered: BTreeSet<VarId> = BTreeSet::new();
    // (node id, the exact column variables of its result) — tracking the
    // result columns at plan time lets the executor skip shared-variable
    // discovery (the `keys` are precomputed here).
    let mut cur: Option<(PlanNodeId, Vec<VarId>)> = None;
    for (k, &ai) in order.iter().enumerate() {
        covered.extend(stats[ai].vars.iter().copied());
        let kept: Vec<VarId> = covered
            .iter()
            .copied()
            .filter(|v| needed[k].contains(v))
            .collect();
        cur = Some(match cur {
            None => {
                let scan = arena.intern(PlanOp::Scan {
                    atom: atom_keys[ai].clone(),
                });
                let proj = arena.intern(PlanOp::Project {
                    left: scan,
                    vars: kept.clone(),
                });
                // kept ⊆ covered = the atom's vars, so the projection
                // keeps exactly `kept`.
                (proj, kept)
            }
            Some((left, lvars)) => {
                let keys: Vec<VarId> = lvars
                    .iter()
                    .copied()
                    .filter(|v| stats[ai].vars.contains(v))
                    .collect();
                let adds_needed = stats[ai]
                    .vars
                    .iter()
                    .any(|v| !lvars.contains(v) && needed[k].contains(v));
                let (stepped, stepped_vars) = if adds_needed {
                    let mut joined_vars = lvars.clone();
                    joined_vars.extend(
                        stats[ai]
                            .vars
                            .iter()
                            .copied()
                            .filter(|v| !lvars.contains(v)),
                    );
                    (
                        arena.intern(PlanOp::HashJoin {
                            left,
                            atom: atom_keys[ai].clone(),
                            keys,
                        }),
                        joined_vars,
                    )
                } else {
                    (
                        arena.intern(PlanOp::Semijoin {
                            left,
                            atom: atom_keys[ai].clone(),
                            keys,
                        }),
                        lvars,
                    )
                };
                let proj = arena.intern(PlanOp::Project {
                    left: stepped,
                    vars: kept.clone(),
                });
                let cur_vars: Vec<VarId> = kept
                    .iter()
                    .copied()
                    .filter(|v| stepped_vars.contains(v))
                    .collect();
                (proj, cur_vars)
            }
        });
    }
    cur.expect("at least one planned step").0
}

/// A count-only terminal: the index computations of `findRules` never
/// materialize rows, so their plans are a single counting op over input
/// slots resolved at execution time (slot 0 = first input, etc.).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CountOp {
    /// `|inputs[left] ⋉ inputs[right]|` — the cover/confidence checks.
    SemijoinCount {
        /// Slot of the counted (left) side.
        left: usize,
        /// Slot of the probe (right) side.
        right: usize,
    },
    /// `|π_vars(inputs[input])|` — the Yannakakis support counts.
    CountDistinct {
        /// Slot of the counted input.
        input: usize,
        /// Variables projected before counting.
        vars: Vec<VarId>,
    },
}

/// A count-only plan (one terminal op). Kept as a struct so the executor
/// entry point mirrors the relational plans' shape.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CountPlan {
    /// The terminal counting operator.
    pub op: CountOp,
}

impl CountPlan {
    /// `|inputs[left] ⋉ inputs[right]|`.
    pub fn semijoin_count(left: usize, right: usize) -> Self {
        CountPlan {
            op: CountOp::SemijoinCount { left, right },
        }
    }

    /// `|π_vars(inputs[input])|`.
    pub fn count_distinct(input: usize, vars: Vec<VarId>) -> Self {
        CountPlan {
            op: CountOp::CountDistinct { input, vars },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(atoms: &[(usize, &[u32])]) -> Vec<JoinAtomStats> {
        atoms
            .iter()
            .map(|&(len, vars)| JoinAtomStats {
                len,
                vars: vars.iter().map(|&v| VarId(v)).collect(),
            })
            .collect()
    }

    /// Uniform expansion estimate for planner tests.
    fn flat(_: usize, _: &[VarId]) -> f64 {
        1.0
    }

    /// The planner never picks a cross product while a connected atom
    /// remains: on the 4-cycle vertex {e(X0,X1), e(X2,X3), e(X3,X0)} the
    /// raw λ order joins the two disjoint atoms first; the plan must not.
    #[test]
    fn plan_avoids_cross_products() {
        let s = stats(&[(120, &[0, 1]), (120, &[2, 3]), (120, &[3, 0])]);
        let order = plan_join_order(&s, flat);
        assert_eq!(order.len(), 3);
        // Every step after the first shares a variable with the atoms
        // already planned.
        let mut bound: Vec<u32> = s[order[0]].vars.iter().map(|v| v.0).collect();
        for &i in &order[1..] {
            assert!(
                s[i].vars.iter().any(|v| bound.contains(&v.0)),
                "step {i} is a cross product in {order:?}"
            );
            bound.extend(s[i].vars.iter().map(|v| v.0));
        }
    }

    /// Smaller atoms are preferred as the starting point and lower
    /// expansion estimates win among connected candidates.
    #[test]
    fn plan_prefers_small_and_selective() {
        let s = stats(&[(1000, &[0, 1]), (10, &[1, 2]), (500, &[2, 3])]);
        let order = plan_join_order(&s, |i, _| s[i].len as f64);
        assert_eq!(order[0], 1, "smallest atom starts the plan");
        assert_eq!(order, vec![1, 2, 0], "lower expansion estimate wins");
    }

    /// Disconnected components force a cross product eventually; the
    /// planner still orders each component before jumping.
    #[test]
    fn plan_handles_forced_cross_product() {
        let s = stats(&[(50, &[0, 1]), (50, &[1, 2]), (50, &[8, 9])]);
        let order = plan_join_order(&s, flat);
        assert_eq!(order[2], 2, "the disjoint atom goes last");
        assert_eq!(plan_join_order(&stats(&[(5, &[0])]), flat), vec![0]);
        assert!(plan_join_order(&stats(&[]), flat).is_empty());
    }

    fn key(rel: u32, vars: &[u32]) -> AtomKey {
        (
            RelId(rel),
            vars.iter().map(|&v| Term::Var(VarId(v))).collect(),
        )
    }

    /// Interning is idempotent and sibling plans share prefix nodes.
    #[test]
    fn hash_consing_shares_prefixes() {
        let mut arena = PlanArena::new();
        let chi = [VarId(0), VarId(1)];
        let keys_a = [key(0, &[0, 1]), key(1, &[1, 2]), key(2, &[2, 0])];
        let keys_b = [key(0, &[0, 1]), key(1, &[1, 2]), key(3, &[2, 0])];
        let s = stats(&[(5, &[0, 1]), (10, &[1, 2]), (20, &[2, 0])]);
        let ra = build_node_plan(&mut arena, &chi, &keys_a, &s, flat);
        let n_after_a = arena.len();
        let ra2 = build_node_plan(&mut arena, &chi, &keys_a, &s, flat);
        assert_eq!(ra, ra2, "identical plans intern to the same root");
        assert_eq!(arena.len(), n_after_a, "no new nodes for a re-plan");
        // A sibling differing only in the last-planned atom adds only the
        // final join+project pair.
        let rb = build_node_plan(&mut arena, &chi, &keys_b, &s, flat);
        assert_ne!(ra, rb);
        assert_eq!(
            arena.len(),
            n_after_a + 2,
            "sibling plan reuses the shared prefix nodes"
        );
    }

    /// Single-atom plans are scan + project onto χ.
    #[test]
    fn single_atom_plan_is_scan_project() {
        let mut arena = PlanArena::new();
        let chi = [VarId(0)];
        let keys = [key(0, &[0, 1])];
        let s = stats(&[(5, &[0, 1])]);
        let root = build_node_plan(&mut arena, &chi, &keys, &s, flat);
        match arena.op(root) {
            PlanOp::Project { left, vars } => {
                assert_eq!(vars, &[VarId(0)]);
                assert!(matches!(arena.op(*left), PlanOp::Scan { .. }));
            }
            other => panic!("expected project root, got {other:?}"),
        }
    }

    /// A purely-filtering atom (adding no needed variable) plans as a
    /// semijoin, never a join.
    #[test]
    fn filtering_atom_becomes_semijoin() {
        let mut arena = PlanArena::new();
        // χ = {0}; atoms: e(0,1) then f(1) — f adds no needed variable.
        let chi = [VarId(0)];
        let keys = [key(0, &[0, 1]), key(1, &[1])];
        let s = stats(&[(5, &[0, 1]), (50, &[1])]);
        let root = build_node_plan(&mut arena, &chi, &keys, &s, flat);
        let PlanOp::Project { left, .. } = arena.op(root) else {
            panic!("root must project");
        };
        assert!(
            matches!(arena.op(*left), PlanOp::Semijoin { .. }),
            "filter-only atom must semijoin, got {:?}",
            arena.op(*left)
        );
    }
}
