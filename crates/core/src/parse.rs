//! Textual metaquery syntax.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! metaquery := literal ("<-" | ":-") blit ("," blit)*
//! blit      := ["not"] literal          (negated literals: extension)
//! literal   := pred "(" arg ("," arg)* ")"
//! pred      := IDENT            (uppercase-initial = predicate variable,
//!                                lowercase-initial = relation symbol)
//! arg       := IDENT | "_"     (identifiers are ordinary variables;
//!                                "_" is a fresh mute variable)
//! ```
//!
//! Identifiers are `[A-Za-z][A-Za-z0-9_']*`. This matches the paper's
//! conventions: metaquery (4) is written `R(X,Z) <- P(X,Y), Q(Y,Z)`, and
//! the semi-acyclic example is `N(X) <- N(Y), e(X,Y)`.

use crate::ast::{Metaquery, MetaqueryBuilder};
use std::fmt;

/// A parse error with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

#[derive(Debug)]
struct RawLiteral {
    pred: String,
    args: Vec<Option<String>>, // None = mute "_"
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() => {
                self.pos += 1;
            }
            _ => return self.err("expected identifier"),
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii slice")
            .to_string())
    }

    fn literal(&mut self) -> Result<RawLiteral, ParseError> {
        self.skip_ws();
        let pred = self.ident()?;
        self.skip_ws();
        if !self.eat(b'(') {
            return self.err("expected '(' after predicate");
        }
        let mut args = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(b'_') {
                args.push(None);
            } else {
                args.push(Some(self.ident()?));
            }
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b')') {
                break;
            }
            return self.err("expected ',' or ')' in argument list");
        }
        Ok(RawLiteral { pred, args })
    }

    fn arrow(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.pos + 1 < self.input.len() {
            let two = &self.input[self.pos..self.pos + 2];
            if two == b"<-" || two == b":-" {
                self.pos += 2;
                return Ok(());
            }
        }
        self.err("expected '<-' or ':-' after head literal")
    }

    /// A body literal with an optional `not` prefix.
    fn body_literal(&mut self) -> Result<(bool, RawLiteral), ParseError> {
        self.skip_ws();
        // Lookahead for the keyword `not` followed by another identifier.
        let save = self.pos;
        if let Ok(word) = self.ident() {
            if word == "not" {
                self.skip_ws();
                // must be followed by a literal, not a '(' of a relation
                // actually named `not`
                if self.peek() != Some(b'(') {
                    return Ok((true, self.literal()?));
                }
            }
        }
        self.pos = save;
        Ok((false, self.literal()?))
    }

    fn metaquery(&mut self) -> Result<Metaquery, ParseError> {
        let head = self.literal()?;
        self.arrow()?;
        let mut body = vec![self.body_literal()?];
        loop {
            self.skip_ws();
            if self.eat(b',') {
                body.push(self.body_literal()?);
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.input.len() {
            // Allow a trailing period, as in the paper's notation.
            if self.eat(b'.') {
                self.skip_ws();
            }
            if self.pos != self.input.len() {
                return self.err("trailing input after metaquery");
            }
        }

        #[derive(Clone, Copy, PartialEq)]
        enum Place {
            Head,
            Body,
            NegBody,
        }
        let mut b = MetaqueryBuilder::new();
        let install = |b: &mut MetaqueryBuilder, raw: &RawLiteral, place: Place| {
            let args: Vec<_> = raw
                .args
                .iter()
                .map(|a| match a {
                    Some(name) => b.var(name),
                    None => b.fresh(),
                })
                .collect();
            let upper = raw.pred.as_bytes()[0].is_ascii_uppercase();
            if upper {
                let p = b.pred_var(&raw.pred);
                match place {
                    Place::Head => b.head_pattern(p, args),
                    Place::Body => b.body_pattern(p, args),
                    Place::NegBody => b.body_neg_pattern(p, args),
                };
            } else {
                match place {
                    Place::Head => b.head_atom(&raw.pred, args),
                    Place::Body => b.body_atom(&raw.pred, args),
                    Place::NegBody => b.body_neg_atom(&raw.pred, args),
                };
            }
        };
        install(&mut b, &head, Place::Head);
        for (negated, lit) in &body {
            install(
                &mut b,
                lit,
                if *negated {
                    Place::NegBody
                } else {
                    Place::Body
                },
            );
        }
        let mq = b.build();
        if mq.body.is_empty() {
            return self.err("body needs at least one positive literal");
        }
        Ok(mq)
    }
}

/// Parse a metaquery from the paper's surface syntax.
///
/// ```
/// use mq_core::parse::parse_metaquery;
/// let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
/// assert_eq!(mq.body_len(), 2);
/// assert!(mq.is_pure());
/// ```
pub fn parse_metaquery(input: &str) -> Result<Metaquery, ParseError> {
    Parser::new(input).metaquery()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pred;

    #[test]
    fn paper_metaquery_4() {
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        assert_eq!(mq.render(), "R(X,Z) <- P(X,Y), Q(Y,Z)");
        assert_eq!(mq.pred_vars().len(), 3);
        assert!(mq.is_pure());
    }

    #[test]
    fn datalog_arrow_and_period() {
        let mq = parse_metaquery("R(X,Z) :- P(X,Y), Q(Y,Z).").unwrap();
        assert_eq!(mq.body_len(), 2);
    }

    #[test]
    fn relation_symbols_are_lowercase() {
        let mq = parse_metaquery("N(X) <- N(Y), e(X,Y)").unwrap();
        assert!(mq.head.is_pattern());
        assert!(mq.body[0].is_pattern());
        assert!(!mq.body[1].is_pattern());
        match &mq.body[1].pred {
            Pred::Rel(name) => assert_eq!(name, "e"),
            Pred::Var(_) => panic!("e should be a relation symbol"),
        }
    }

    #[test]
    fn mute_variables_are_fresh_and_distinct() {
        let mq = parse_metaquery("P(X,_) <- Q(_,X)").unwrap();
        let vars = mq.ordinary_vars();
        assert_eq!(vars.len(), 3); // X plus two distinct mutes
    }

    #[test]
    fn shared_variables_are_shared() {
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        // Y in both body literals is the same variable
        assert_eq!(mq.body[0].args[1], mq.body[1].args[0]);
        // X in head and body literal 0 is the same
        assert_eq!(mq.head.args[0], mq.body[0].args[0]);
    }

    #[test]
    fn primes_in_identifiers() {
        let mq = parse_metaquery("P'(X,Y) <- c'(X,Y,Z,W)").unwrap();
        assert!(mq.head.is_pattern());
        assert!(!mq.body[0].is_pattern());
    }

    #[test]
    fn error_positions() {
        assert!(parse_metaquery("R(X,Z)").is_err());
        assert!(parse_metaquery("R(X,Z) <- ").is_err());
        assert!(parse_metaquery("R() <- P(X)").is_err());
        assert!(parse_metaquery("R(X) <- P(X) extra").is_err());
        assert!(parse_metaquery("1R(X) <- P(X)").is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_metaquery("R(X,Z)<-P(X,Y),Q(Y,Z)").unwrap();
        let b = parse_metaquery("  R( X , Z )  <-  P( X , Y ) , Q( Y , Z )  ").unwrap();
        assert_eq!(a.render(), b.render());
    }
}
