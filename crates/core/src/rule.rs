//! Instantiated Horn rules: the result of applying an instantiation `σ` to
//! a metaquery, `σ(MQ)` (§2.1).

use crate::ast::VarPool;
use mq_cq::Atom;
use mq_relation::{Database, Term};

/// An ordinary Horn rule `h(X) <- b1(X1), ..., bn(Xn)` over a database.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Positive body atoms.
    pub body: Vec<Atom>,
    /// Negated body atoms (negation extension; empty for paper rules).
    pub neg_body: Vec<Atom>,
    /// Names for the rule's variables (original plus padding mutes).
    pub var_names: VarPool,
}

impl Rule {
    /// All positive atoms, head first (the set `Ar` of Definition 3.19).
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> {
        std::iter::once(&self.head).chain(self.body.iter())
    }

    /// Whether the rule carries negated atoms.
    pub fn has_negation(&self) -> bool {
        !self.neg_body.is_empty()
    }

    /// Render as Datalog-style text against a database.
    pub fn render(&self, db: &Database) -> String {
        let atom = |a: &Atom| {
            let args: Vec<String> = a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => self.var_names.name(*v).to_string(),
                    Term::Const(c) => c.display(db.symbols()).to_string(),
                })
                .collect();
            format!("{}({})", db.relation(a.rel).name(), args.join(","))
        };
        let mut body: Vec<String> = self.body.iter().map(&atom).collect();
        body.extend(self.neg_body.iter().map(|a| format!("not {}", atom(a))));
        format!("{} <- {}", atom(&self.head), body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_relation::{ints, VarId};

    #[test]
    fn render_rule() {
        let mut db = Database::new();
        let e = db.add_relation("e", 2);
        db.insert(e, ints(&[1, 2]));
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let rule = Rule {
            head: Atom::vars_atom(e, &[x, y]),
            body: vec![Atom::vars_atom(e, &[y, x])],
            neg_body: vec![],
            var_names: pool,
        };
        assert_eq!(rule.render(&db), "e(X,Y) <- e(Y,X)");
        assert_eq!(rule.atoms().count(), 2);
        let _ = VarId(0); // silence unused import on some cfgs
    }
}
