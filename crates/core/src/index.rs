//! Plausibility indices (Definitions 2.5-2.7).
//!
//! For sets of atoms `R`, `S`, the *fraction of `R` in `S`* is
//!
//! ```text
//! R ↑ S = |π_att(R)( J(R) ⋈ J(S) )| / |J(R)|        (0 when numerator is 0)
//! ```
//!
//! and for a rule `r` with head atoms `h(r)` and body atoms `b(r)`:
//!
//! * confidence `cnf(r) = b(r) ↑ h(r)` — how valid the rule is;
//! * cover      `cvr(r) = h(r) ↑ b(r)` — how much of the head is implied;
//! * support    `sup(r) = max_{a ∈ b(r)} {a} ↑ b(r)` — how much some body
//!   relation participates in the body join.
//!
//! All values are exact rationals in `[0, 1]`.

use crate::rule::Rule;
use mq_cq::Atom;
use mq_relation::{Bindings, Database, Frac, Term, VarId};
use std::fmt;

/// Which plausibility index a problem instance uses (the set `I`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IndexKind {
    /// Support.
    Sup,
    /// Confidence.
    Cnf,
    /// Cover.
    Cvr,
}

impl IndexKind {
    /// All three indices, for sweeps.
    pub const ALL: [IndexKind; 3] = [IndexKind::Sup, IndexKind::Cnf, IndexKind::Cvr];
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKind::Sup => write!(f, "sup"),
            IndexKind::Cnf => write!(f, "cnf"),
            IndexKind::Cvr => write!(f, "cvr"),
        }
    }
}

/// All three index values of a rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IndexValues {
    /// Support.
    pub sup: Frac,
    /// Confidence.
    pub cnf: Frac,
    /// Cover.
    pub cvr: Frac,
}

impl IndexValues {
    /// Select one index by kind.
    pub fn get(&self, kind: IndexKind) -> Frac {
        match kind {
            IndexKind::Sup => self.sup,
            IndexKind::Cnf => self.cnf,
            IndexKind::Cvr => self.cvr,
        }
    }
}

/// Distinct variables across a set of atoms (`att(R)`).
fn att(atoms: &[&Atom]) -> Vec<VarId> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for a in atoms {
        for t in &a.terms {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
    }
    out
}

/// Natural join of a set of atoms over `db` (`J(R)` of Definition 2.6).
pub fn join_of(db: &Database, atoms: &[&Atom]) -> Bindings {
    let pairs: Vec<(&mq_relation::Relation, &[Term])> = atoms
        .iter()
        .map(|a| (db.relation(a.rel), a.terms.as_slice()))
        .collect();
    Bindings::join_all(&pairs)
}

/// The fraction `R ↑ S` of Definition 2.6.
pub fn fraction(db: &Database, r: &[&Atom], s: &[&Atom]) -> Frac {
    let jr = join_of(db, r);
    if jr.is_empty() {
        // |J(R)| = 0: the ratio is 0/0; the numerator is also 0, and the
        // definition sets the fraction to 0.
        return Frac::ZERO;
    }
    let js = join_of(db, s);
    let joint = jr.join(&js);
    let num = joint.count_distinct(&att(r)) as u64;
    Frac::ratio_or_zero(num, jr.len() as u64)
}

/// The body join of a rule, negation-aware: `J(b(r))` for the positive
/// atoms, antijoined by each negated atom (safe negation-as-failure; the
/// negation extension of §5's future work).
pub fn body_join(db: &Database, rule: &Rule) -> Bindings {
    let body: Vec<&Atom> = rule.body.iter().collect();
    let mut jb = join_of(db, &body);
    for n in &rule.neg_body {
        if jb.is_empty() {
            break;
        }
        let jn = Bindings::from_atom(db.relation(n.rel), &n.terms);
        jb = jb.antijoin(&jn);
    }
    jb
}

/// Confidence `cnf(r) = b(r) ↑ h(r)`.
pub fn confidence(db: &Database, rule: &Rule) -> Frac {
    if !rule.has_negation() {
        let body: Vec<&Atom> = rule.body.iter().collect();
        return fraction(db, &body, &[&rule.head]);
    }
    all_indices(db, rule).cnf
}

/// Cover `cvr(r) = h(r) ↑ b(r)`.
pub fn cover(db: &Database, rule: &Rule) -> Frac {
    if !rule.has_negation() {
        let body: Vec<&Atom> = rule.body.iter().collect();
        return fraction(db, &[&rule.head], &body);
    }
    all_indices(db, rule).cvr
}

/// Support `sup(r) = max_{a ∈ b(r)} {a} ↑ b(r)` (max over the positive
/// body atoms; the body join is negation-aware).
pub fn support(db: &Database, rule: &Rule) -> Frac {
    let jb = body_join(db, rule);
    let mut best = Frac::ZERO;
    for a in &rule.body {
        // J({a}) ⋈ J(b) = J(b) because a ∈ b, so the numerator is
        // |π_att(a)(J(b))|; the denominator is |J({a})|.
        let ja = Bindings::from_atom(db.relation(a.rel), &a.terms);
        if ja.is_empty() {
            continue;
        }
        let num = jb.count_distinct(&att(&[a])) as u64;
        let f = Frac::ratio_or_zero(num, ja.len() as u64);
        if f > best {
            best = f;
        }
    }
    best
}

/// Compute all three indices, sharing the (negation-aware) body join.
pub fn all_indices(db: &Database, rule: &Rule) -> IndexValues {
    let body: Vec<&Atom> = rule.body.iter().collect();
    let jb = body_join(db, rule);
    let jh = Bindings::from_atom(db.relation(rule.head.rel), &rule.head.terms);
    let joint = jb.join(&jh);

    let cnf = if jb.is_empty() {
        Frac::ZERO
    } else {
        Frac::ratio_or_zero(joint.count_distinct(&att(&body)) as u64, jb.len() as u64)
    };
    let cvr = if jh.is_empty() {
        Frac::ZERO
    } else {
        Frac::ratio_or_zero(
            joint.count_distinct(&att(&[&rule.head])) as u64,
            jh.len() as u64,
        )
    };
    let mut sup = Frac::ZERO;
    for a in &rule.body {
        let ja = Bindings::from_atom(db.relation(a.rel), &a.terms);
        if ja.is_empty() {
            continue;
        }
        let f = Frac::ratio_or_zero(jb.count_distinct(&att(&[a])) as u64, ja.len() as u64);
        if f > sup {
            sup = f;
        }
    }
    IndexValues { sup, cnf, cvr }
}

/// Compute one index by kind.
pub fn index_value(db: &Database, rule: &Rule, kind: IndexKind) -> Frac {
    match kind {
        IndexKind::Sup => support(db, rule),
        IndexKind::Cnf => confidence(db, rule),
        IndexKind::Cvr => cover(db, rule),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarPool;
    use mq_relation::ints;

    /// Build the rule `head_rel(head_args) <- body...` over fresh vars.
    fn rule(head: (mq_relation::RelId, &[u32]), body: &[(mq_relation::RelId, &[u32])]) -> Rule {
        let mut pool = VarPool::new();
        let var = |pool: &mut VarPool, i: u32| pool.var(&format!("V{i}"));
        let mk = |pool: &mut VarPool, (rel, args): (mq_relation::RelId, &[u32])| {
            let vars: Vec<VarId> = args.iter().map(|&i| var(pool, i)).collect();
            Atom::vars_atom(rel, &vars)
        };
        let h = mk(&mut pool, head);
        let b = body.iter().map(|&a| mk(&mut pool, a)).collect();
        Rule {
            head: h,
            body: b,
            neg_body: vec![],
            var_names: pool,
        }
    }

    /// The paper's §2.2 narrative for metaquery (2): out of all pairs (X,Z)
    /// satisfying the body, cnf measures the fraction also in the head.
    #[test]
    fn confidence_hand_example() {
        let mut db = Database::new();
        let citizen = db.add_relation("citizen", 2);
        let language = db.add_relation("language", 2);
        let speaks = db.add_relation("speaks", 2);
        // body join: (X,Y,Z) with citizen(X,Y), language(Y,Z)
        for (x, y) in [(1, 10), (2, 10), (3, 20)] {
            db.insert(citizen, ints(&[x, y]));
        }
        for (y, z) in [(10, 100), (20, 200)] {
            db.insert(language, ints(&[y, z]));
        }
        // body has 3 satisfying assignments; heads hold for 2 of them.
        db.insert(speaks, ints(&[1, 100]));
        db.insert(speaks, ints(&[3, 200]));
        let r = rule(
            (speaks, &[0, 2]),
            &[(citizen, &[0, 1]), (language, &[1, 2])],
        );
        assert_eq!(confidence(&db, &r), Frac::new(2, 3));
    }

    /// The paper's cover example: UsCa(X,Z) <- UsPt(X,H) scores cover 1
    /// when every first-attribute value of UsCa appears in UsPt.
    #[test]
    fn cover_paper_example_shape() {
        let mut db = Database::new();
        let usca = db.add_relation("UsCa", 2);
        let uspt = db.add_relation("UsPt", 2);
        for (u, c) in [(1, 7), (1, 8), (2, 7)] {
            db.insert(usca, ints(&[u, c]));
        }
        for (u, t) in [(1, 100), (1, 200), (2, 100)] {
            db.insert(uspt, ints(&[u, t]));
        }
        let r = rule((usca, &[0, 1]), &[(uspt, &[0, 2])]);
        assert_eq!(cover(&db, &r), Frac::ONE);
    }

    #[test]
    fn support_is_max_over_body_atoms() {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        let h = db.add_relation("h", 2);
        // p has 4 tuples, 2 participate; q has 2 tuples, both participate.
        for t in [(1, 2), (3, 4), (5, 6), (7, 8)] {
            db.insert(p, ints(&[t.0, t.1]));
        }
        for t in [(2, 9), (4, 9)] {
            db.insert(q, ints(&[t.0, t.1]));
        }
        db.insert(h, ints(&[1, 9]));
        let r = rule((h, &[0, 2]), &[(p, &[0, 1]), (q, &[1, 2])]);
        // {p} ↑ b = 2/4, {q} ↑ b = 2/2 → sup = 1
        assert_eq!(support(&db, &r), Frac::ONE);
    }

    #[test]
    fn empty_body_join_gives_zero_everything() {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        let h = db.add_relation("h", 2);
        db.insert(p, ints(&[1, 2]));
        db.insert(q, ints(&[9, 9])); // no join partner
        db.insert(h, ints(&[1, 9]));
        let r = rule((h, &[0, 2]), &[(p, &[0, 1]), (q, &[1, 2])]);
        let iv = all_indices(&db, &r);
        assert_eq!(iv.cnf, Frac::ZERO);
        assert_eq!(iv.cvr, Frac::ZERO);
        assert_eq!(iv.sup, Frac::ZERO);
    }

    #[test]
    fn all_indices_matches_individual_functions() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let mut db = Database::new();
            let p = db.add_relation("p", 2);
            let q = db.add_relation("q", 2);
            let h = db.add_relation("h", 2);
            for _ in 0..10 {
                db.insert(p, ints(&[rng.gen_range(0..4), rng.gen_range(0..4)]));
                db.insert(q, ints(&[rng.gen_range(0..4), rng.gen_range(0..4)]));
                db.insert(h, ints(&[rng.gen_range(0..4), rng.gen_range(0..4)]));
            }
            let r = rule((h, &[0, 2]), &[(p, &[0, 1]), (q, &[1, 2])]);
            let iv = all_indices(&db, &r);
            assert_eq!(iv.cnf, confidence(&db, &r));
            assert_eq!(iv.cvr, cover(&db, &r));
            assert_eq!(iv.sup, support(&db, &r));
            assert!(iv.cnf.is_probability());
            assert!(iv.cvr.is_probability());
            assert!(iv.sup.is_probability());
        }
    }

    #[test]
    fn index_value_dispatch() {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        db.insert(p, ints(&[1, 2]));
        let r = rule((p, &[0, 1]), &[(p, &[0, 1])]);
        assert_eq!(index_value(&db, &r, IndexKind::Cnf), Frac::ONE);
        assert_eq!(index_value(&db, &r, IndexKind::Cvr), Frac::ONE);
        assert_eq!(index_value(&db, &r, IndexKind::Sup), Frac::ONE);
    }
}
