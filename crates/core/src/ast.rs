//! Metaquery abstract syntax (§2.1).
//!
//! A metaquery is a second-order Horn template `T <- L1, ..., Lm` whose
//! literal schemes `Q(Y1, ..., Yn)` have either a relation symbol or a
//! *predicate variable* in predicate position. Literal schemes with a
//! predicate variable are called *relation patterns*.

use mq_relation::VarId;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A predicate (second-order) variable, interned per metaquery.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredVarId(pub u32);

impl fmt::Debug for PredVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The predicate position of a literal scheme.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Pred {
    /// An ordinary relation symbol (the scheme is an *atom*).
    Rel(String),
    /// A predicate variable (the scheme is a *relation pattern*).
    Var(PredVarId),
}

/// A literal scheme `Q(Y1, ..., Yn)`; arguments are ordinary variables.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LiteralScheme {
    /// Predicate position.
    pub pred: Pred,
    /// Ordinary-variable argument list (may repeat variables).
    pub args: Vec<VarId>,
}

impl LiteralScheme {
    /// Whether this scheme is a relation pattern (predicate variable).
    pub fn is_pattern(&self) -> bool {
        matches!(self.pred, Pred::Var(_))
    }

    /// The scheme's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Distinct ordinary variables, in first-occurrence order.
    pub fn vars(&self) -> Vec<VarId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for &v in &self.args {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Distinct ordinary variables as a set (`varo` of Definition 3.31).
    pub fn var_set(&self) -> BTreeSet<VarId> {
        self.args.iter().copied().collect()
    }
}

/// Interner for ordinary-variable names; mute variables (`_`) get unique
/// ids and display as `_k`.
#[derive(Clone, Debug, Default)]
pub struct VarPool {
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl VarPool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a named variable.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        v
    }

    /// Allocate a fresh (mute) variable, guaranteed distinct from all
    /// existing variables of this pool.
    pub fn fresh(&mut self) -> VarId {
        let v = VarId(self.names.len() as u32);
        self.names.push(format!("_{}", v.0));
        v
    }

    /// The display name of `v`.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0 as usize]
    }

    /// Look up a named variable without interning.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Number of variables allocated.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables were allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A metaquery `T <- L1, ..., Lm [, not N1, ..., not Nk]`.
///
/// The positive part is equation (3) of the paper; `neg_body` is the
/// negation extension the paper's conclusion (§5) proposes as future
/// work: negated literal schemes, evaluated with safe
/// negation-as-failure semantics (every variable of a negated scheme
/// must occur in a positive body scheme; the body join is the positive
/// join antijoined by each instantiated negated atom).
#[derive(Clone, Debug)]
pub struct Metaquery {
    /// The head literal scheme `T`.
    pub head: LiteralScheme,
    /// The positive body literal schemes `L1, ..., Lm`.
    pub body: Vec<LiteralScheme>,
    /// The negated body literal schemes (empty for pure paper-metaqueries).
    pub neg_body: Vec<LiteralScheme>,
    /// Ordinary-variable interner (owns mute variables too).
    pub vars: VarPool,
    /// Names of predicate variables, indexed by [`PredVarId`].
    pub pred_var_names: Vec<String>,
}

impl Metaquery {
    /// All literal schemes (`ls(MQ)`), head first, negated schemes last.
    pub fn literal_schemes(&self) -> impl Iterator<Item = &LiteralScheme> {
        std::iter::once(&self.head)
            .chain(self.body.iter())
            .chain(self.neg_body.iter())
    }

    /// Whether the metaquery uses the negation extension.
    pub fn has_negation(&self) -> bool {
        !self.neg_body.is_empty()
    }

    /// Safety of the negation extension: every ordinary variable of a
    /// negated scheme occurs in some positive body scheme. (Trivially
    /// true without negation.)
    pub fn is_safe(&self) -> bool {
        use std::collections::BTreeSet as Set;
        let positive: Set<VarId> = self
            .body
            .iter()
            .flat_map(|l| l.args.iter().copied())
            .collect();
        self.neg_body
            .iter()
            .all(|l| l.args.iter().all(|v| positive.contains(v)))
    }

    /// The relation patterns (`rep(MQ)`), head first, then positive body
    /// patterns, then negated body patterns, with their position:
    /// `None` for the head, `Some(i)` for (positive or negated) body
    /// literal `i` in its respective list.
    pub fn relation_patterns(&self) -> Vec<(Option<usize>, &LiteralScheme)> {
        let mut out = Vec::new();
        if self.head.is_pattern() {
            out.push((None, &self.head));
        }
        for (i, l) in self.body.iter().enumerate() {
            if l.is_pattern() {
                out.push((Some(i), l));
            }
        }
        for (i, l) in self.neg_body.iter().enumerate() {
            if l.is_pattern() {
                out.push((Some(self.body.len() + i), l));
            }
        }
        out
    }

    /// The set of predicate variables (`pv(MQ)`).
    pub fn pred_vars(&self) -> BTreeSet<PredVarId> {
        self.literal_schemes()
            .filter_map(|l| match l.pred {
                Pred::Var(p) => Some(p),
                Pred::Rel(_) => None,
            })
            .collect()
    }

    /// All ordinary variables (`varo(MQ)`), in first-occurrence order.
    pub fn ordinary_vars(&self) -> Vec<VarId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for l in self.literal_schemes() {
            for &v in &l.args {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// A metaquery is *pure* if any two relation patterns sharing a
    /// predicate variable have the same arity (§2.1). Type-0 and type-1
    /// instantiations are only defined for pure metaqueries.
    pub fn is_pure(&self) -> bool {
        let mut arity: HashMap<PredVarId, usize> = HashMap::new();
        for l in self.literal_schemes() {
            if let Pred::Var(p) = l.pred {
                match arity.get(&p) {
                    Some(&a) if a != l.arity() => return false,
                    Some(_) => {}
                    None => {
                        arity.insert(p, l.arity());
                    }
                }
            }
        }
        true
    }

    /// Number of body literals `m`.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Render back to the paper's surface syntax.
    pub fn render(&self) -> String {
        let lit = |l: &LiteralScheme| {
            let pred = match &l.pred {
                Pred::Rel(name) => name.clone(),
                Pred::Var(p) => self.pred_var_names[p.0 as usize].clone(),
            };
            let args: Vec<&str> = l.args.iter().map(|&v| self.vars.name(v)).collect();
            format!("{}({})", pred, args.join(","))
        };
        let mut body: Vec<String> = self.body.iter().map(&lit).collect();
        body.extend(self.neg_body.iter().map(|l| format!("not {}", lit(l))));
        format!("{} <- {}", lit(&self.head), body.join(", "))
    }
}

impl fmt::Display for Metaquery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Builder for constructing metaqueries programmatically (reductions build
/// their metaqueries this way rather than via the parser).
#[derive(Clone, Debug, Default)]
pub struct MetaqueryBuilder {
    vars: VarPool,
    pred_var_names: Vec<String>,
    pred_by_name: HashMap<String, PredVarId>,
    head: Option<LiteralScheme>,
    body: Vec<LiteralScheme>,
    neg_body: Vec<LiteralScheme>,
}

impl MetaqueryBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an ordinary variable by name.
    pub fn var(&mut self, name: &str) -> VarId {
        self.vars.var(name)
    }

    /// Allocate a mute variable.
    pub fn fresh(&mut self) -> VarId {
        self.vars.fresh()
    }

    /// Intern a predicate variable by name.
    pub fn pred_var(&mut self, name: &str) -> PredVarId {
        if let Some(&p) = self.pred_by_name.get(name) {
            return p;
        }
        let p = PredVarId(self.pred_var_names.len() as u32);
        self.pred_var_names.push(name.to_string());
        self.pred_by_name.insert(name.to_string(), p);
        p
    }

    /// Set the head to a relation pattern.
    pub fn head_pattern(&mut self, p: PredVarId, args: Vec<VarId>) -> &mut Self {
        self.head = Some(LiteralScheme {
            pred: Pred::Var(p),
            args,
        });
        self
    }

    /// Set the head to an ordinary atom.
    pub fn head_atom(&mut self, rel: &str, args: Vec<VarId>) -> &mut Self {
        self.head = Some(LiteralScheme {
            pred: Pred::Rel(rel.to_string()),
            args,
        });
        self
    }

    /// Append a relation pattern to the body.
    pub fn body_pattern(&mut self, p: PredVarId, args: Vec<VarId>) -> &mut Self {
        self.body.push(LiteralScheme {
            pred: Pred::Var(p),
            args,
        });
        self
    }

    /// Append an ordinary atom to the body.
    pub fn body_atom(&mut self, rel: &str, args: Vec<VarId>) -> &mut Self {
        self.body.push(LiteralScheme {
            pred: Pred::Rel(rel.to_string()),
            args,
        });
        self
    }

    /// Append a **negated** relation pattern to the body (extension).
    pub fn body_neg_pattern(&mut self, p: PredVarId, args: Vec<VarId>) -> &mut Self {
        self.neg_body.push(LiteralScheme {
            pred: Pred::Var(p),
            args,
        });
        self
    }

    /// Append a **negated** ordinary atom to the body (extension).
    pub fn body_neg_atom(&mut self, rel: &str, args: Vec<VarId>) -> &mut Self {
        self.neg_body.push(LiteralScheme {
            pred: Pred::Rel(rel.to_string()),
            args,
        });
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if no head was set.
    pub fn build(self) -> Metaquery {
        Metaquery {
            head: self.head.expect("metaquery needs a head"),
            body: self.body,
            neg_body: self.neg_body,
            vars: self.vars,
            pred_var_names: self.pred_var_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_mq4() -> Metaquery {
        // R(X,Z) <- P(X,Y), Q(Y,Z)
        let mut b = MetaqueryBuilder::new();
        let (x, y, z) = (b.var("X"), b.var("Y"), b.var("Z"));
        let (r, p, q) = (b.pred_var("R"), b.pred_var("P"), b.pred_var("Q"));
        b.head_pattern(r, vec![x, z]);
        b.body_pattern(p, vec![x, y]);
        b.body_pattern(q, vec![y, z]);
        b.build()
    }

    #[test]
    fn accessors() {
        let mq = paper_mq4();
        assert_eq!(mq.body_len(), 2);
        assert_eq!(mq.relation_patterns().len(), 3);
        assert_eq!(mq.pred_vars().len(), 3);
        assert_eq!(mq.ordinary_vars().len(), 3);
        assert!(mq.is_pure());
        assert_eq!(mq.render(), "R(X,Z) <- P(X,Y), Q(Y,Z)");
    }

    #[test]
    fn impure_detected() {
        let mut b = MetaqueryBuilder::new();
        let (x, y) = (b.var("X"), b.var("Y"));
        let p = b.pred_var("P");
        b.head_pattern(p, vec![x, y]);
        b.body_pattern(p, vec![x]); // same pred var, different arity
        let mq = b.build();
        assert!(!mq.is_pure());
    }

    #[test]
    fn mixed_atoms_and_patterns() {
        let mut b = MetaqueryBuilder::new();
        let (x, y) = (b.var("X"), b.var("Y"));
        let n = b.pred_var("N");
        b.head_pattern(n, vec![x]);
        b.body_pattern(n, vec![y]);
        b.body_atom("e", vec![x, y]);
        let mq = b.build();
        assert_eq!(mq.relation_patterns().len(), 2);
        assert_eq!(mq.render(), "N(X) <- N(Y), e(X,Y)");
        assert!(mq.is_pure());
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut pool = VarPool::new();
        let a = pool.var("X");
        let f1 = pool.fresh();
        let f2 = pool.fresh();
        assert_ne!(f1, f2);
        assert_ne!(a, f1);
        assert!(pool.name(f1).starts_with('_'));
    }

    #[test]
    fn literal_scheme_vars_dedup() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let l = LiteralScheme {
            pred: Pred::Rel("p".into()),
            args: vec![x, y, x],
        };
        assert_eq!(l.vars(), vec![x, y]);
        assert_eq!(l.var_set().len(), 2);
        assert_eq!(l.arity(), 3);
    }
}
