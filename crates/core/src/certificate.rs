//! Executable NP certificates (Theorems 3.21, 3.24, 3.27).
//!
//! The membership proofs of §3.3 exhibit *succinct certificates*:
//!
//! * for `⟨DB, MQ, I, 0, T⟩` — an instantiation plus a single ground
//!   instance of the certifying set (Proposition 3.20 / Theorem 3.21);
//! * for `⟨DB, MQ, cvr/sup, k, T⟩` — an instantiation plus
//!   `⌊k·den⌋ + 1` substitutions, pairwise distinct on the counted
//!   attribute set (Theorem 3.24);
//! * for `⟨DB, MQ, cnf, k, T⟩` — an instantiation plus claimed counts
//!   `a = |A|`, `b = |B|` whose verification needs a `#BCQ` oracle
//!   (Theorem 3.27: the problem is in `NP^PP = NP^#P`).
//!
//! This module implements the certificates as data plus polynomial-time
//! verifiers (`verify_*`), and extractors that produce them from a YES
//! instance. They make the NP-membership arguments *runnable*: tests
//! check `extract → verify` round trips and that tampered certificates
//! are rejected.

use crate::ast::Metaquery;
use crate::index::IndexKind;
use crate::instantiate::{apply_instantiation, InstError, Instantiation};
use crate::rule::Rule;
use mq_cq::{count_homomorphisms, Atom, Cq};
use mq_relation::{Bindings, Database, Frac, Term, Tuple, Value, VarId};
use std::collections::HashSet;

/// A set of witness substitutions: assignments of the rule's variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witnesses {
    /// The variables assigned by each row.
    pub vars: Vec<VarId>,
    /// One row per substitution.
    pub rows: Vec<Tuple>,
}

/// Certificate for `⟨DB, MQ, cvr, k, T⟩` and `⟨DB, MQ, sup, k, T⟩`
/// (Theorem 3.24), which also covers the `k = 0` problems (one witness).
#[derive(Clone, Debug)]
pub struct ThresholdCertificate {
    /// The guessed instantiation `σ`.
    pub inst: Instantiation,
    /// Which index the certificate is for (`Cvr` or `Sup`).
    pub kind: IndexKind,
    /// For support: the body-atom index `j` with `|Aj|/|Bj| > k`.
    pub sup_atom: Option<usize>,
    /// `⌊k·den⌋ + 1` substitutions, distinct on the counted attributes.
    pub witnesses: Witnesses,
}

/// Certificate for `⟨DB, MQ, cnf, k, T⟩` (Theorem 3.27): claimed counts,
/// checkable with a `#BCQ` oracle.
#[derive(Clone, Debug)]
pub struct CnfCertificate {
    /// The guessed instantiation `σ`.
    pub inst: Instantiation,
    /// Claimed `|A|`: tuples of the body join that extend to the head.
    pub a: u128,
    /// Claimed `|B|`: tuples of the body join.
    pub b: u128,
}

/// Check a single witness substitution against a set of atoms: every atom,
/// after substituting, must be a tuple of its relation. Polynomial time.
fn witness_satisfies(db: &Database, atoms: &[&Atom], vars: &[VarId], row: &[Value]) -> bool {
    let lookup = |v: VarId| -> Option<Value> { vars.iter().position(|&u| u == v).map(|i| row[i]) };
    for atom in atoms {
        let mut ground = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            match t {
                Term::Const(c) => ground.push(*c),
                Term::Var(v) => match lookup(*v) {
                    Some(val) => ground.push(val),
                    None => return false, // witness must assign every var
                },
            }
        }
        if !db.relation(atom.rel).contains(&ground) {
            return false;
        }
    }
    true
}

/// Distinct variables of an atom.
fn atom_vars(atom: &Atom) -> Vec<VarId> {
    mq_relation::distinct_vars(&atom.terms)
}

/// Verify a [`ThresholdCertificate`] in polynomial time: checks that
/// `I(σ(MQ)) > k` is *witnessed* (it does not re-compute the index).
pub fn verify_threshold(
    db: &Database,
    mq: &Metaquery,
    k: Frac,
    cert: &ThresholdCertificate,
) -> Result<bool, InstError> {
    let rule = apply_instantiation(db, mq, &cert.inst)?;
    let (den, counted_vars, atoms): (u64, Vec<VarId>, Vec<&Atom>) = match cert.kind {
        IndexKind::Cvr => {
            // den = |J(h)|; witnesses satisfy head ∧ body, distinct on
            // att(head).
            let jh = Bindings::from_atom(db.relation(rule.head.rel), &rule.head.terms);
            let atoms: Vec<&Atom> = rule.atoms().collect();
            (jh.len() as u64, atom_vars(&rule.head), atoms)
        }
        IndexKind::Sup => {
            let j = match cert.sup_atom {
                Some(j) if j < rule.body.len() => j,
                _ => return Ok(false),
            };
            let aj = &rule.body[j];
            let ja = Bindings::from_atom(db.relation(aj.rel), &aj.terms);
            let atoms: Vec<&Atom> = rule.body.iter().collect();
            (ja.len() as u64, atom_vars(aj), atoms)
        }
        IndexKind::Cnf => return Ok(false), // use verify_cnf_with_oracle
    };
    let needed = k.floor_mul(den) + 1;
    if (cert.witnesses.rows.len() as u64) < needed {
        return Ok(false);
    }
    if den == 0 {
        // index is 0 by definition; nothing exceeds k ≥ 0 strictly
        return Ok(false);
    }
    // Each witness satisfies the atom set; witnesses pairwise distinct on
    // the counted attributes.
    let positions: Vec<usize> = counted_vars
        .iter()
        .filter_map(|&v| cert.witnesses.vars.iter().position(|&u| u == v))
        .collect();
    if positions.len() != counted_vars.len() {
        return Ok(false);
    }
    let mut seen: HashSet<Tuple> = HashSet::new();
    for row in &cert.witnesses.rows {
        if row.len() != cert.witnesses.vars.len() {
            return Ok(false);
        }
        if !witness_satisfies(db, &atoms, &cert.witnesses.vars, row) {
            return Ok(false);
        }
        let key: Tuple = positions.iter().map(|&p| row[p]).collect();
        if !seen.insert(key) {
            return Ok(false); // not distinct on counted attributes
        }
    }
    Ok(true)
}

/// Extract a [`ThresholdCertificate`] from a YES instance, or `None` for a
/// NO instance. (The extractor plays the role of the NP guess.)
pub fn extract_threshold(
    db: &Database,
    mq: &Metaquery,
    ty: crate::instantiate::InstType,
    kind: IndexKind,
    k: Frac,
) -> Result<Option<ThresholdCertificate>, InstError> {
    use std::ops::ControlFlow;
    let mut result = None;
    crate::instantiate::for_each_instantiation(db, mq, ty, |inst| {
        let rule = apply_instantiation(db, mq, inst).expect("valid inst");
        if let Some(cert) = try_build(db, &rule, kind, k) {
            result = Some(ThresholdCertificate {
                inst: inst.clone(),
                kind,
                sup_atom: cert.0,
                witnesses: cert.1,
            });
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })?;
    Ok(result)
}

fn try_build(
    db: &Database,
    rule: &Rule,
    kind: IndexKind,
    k: Frac,
) -> Option<(Option<usize>, Witnesses)> {
    match kind {
        IndexKind::Cvr => {
            let jh = Bindings::from_atom(db.relation(rule.head.rel), &rule.head.terms);
            if jh.is_empty() {
                return None;
            }
            let needed = k.floor_mul(jh.len() as u64) + 1;
            let all: Vec<&Atom> = rule.atoms().collect();
            let joint = crate::index::join_of(db, &all);
            let witnesses = pick_distinct(&joint, &atom_vars(&rule.head), needed)?;
            Some((None, witnesses))
        }
        IndexKind::Sup => {
            let body: Vec<&Atom> = rule.body.iter().collect();
            let jb = crate::index::join_of(db, &body);
            for (j, aj) in rule.body.iter().enumerate() {
                let ja = Bindings::from_atom(db.relation(aj.rel), &aj.terms);
                if ja.is_empty() {
                    continue;
                }
                let needed = k.floor_mul(ja.len() as u64) + 1;
                if let Some(witnesses) = pick_distinct(&jb, &atom_vars(aj), needed) {
                    return Some((Some(j), witnesses));
                }
            }
            None
        }
        IndexKind::Cnf => None,
    }
}

/// Pick `needed` rows of `joint` pairwise distinct on `key_vars`.
fn pick_distinct(joint: &Bindings, key_vars: &[VarId], needed: u64) -> Option<Witnesses> {
    let positions: Vec<usize> = key_vars.iter().filter_map(|&v| joint.position(v)).collect();
    if positions.len() != key_vars.len() {
        return None;
    }
    let mut seen: HashSet<Tuple> = HashSet::new();
    let mut rows = Vec::new();
    for row in joint.rows() {
        let key: Tuple = positions.iter().map(|&p| row[p]).collect();
        if seen.insert(key) {
            rows.push(row.clone());
            if rows.len() as u64 == needed {
                return Some(Witnesses {
                    vars: joint.vars().to_vec(),
                    rows,
                });
            }
        }
    }
    None
}

/// Verify a [`CnfCertificate`] using a `#BCQ` oracle (Theorem 3.27's
/// `NP^PP` membership): the claimed counts are checked against exact
/// counting, then `a > ⌊k·b⌋` decides. The two oracle calls are the only
/// super-polynomial work, mirroring the complexity-theoretic structure.
pub fn verify_cnf_with_oracle(
    db: &Database,
    mq: &Metaquery,
    k: Frac,
    cert: &CnfCertificate,
) -> Result<bool, InstError> {
    let rule = apply_instantiation(db, mq, &cert.inst)?;
    // Oracle call 1: |B| = #BCQ(body).
    let b = count_homomorphisms(db, &Cq::new(rule.body.clone()));
    if b != cert.b {
        return Ok(false);
    }
    // Oracle call 2: |A| = number of body tuples extending to the head.
    // Counted over att(body): body assignments with a matching head tuple.
    let body: Vec<&Atom> = rule.body.iter().collect();
    let jb = crate::index::join_of(db, &body);
    let jh = Bindings::from_atom(db.relation(rule.head.rel), &rule.head.terms);
    let a = jb.semijoin(&jh).len() as u128;
    if a != cert.a {
        return Ok(false);
    }
    if b == 0 {
        return Ok(false);
    }
    // cnf = a/b > k  ⟺  a·k.den > k.num·b
    let lhs = cert.a * k.den() as u128;
    let rhs = k.num() as u128 * cert.b;
    Ok(lhs > rhs)
}

/// Extract a [`CnfCertificate`] from a YES instance.
pub fn extract_cnf(
    db: &Database,
    mq: &Metaquery,
    ty: crate::instantiate::InstType,
    k: Frac,
) -> Result<Option<CnfCertificate>, InstError> {
    use std::ops::ControlFlow;
    let mut result = None;
    crate::instantiate::for_each_instantiation(db, mq, ty, |inst| {
        let rule = apply_instantiation(db, mq, inst).expect("valid inst");
        let body: Vec<&Atom> = rule.body.iter().collect();
        let jb = crate::index::join_of(db, &body);
        let b = jb.len() as u128;
        if b == 0 {
            return ControlFlow::Continue(());
        }
        let jh = Bindings::from_atom(db.relation(rule.head.rel), &rule.head.terms);
        let a = jb.semijoin(&jh).len() as u128;
        if a * k.den() as u128 > k.num() as u128 * b {
            result = Some(CnfCertificate {
                inst: inst.clone(),
                a,
                b,
            });
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{naive, MqProblem};
    use crate::instantiate::InstType;
    use crate::parse::parse_metaquery;
    use mq_relation::ints;
    use rand::prelude::*;

    fn random_db(rng: &mut StdRng, rows: usize, dom: i64) -> Database {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        for _ in 0..rows {
            db.insert(p, ints(&[rng.gen_range(0..dom), rng.gen_range(0..dom)]));
            db.insert(q, ints(&[rng.gen_range(0..dom), rng.gen_range(0..dom)]));
        }
        db
    }

    #[test]
    fn extract_verify_roundtrip_cvr_sup() {
        let mut rng = StdRng::seed_from_u64(21);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        for _ in 0..10 {
            let db = random_db(&mut rng, 10, 4);
            for kind in [IndexKind::Cvr, IndexKind::Sup] {
                for k in [Frac::ZERO, Frac::new(1, 4), Frac::new(1, 2)] {
                    let cert = extract_threshold(&db, &mq, InstType::Zero, kind, k).unwrap();
                    let is_yes = naive::decide(
                        &db,
                        &mq,
                        MqProblem {
                            index: kind,
                            threshold: k,
                            ty: InstType::Zero,
                        },
                    )
                    .unwrap();
                    assert_eq!(cert.is_some(), is_yes, "{kind} k={k}");
                    if let Some(cert) = cert {
                        assert!(verify_threshold(&db, &mq, k, &cert).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn tampered_certificates_rejected() {
        let mut rng = StdRng::seed_from_u64(22);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let db = random_db(&mut rng, 12, 3);
        let k = Frac::new(1, 4);
        let cert = extract_threshold(&db, &mq, InstType::Zero, IndexKind::Cvr, k)
            .unwrap()
            .expect("dense db should have an answer");
        // Drop a witness: too few.
        let mut fewer = cert.clone();
        fewer.witnesses.rows.pop();
        assert!(!verify_threshold(&db, &mq, k, &fewer).unwrap());
        // Duplicate a witness: not distinct.
        let mut dup = cert.clone();
        let first = dup.witnesses.rows[0].clone();
        let last = dup.witnesses.rows.len() - 1;
        dup.witnesses.rows[last] = first;
        assert!(!verify_threshold(&db, &mq, k, &dup).unwrap());
        // Corrupt a value: fails satisfaction (or distinctness).
        let mut bad = cert.clone();
        bad.witnesses.rows[0] = bad.witnesses.rows[0]
            .iter()
            .map(|_| Value::Int(-77))
            .collect();
        assert!(!verify_threshold(&db, &mq, k, &bad).unwrap());
    }

    #[test]
    fn cnf_certificate_oracle_roundtrip() {
        let mut rng = StdRng::seed_from_u64(23);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        for _ in 0..8 {
            let db = random_db(&mut rng, 8, 4);
            for k in [Frac::ZERO, Frac::new(1, 3)] {
                let cert = extract_cnf(&db, &mq, InstType::Zero, k).unwrap();
                let is_yes = naive::decide(
                    &db,
                    &mq,
                    MqProblem {
                        index: IndexKind::Cnf,
                        threshold: k,
                        ty: InstType::Zero,
                    },
                )
                .unwrap();
                assert_eq!(cert.is_some(), is_yes, "cnf k={k}");
                if let Some(cert) = cert {
                    assert!(verify_cnf_with_oracle(&db, &mq, k, &cert).unwrap());
                    // Tampered counts must be rejected.
                    let mut bad = cert.clone();
                    bad.a += 1;
                    assert!(!verify_cnf_with_oracle(&db, &mq, k, &bad).unwrap());
                }
            }
        }
    }
}
