//! The paper's §4 cost model, as data.
//!
//! The end of §4 analyzes `findRules` in six parameters: `n` relations in
//! `DB`, `d` = size of the largest relation, `b` = maximum relation
//! arity, `a` = maximum relation-pattern arity, `m` = number of relation
//! patterns in `MQ`, and `c` = hypertree width of `body(MQ)`. The
//! support phase costs `n^(m-1) · d^c · log d` steps for types 0/1 and
//! `(n·b^a)^(m-1) · d^c · log d` for type 2; the cover/confidence search
//! adds `(n·d)^m` resp. `(n·b^a·d)^m`.
//!
//! [`CostModel`] extracts the parameters from a concrete `(DB, MQ)` pair
//! and evaluates the bounds, and [`CostModel::instantiation_bound`] gives
//! a bound on the number of instantiations that is *validated against
//! the actual enumeration* in this module's tests.

use crate::ast::Metaquery;
use crate::engine::find_rules::body_decomposition;
use crate::instantiate::InstType;
use mq_relation::{Database, VarId};
use std::cmp::Ordering;

/// The six parameters of the §4 analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Number of relations in the database (`n`).
    pub n: usize,
    /// Size of the largest relation (`d`).
    pub d: usize,
    /// Maximum arity of any database relation (`b`).
    pub b: usize,
    /// Maximum arity of any relation pattern in the metaquery (`a`).
    pub a: usize,
    /// Number of relation patterns of the metaquery (`m`).
    pub m: usize,
    /// Hypertree width of `body(MQ)` (`c`).
    pub c: usize,
}

fn factorial(k: usize) -> f64 {
    (1..=k).map(|i| i as f64).product()
}

impl CostModel {
    /// Extract the parameters from a database and metaquery.
    pub fn of(db: &Database, mq: &Metaquery) -> CostModel {
        let a = mq
            .relation_patterns()
            .iter()
            .map(|(_, l)| l.arity())
            .max()
            .unwrap_or(0);
        CostModel {
            n: db.num_relations(),
            d: db.max_relation_size(),
            b: db.max_arity(),
            a,
            m: mq.relation_patterns().len(),
            c: body_decomposition(mq).width,
        }
    }

    /// Per-pattern choice bound: how many `(relation, argument map)`
    /// candidates one pattern has under `ty`. The paper folds the
    /// (constant) permutation factor into the `O(·)`; we keep it so the
    /// bound actually dominates the enumeration.
    pub fn per_pattern_choices(&self, ty: InstType) -> f64 {
        let n = self.n as f64;
        match ty {
            InstType::Zero => n,
            InstType::One => n * factorial(self.a),
            InstType::Two => {
                // arrangements of a pattern's args into b positions:
                // b!/(b-a)!, at most b^a — the paper uses b^a.
                n * (self.b as f64).powi(self.a as i32)
            }
        }
    }

    /// Bound on the total number of type-`ty` instantiations: the
    /// per-pattern choices raised to the number of patterns.
    pub fn instantiation_bound(&self, ty: InstType) -> f64 {
        self.per_pattern_choices(ty).powi(self.m as i32)
    }

    /// §4: steps to find all high-support body instantiations —
    /// `n^(m-1) · d^c · log d` for types 0/1, with `n` replaced by
    /// `n·b^a` for type 2.
    pub fn support_phase_steps(&self, ty: InstType) -> f64 {
        let base = match ty {
            InstType::Zero | InstType::One => self.n as f64,
            InstType::Two => self.n as f64 * (self.b as f64).powi(self.a as i32),
        };
        let d = self.d.max(2) as f64;
        base.powi(self.m.saturating_sub(1) as i32) * d.powf(self.c as f64) * d.ln()
    }

    /// §4: additional steps for the cover/confidence search —
    /// `(n·d)^m` for types 0/1, `(n·b^a·d)^m` for type 2.
    pub fn head_phase_steps(&self, ty: InstType) -> f64 {
        let base = match ty {
            InstType::Zero | InstType::One => self.n as f64 * self.d as f64,
            InstType::Two => self.n as f64 * (self.b as f64).powi(self.a as i32) * self.d as f64,
        };
        base.powi(self.m as i32)
    }

    /// Total step bound for one `findRules` run.
    pub fn total_steps(&self, ty: InstType) -> f64 {
        self.support_phase_steps(ty) + self.head_phase_steps(ty)
    }
}

/// Per-atom statistics consumed by [`plan_join_order`]: the instantiated
/// atom's cardinality and its distinct variables.
#[derive(Clone, Debug)]
pub struct JoinAtomStats {
    /// Number of tuples of the instantiated atom.
    pub len: usize,
    /// Its distinct variables (any order).
    pub vars: Vec<VarId>,
}

/// Greedy cost-guided join order for a multi-atom join (the λ label of one
/// hypertree vertex).
///
/// Starts from the smallest atom, then repeatedly appends the *connected*
/// atom — one sharing at least one already-bound variable — with the
/// smallest `expansion(atom, shared_vars)` estimate. For hash joins the
/// natural estimate is the atom's average group size on the shared
/// columns (`len / distinct_keys`, see `Bindings::distinct_keys`): the
/// expected number of rows each probe row fans out into. Atoms sharing no
/// bound variable rank after every connected one and are only picked
/// (smallest first) when a cross product is unavoidable.
///
/// This is the fix for the width-2 cycle slowdown: a completed
/// decomposition routinely labels a vertex with variable-disjoint atom
/// pairs, and folding them in raw λ order materializes a `d²` cross
/// product that the remaining atoms then shrink back down.
///
/// Deterministic: ties break on `(len, index)`, so planned searches are
/// reproducible across runs and across parallel workers.
pub fn plan_join_order(
    stats: &[JoinAtomStats],
    mut expansion: impl FnMut(usize, &[VarId]) -> f64,
) -> Vec<usize> {
    let n = stats.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let first = (0..n)
        .min_by_key(|&i| (stats[i].len, i))
        .expect("n >= 1 atoms");
    let mut order = Vec::with_capacity(n);
    order.push(first);
    let mut bound: Vec<VarId> = Vec::new();
    for &v in &stats[first].vars {
        if !bound.contains(&v) {
            bound.push(v);
        }
    }
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != first).collect();
    let mut shared: Vec<VarId> = Vec::new();
    while !remaining.is_empty() {
        let mut best: Option<(f64, usize, usize)> = None; // (score, len, atom)
        for &i in &remaining {
            shared.clear();
            shared.extend(stats[i].vars.iter().copied().filter(|v| bound.contains(v)));
            let score = if shared.is_empty() {
                f64::INFINITY // cross product: last resort
            } else {
                expansion(i, &shared)
            };
            let better = match best {
                None => true,
                Some((bs, bl, bi)) => match score.total_cmp(&bs) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => (stats[i].len, i) < (bl, bi),
                },
            };
            if better {
                best = Some((score, stats[i].len, i));
            }
        }
        let (_, _, next) = best.expect("remaining is non-empty");
        order.push(next);
        remaining.retain(|&i| i != next);
        for &v in &stats[next].vars {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instantiate::count_instantiations;
    use crate::parse::parse_metaquery;
    use mq_relation::ints;
    use rand::prelude::*;

    fn random_db(rng: &mut StdRng, n_rels: usize, max_arity: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n_rels {
            let arity = rng.gen_range(1..=max_arity);
            let rel = db.add_relation(format!("r{i}"), arity);
            for _ in 0..rng.gen_range(1..6) {
                let row: Vec<_> = (0..arity)
                    .map(|_| mq_relation::Value::Int(rng.gen_range(0..4)))
                    .collect();
                db.insert(rel, row.into_boxed_slice());
            }
        }
        db
    }

    #[test]
    fn parameters_extracted() {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        db.add_relation("t", 3);
        db.insert(p, ints(&[1, 2]));
        db.insert(p, ints(&[3, 4]));
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let cm = CostModel::of(&db, &mq);
        assert_eq!(cm.n, 2);
        assert_eq!(cm.d, 2);
        assert_eq!(cm.b, 3);
        assert_eq!(cm.a, 2);
        assert_eq!(cm.m, 3);
        assert_eq!(cm.c, 1);
    }

    /// The instantiation bound must dominate the actual enumeration count
    /// for every type on random schemas.
    #[test]
    fn bound_dominates_actual_counts() {
        let mut rng = StdRng::seed_from_u64(412);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        for round in 0..10 {
            let n_rels = rng.gen_range(1..4);
            let db = random_db(&mut rng, n_rels, 3);
            let cm = CostModel::of(&db, &mq);
            for ty in InstType::ALL {
                let actual = count_instantiations(&db, &mq, ty).unwrap() as f64;
                let bound = cm.instantiation_bound(ty);
                assert!(
                    actual <= bound + 1e-9,
                    "round {round} {ty}: actual {actual} > bound {bound} ({cm:?})"
                );
            }
        }
    }

    #[test]
    fn bounds_are_monotone_in_type() {
        let mut db = Database::new();
        db.add_relation("p", 2);
        db.add_relation("q", 2);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let cm = CostModel::of(&db, &mq);
        assert!(cm.instantiation_bound(InstType::Zero) <= cm.instantiation_bound(InstType::One));
        assert!(cm.instantiation_bound(InstType::One) <= cm.instantiation_bound(InstType::Two));
        assert!(cm.support_phase_steps(InstType::Zero) <= cm.support_phase_steps(InstType::Two));
        assert!(cm.total_steps(InstType::Zero) > 0.0);
    }

    fn stats(atoms: &[(usize, &[u32])]) -> Vec<JoinAtomStats> {
        atoms
            .iter()
            .map(|&(len, vars)| JoinAtomStats {
                len,
                vars: vars.iter().map(|&v| mq_relation::VarId(v)).collect(),
            })
            .collect()
    }

    /// Uniform expansion estimate for planner tests.
    fn flat(_: usize, _: &[mq_relation::VarId]) -> f64 {
        1.0
    }

    /// The planner never picks a cross product while a connected atom
    /// remains: on the 4-cycle vertex {e(X0,X1), e(X2,X3), e(X3,X0)} the
    /// raw λ order joins the two disjoint atoms first; the plan must not.
    #[test]
    fn plan_avoids_cross_products() {
        let s = stats(&[(120, &[0, 1]), (120, &[2, 3]), (120, &[3, 0])]);
        let order = plan_join_order(&s, flat);
        assert_eq!(order.len(), 3);
        // Every step after the first shares a variable with the atoms
        // already planned.
        let mut bound: Vec<u32> = s[order[0]].vars.iter().map(|v| v.0).collect();
        for &i in &order[1..] {
            assert!(
                s[i].vars.iter().any(|v| bound.contains(&v.0)),
                "step {i} is a cross product in {order:?}"
            );
            bound.extend(s[i].vars.iter().map(|v| v.0));
        }
    }

    /// Smaller atoms are preferred as the starting point and lower
    /// expansion estimates win among connected candidates.
    #[test]
    fn plan_prefers_small_and_selective() {
        let s = stats(&[(1000, &[0, 1]), (10, &[1, 2]), (500, &[2, 3])]);
        let order = plan_join_order(&s, |i, _| s[i].len as f64);
        assert_eq!(order[0], 1, "smallest atom starts the plan");
        assert_eq!(order, vec![1, 2, 0], "lower expansion estimate wins");
    }

    /// Disconnected components force a cross product eventually; the
    /// planner still orders each component before jumping.
    #[test]
    fn plan_handles_forced_cross_product() {
        let s = stats(&[(50, &[0, 1]), (50, &[1, 2]), (50, &[8, 9])]);
        let order = plan_join_order(&s, flat);
        assert_eq!(order[2], 2, "the disjoint atom goes last");
        assert_eq!(plan_join_order(&stats(&[(5, &[0])]), flat), vec![0]);
        assert!(plan_join_order(&stats(&[]), flat).is_empty());
    }

    /// Width enters the support-phase bound exponentially in d.
    #[test]
    fn width_dependence() {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        for i in 0..100 {
            db.insert(p, ints(&[i, i + 1]));
        }
        let chain = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let cycle = parse_metaquery("R(X,Y) <- P(X,Y), Q(Y,Z), S(Z,W), T(W,X)").unwrap();
        let cm1 = CostModel::of(&db, &chain);
        let cm2 = CostModel::of(&db, &cycle);
        assert_eq!(cm1.c, 1);
        assert_eq!(cm2.c, 2);
        assert!(cm2.support_phase_steps(InstType::Zero) > cm1.support_phase_steps(InstType::Zero));
    }
}
