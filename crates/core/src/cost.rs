//! The paper's §4 cost model, as data.
//!
//! The end of §4 analyzes `findRules` in six parameters: `n` relations in
//! `DB`, `d` = size of the largest relation, `b` = maximum relation
//! arity, `a` = maximum relation-pattern arity, `m` = number of relation
//! patterns in `MQ`, and `c` = hypertree width of `body(MQ)`. The
//! support phase costs `n^(m-1) · d^c · log d` steps for types 0/1 and
//! `(n·b^a)^(m-1) · d^c · log d` for type 2; the cover/confidence search
//! adds `(n·d)^m` resp. `(n·b^a·d)^m`.
//!
//! [`CostModel`] extracts the parameters from a concrete `(DB, MQ)` pair
//! and evaluates the bounds, and [`CostModel::instantiation_bound`] gives
//! a bound on the number of instantiations that is *validated against
//! the actual enumeration* in this module's tests.

use crate::ast::Metaquery;
use crate::engine::find_rules::body_decomposition;
use crate::instantiate::InstType;
use mq_relation::Database;

// The λ-join planner moved to the plan IR module (PR 3); re-exported here
// for continuity with the PR 2 API.
pub use crate::plan::{plan_join_order, JoinAtomStats};

/// The six parameters of the §4 analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Number of relations in the database (`n`).
    pub n: usize,
    /// Size of the largest relation (`d`).
    pub d: usize,
    /// Maximum arity of any database relation (`b`).
    pub b: usize,
    /// Maximum arity of any relation pattern in the metaquery (`a`).
    pub a: usize,
    /// Number of relation patterns of the metaquery (`m`).
    pub m: usize,
    /// Hypertree width of `body(MQ)` (`c`).
    pub c: usize,
}

fn factorial(k: usize) -> f64 {
    (1..=k).map(|i| i as f64).product()
}

impl CostModel {
    /// Extract the parameters from a database and metaquery.
    pub fn of(db: &Database, mq: &Metaquery) -> CostModel {
        let a = mq
            .relation_patterns()
            .iter()
            .map(|(_, l)| l.arity())
            .max()
            .unwrap_or(0);
        CostModel {
            n: db.num_relations(),
            d: db.max_relation_size(),
            b: db.max_arity(),
            a,
            m: mq.relation_patterns().len(),
            c: body_decomposition(mq).width,
        }
    }

    /// Per-pattern choice bound: how many `(relation, argument map)`
    /// candidates one pattern has under `ty`. The paper folds the
    /// (constant) permutation factor into the `O(·)`; we keep it so the
    /// bound actually dominates the enumeration.
    pub fn per_pattern_choices(&self, ty: InstType) -> f64 {
        let n = self.n as f64;
        match ty {
            InstType::Zero => n,
            InstType::One => n * factorial(self.a),
            InstType::Two => {
                // arrangements of a pattern's args into b positions:
                // b!/(b-a)!, at most b^a — the paper uses b^a.
                n * (self.b as f64).powi(self.a as i32)
            }
        }
    }

    /// Bound on the total number of type-`ty` instantiations: the
    /// per-pattern choices raised to the number of patterns.
    pub fn instantiation_bound(&self, ty: InstType) -> f64 {
        self.per_pattern_choices(ty).powi(self.m as i32)
    }

    /// §4: steps to find all high-support body instantiations —
    /// `n^(m-1) · d^c · log d` for types 0/1, with `n` replaced by
    /// `n·b^a` for type 2.
    pub fn support_phase_steps(&self, ty: InstType) -> f64 {
        let base = match ty {
            InstType::Zero | InstType::One => self.n as f64,
            InstType::Two => self.n as f64 * (self.b as f64).powi(self.a as i32),
        };
        let d = self.d.max(2) as f64;
        base.powi(self.m.saturating_sub(1) as i32) * d.powf(self.c as f64) * d.ln()
    }

    /// §4: additional steps for the cover/confidence search —
    /// `(n·d)^m` for types 0/1, `(n·b^a·d)^m` for type 2.
    pub fn head_phase_steps(&self, ty: InstType) -> f64 {
        let base = match ty {
            InstType::Zero | InstType::One => self.n as f64 * self.d as f64,
            InstType::Two => self.n as f64 * (self.b as f64).powi(self.a as i32) * self.d as f64,
        };
        base.powi(self.m as i32)
    }

    /// Total step bound for one `findRules` run.
    pub fn total_steps(&self, ty: InstType) -> f64 {
        self.support_phase_steps(ty) + self.head_phase_steps(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instantiate::count_instantiations;
    use crate::parse::parse_metaquery;
    use mq_relation::ints;
    use rand::prelude::*;

    fn random_db(rng: &mut StdRng, n_rels: usize, max_arity: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n_rels {
            let arity = rng.gen_range(1..=max_arity);
            let rel = db.add_relation(format!("r{i}"), arity);
            for _ in 0..rng.gen_range(1..6) {
                let row: Vec<_> = (0..arity)
                    .map(|_| mq_relation::Value::Int(rng.gen_range(0..4)))
                    .collect();
                db.insert(rel, row.into_boxed_slice());
            }
        }
        db
    }

    #[test]
    fn parameters_extracted() {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        db.add_relation("t", 3);
        db.insert(p, ints(&[1, 2]));
        db.insert(p, ints(&[3, 4]));
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let cm = CostModel::of(&db, &mq);
        assert_eq!(cm.n, 2);
        assert_eq!(cm.d, 2);
        assert_eq!(cm.b, 3);
        assert_eq!(cm.a, 2);
        assert_eq!(cm.m, 3);
        assert_eq!(cm.c, 1);
    }

    /// The instantiation bound must dominate the actual enumeration count
    /// for every type on random schemas.
    #[test]
    fn bound_dominates_actual_counts() {
        let mut rng = StdRng::seed_from_u64(412);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        for round in 0..10 {
            let n_rels = rng.gen_range(1..4);
            let db = random_db(&mut rng, n_rels, 3);
            let cm = CostModel::of(&db, &mq);
            for ty in InstType::ALL {
                let actual = count_instantiations(&db, &mq, ty).unwrap() as f64;
                let bound = cm.instantiation_bound(ty);
                assert!(
                    actual <= bound + 1e-9,
                    "round {round} {ty}: actual {actual} > bound {bound} ({cm:?})"
                );
            }
        }
    }

    #[test]
    fn bounds_are_monotone_in_type() {
        let mut db = Database::new();
        db.add_relation("p", 2);
        db.add_relation("q", 2);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let cm = CostModel::of(&db, &mq);
        assert!(cm.instantiation_bound(InstType::Zero) <= cm.instantiation_bound(InstType::One));
        assert!(cm.instantiation_bound(InstType::One) <= cm.instantiation_bound(InstType::Two));
        assert!(cm.support_phase_steps(InstType::Zero) <= cm.support_phase_steps(InstType::Two));
        assert!(cm.total_steps(InstType::Zero) > 0.0);
    }

    /// Width enters the support-phase bound exponentially in d.
    #[test]
    fn width_dependence() {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        for i in 0..100 {
            db.insert(p, ints(&[i, i + 1]));
        }
        let chain = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let cycle = parse_metaquery("R(X,Y) <- P(X,Y), Q(Y,Z), S(Z,W), T(W,X)").unwrap();
        let cm1 = CostModel::of(&db, &chain);
        let cm2 = CostModel::of(&db, &cycle);
        assert_eq!(cm1.c, 1);
        assert_eq!(cm2.c, 2);
        assert!(cm2.support_phase_steps(InstType::Zero) > cm1.support_phase_steps(InstType::Zero));
    }
}
