//! # mq-core — the metaquery engine
//!
//! The primary contribution of *Computational Properties of Metaquerying
//! Problems* (Angiulli, Ben-Eliyahu-Zohary, Ianni, Palopoli; PODS 2000),
//! as a library:
//!
//! * [`ast`] / [`parse`] — metaquery syntax (§2.1);
//! * [`instantiate`] — type-0/1/2 instantiation semantics
//!   (Definitions 2.1-2.4);
//! * [`index`] — support, confidence, cover (Definitions 2.5-2.7);
//! * [`rule`] — instantiated Horn rules `σ(MQ)`;
//! * [`engine`] — the naive engine and `findRules` (Figure 4);
//! * [`acyclic`] — (semi-)acyclicity analysis (Definition 3.31) and the
//!   tractable evaluation of Theorem 3.32;
//! * [`certificate`] — the NP certificates of Theorems 3.21/3.24, as
//!   executable checkers;
//! * [`cost`] — the §4 cost model (`n`, `d`, `b`, `a`, `m`, `c`) with the
//!   paper's step bounds, validated against actual enumeration counts;
//! * [`plan`] — the physical plan IR: the cost-guided join planner as a
//!   pure function producing hash-consed operator DAGs, interpreted by
//!   the engine's executor (see `ARCHITECTURE.md`).
//!
//! Beyond the paper, the crate implements the §5 future-work *negation
//! extension*: metaquery bodies may contain `not L(...)` literal schemes
//! with safe negation-as-failure semantics (see [`ast::Metaquery`]).
//!
//! ## Quick start
//!
//! ```
//! use mq_core::prelude::*;
//! use mq_relation::{ints, Database, Frac};
//!
//! let mut db = Database::new();
//! let p = db.add_relation("parent", 2);
//! let g = db.add_relation("grand", 2);
//! db.insert(p, ints(&[1, 2]));
//! db.insert(p, ints(&[2, 3]));
//! db.insert(g, ints(&[1, 3]));
//!
//! let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
//! let answers = find_rules(
//!     &db, &mq, InstType::Zero,
//!     Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
//! ).unwrap();
//! assert!(!answers.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclic;
pub mod ast;
pub mod certificate;
pub mod cost;
pub mod engine;
pub mod index;
pub mod instantiate;
pub mod parse;
pub mod plan;
pub mod rule;

/// Convenient re-exports of the most-used items.
pub mod prelude {
    pub use crate::ast::{Metaquery, MetaqueryBuilder};
    pub use crate::engine::find_rules::{decide as find_rules_decide, find_rules};
    pub use crate::engine::naive::{decide as naive_decide, find_all as naive_find_all};
    pub use crate::engine::{MqAnswer, MqProblem, Thresholds};
    pub use crate::index::{all_indices, IndexKind, IndexValues};
    pub use crate::instantiate::{
        apply_instantiation, enumerate_instantiations, InstType, Instantiation,
    };
    pub use crate::parse::parse_metaquery;
    pub use crate::rule::Rule;
}

pub use prelude::*;
