//! Instantiation semantics: types 0, 1 and 2 (Definitions 2.1-2.4).
//!
//! An instantiation `σ : rep(MQ) → ato(DB)` maps each relation pattern to
//! an atom over a database relation such that the restriction
//! `σ' : pv(MQ) → rel(DB)` is *functional* — two patterns sharing a
//! predicate variable must use the same relation (but may arrange their
//! arguments differently under types 1 and 2).
//!
//! * **type-0** (pure MQ): same arity, arguments untouched;
//! * **type-1** (pure MQ): same arity, arguments permuted;
//! * **type-2** (any MQ): relation arity `k' ≥ k`, the `k` scheme
//!   arguments placed injectively, remaining positions padded with fresh
//!   mute variables not occurring elsewhere in the instantiated rule.
//!
//! Every type-0 instantiation is type-1, and every type-1 is type-2 (the
//! paper's remark after Definition 2.4) — property-tested in this module.

use crate::ast::{LiteralScheme, Metaquery, Pred, PredVarId};
use crate::rule::Rule;
use mq_cq::Atom;
use mq_relation::{Database, RelId, Term, VarId};
use std::collections::HashMap;
use std::fmt;
use std::ops::ControlFlow;

/// The instantiation type `T ∈ {0, 1, 2}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstType {
    /// Definition 2.2: arity-preserving, identity argument map.
    Zero,
    /// Definition 2.3: arity-preserving, arguments permuted.
    One,
    /// Definition 2.4: arity-expanding with fresh padding variables.
    Two,
}

impl InstType {
    /// All three types, for sweeps.
    pub const ALL: [InstType; 3] = [InstType::Zero, InstType::One, InstType::Two];

    /// Numeric tag as in the paper.
    pub fn tag(self) -> u8 {
        match self {
            InstType::Zero => 0,
            InstType::One => 1,
            InstType::Two => 2,
        }
    }
}

impl fmt::Display for InstType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type-{}", self.tag())
    }
}

/// How one relation pattern is instantiated.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PatternMap {
    /// The relation the pattern maps to.
    pub rel: RelId,
    /// For each position of the relation (length = relation arity):
    /// `Some(i)` places the pattern's `i`-th argument there; `None` pads
    /// with a fresh mute variable.
    pub slots: Vec<Option<usize>>,
}

/// A complete instantiation: one [`PatternMap`] per relation pattern, in
/// `rep(MQ)` order (head pattern first, then body patterns left to right).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Instantiation {
    /// Per-pattern maps.
    pub maps: Vec<PatternMap>,
}

/// Errors raised by instantiation enumeration/application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstError {
    /// Types 0 and 1 are only defined for pure metaqueries (§2.1).
    NotPure,
    /// A negated literal scheme uses a variable that occurs in no
    /// positive body scheme (unsafe negation; extension).
    UnsafeNegation,
    /// A relation symbol in the metaquery does not exist in the database.
    UnknownRelation(String),
    /// A relation-symbol literal scheme has the wrong arity for its
    /// relation.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// Arity in the metaquery.
        scheme_arity: usize,
        /// Arity in the database.
        relation_arity: usize,
    },
    /// The search overran its wall-clock deadline and was cooperatively
    /// cancelled (serving-layer per-request budget; see
    /// [`crate::engine::find_rules::find_rules_budgeted`]).
    DeadlineExceeded {
        /// The budget the search was given, in milliseconds.
        budget_ms: u64,
    },
}

impl fmt::Display for InstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstError::NotPure => {
                write!(f, "type-0/1 instantiation requires a pure metaquery")
            }
            InstError::UnsafeNegation => {
                write!(f, "negated literals must only use positive-body variables")
            }
            InstError::UnknownRelation(name) => {
                write!(f, "relation `{name}` not found in database")
            }
            InstError::ArityMismatch {
                relation,
                scheme_arity,
                relation_arity,
            } => write!(
                f,
                "scheme arity {scheme_arity} does not match relation `{relation}` arity {relation_arity}"
            ),
            InstError::DeadlineExceeded { budget_ms } => {
                write!(f, "search exceeded its {budget_ms}ms deadline")
            }
        }
    }
}

impl std::error::Error for InstError {}

/// Candidate slot maps for one pattern against one relation, deduplicated
/// by the variable layout they induce (permutations that move equal
/// variables onto each other are identical instantiations).
fn slot_candidates(
    scheme: &LiteralScheme,
    rel_arity: usize,
    ty: InstType,
) -> Vec<Vec<Option<usize>>> {
    let k = scheme.arity();
    match ty {
        InstType::Zero => {
            if rel_arity != k {
                return Vec::new();
            }
            vec![(0..k).map(Some).collect()]
        }
        InstType::One => {
            if rel_arity != k {
                return Vec::new();
            }
            let mut out = Vec::new();
            let mut seen = std::collections::HashSet::new();
            permute(k, &mut |perm| {
                // perm[j] = which scheme argument lands at position j
                let key: Vec<VarId> = perm.iter().map(|&i| scheme.args[i]).collect();
                if seen.insert(key) {
                    out.push(perm.iter().map(|&i| Some(i)).collect());
                }
            });
            out
        }
        InstType::Two => {
            if rel_arity < k {
                return Vec::new();
            }
            let mut out = Vec::new();
            let mut seen = std::collections::HashSet::new();
            // Choose an injective placement of the k scheme args into
            // rel_arity positions: enumerate ordered arrangements.
            let mut slots: Vec<Option<usize>> = vec![None; rel_arity];
            arrange(k, rel_arity, &mut slots, 0, &mut |slots| {
                let key: Vec<Option<VarId>> =
                    slots.iter().map(|s| s.map(|i| scheme.args[i])).collect();
                if seen.insert(key) {
                    out.push(slots.to_vec());
                }
            });
            out
        }
    }
}

/// Enumerate permutations of `0..k` (Heap's algorithm, small k).
fn permute(k: usize, f: &mut impl FnMut(&[usize])) {
    let mut idx: Vec<usize> = (0..k).collect();
    fn rec(n: usize, idx: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if n <= 1 {
            f(idx);
            return;
        }
        for i in 0..n {
            rec(n - 1, idx, f);
            if n.is_multiple_of(2) {
                idx.swap(i, n - 1);
            } else {
                idx.swap(0, n - 1);
            }
        }
    }
    rec(k, &mut idx, f);
}

/// Enumerate injective placements of scheme args `arg..k` into free slots.
fn arrange(
    k: usize,
    arity: usize,
    slots: &mut Vec<Option<usize>>,
    arg: usize,
    f: &mut impl FnMut(&[Option<usize>]),
) {
    if arg == k {
        f(slots);
        return;
    }
    for pos in 0..arity {
        if slots[pos].is_none() {
            slots[pos] = Some(arg);
            arrange(k, arity, slots, arg + 1, f);
            slots[pos] = None;
        }
    }
}

/// Per-pattern candidates: relation -> slot maps.
pub(crate) fn pattern_candidates(
    db: &Database,
    scheme: &LiteralScheme,
    ty: InstType,
) -> HashMap<RelId, Vec<Vec<Option<usize>>>> {
    let mut out = HashMap::new();
    for rel in db.rel_ids() {
        let cands = slot_candidates(scheme, db.relation(rel).arity(), ty);
        if !cands.is_empty() {
            out.insert(rel, cands);
        }
    }
    out
}

/// Validate the metaquery's relation-symbol schemes against the database.
pub(crate) fn check_fixed_schemes(db: &Database, mq: &Metaquery) -> Result<(), InstError> {
    for scheme in mq.literal_schemes() {
        if let Pred::Rel(name) = &scheme.pred {
            let id = db
                .rel_id(name)
                .ok_or_else(|| InstError::UnknownRelation(name.clone()))?;
            let ra = db.relation(id).arity();
            if ra != scheme.arity() {
                return Err(InstError::ArityMismatch {
                    relation: name.clone(),
                    scheme_arity: scheme.arity(),
                    relation_arity: ra,
                });
            }
        }
    }
    Ok(())
}

/// Visit every type-`ty` instantiation of `mq` over `db`. The callback can
/// stop the enumeration early via [`ControlFlow::Break`]; returns `true`
/// if enumeration was stopped early.
pub fn for_each_instantiation(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    mut f: impl FnMut(&Instantiation) -> ControlFlow<()>,
) -> Result<bool, InstError> {
    if ty != InstType::Two && !mq.is_pure() {
        return Err(InstError::NotPure);
    }
    if !mq.is_safe() {
        return Err(InstError::UnsafeNegation);
    }
    check_fixed_schemes(db, mq)?;

    let patterns: Vec<&LiteralScheme> =
        mq.relation_patterns().into_iter().map(|(_, l)| l).collect();
    let candidates: Vec<HashMap<RelId, Vec<Vec<Option<usize>>>>> = patterns
        .iter()
        .map(|s| pattern_candidates(db, s, ty))
        .collect();

    // Backtrack over patterns, keeping the predicate-variable → relation
    // assignment functional.
    let mut pv_rel: HashMap<PredVarId, RelId> = HashMap::new();
    let mut maps: Vec<PatternMap> = Vec::with_capacity(patterns.len());

    fn rec(
        i: usize,
        patterns: &[&LiteralScheme],
        candidates: &[HashMap<RelId, Vec<Vec<Option<usize>>>>],
        pv_rel: &mut HashMap<PredVarId, RelId>,
        maps: &mut Vec<PatternMap>,
        f: &mut impl FnMut(&Instantiation) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if i == patterns.len() {
            return f(&Instantiation { maps: maps.clone() });
        }
        let pv = match patterns[i].pred {
            Pred::Var(p) => p,
            Pred::Rel(_) => unreachable!("patterns are relation patterns"),
        };
        let fixed = pv_rel.get(&pv).copied();
        let rels: Vec<RelId> = match fixed {
            Some(r) => {
                if candidates[i].contains_key(&r) {
                    vec![r]
                } else {
                    Vec::new()
                }
            }
            None => {
                let mut rels: Vec<RelId> = candidates[i].keys().copied().collect();
                rels.sort();
                rels
            }
        };
        for rel in rels {
            let inserted = fixed.is_none();
            if inserted {
                pv_rel.insert(pv, rel);
            }
            for slots in &candidates[i][&rel] {
                maps.push(PatternMap {
                    rel,
                    slots: slots.clone(),
                });
                let flow = rec(i + 1, patterns, candidates, pv_rel, maps, f);
                maps.pop();
                if flow.is_break() {
                    if inserted {
                        pv_rel.remove(&pv);
                    }
                    return ControlFlow::Break(());
                }
            }
            if inserted {
                pv_rel.remove(&pv);
            }
        }
        ControlFlow::Continue(())
    }

    let stopped = rec(0, &patterns, &candidates, &mut pv_rel, &mut maps, &mut f).is_break();
    Ok(stopped)
}

/// Collect every type-`ty` instantiation (beware: exponentially many in
/// the number of patterns under combined complexity).
pub fn enumerate_instantiations(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
) -> Result<Vec<Instantiation>, InstError> {
    let mut out = Vec::new();
    for_each_instantiation(db, mq, ty, |inst| {
        out.push(inst.clone());
        ControlFlow::Continue(())
    })?;
    Ok(out)
}

/// Count the type-`ty` instantiations without collecting them.
pub fn count_instantiations(db: &Database, mq: &Metaquery, ty: InstType) -> Result<u64, InstError> {
    let mut n = 0u64;
    for_each_instantiation(db, mq, ty, |_| {
        n += 1;
        ControlFlow::Continue(())
    })?;
    Ok(n)
}

/// Apply an instantiation, producing the ordinary Horn rule `σ(MQ)`.
///
/// Fresh padding variables (type-2) are allocated from a copy of the
/// metaquery's variable pool, guaranteeing they occur nowhere else in the
/// instantiated rule (Definition 2.4, third bullet).
pub fn apply_instantiation(
    db: &Database,
    mq: &Metaquery,
    inst: &Instantiation,
) -> Result<Rule, InstError> {
    check_fixed_schemes(db, mq)?;
    let mut vars = mq.vars.clone();
    let mut pattern_idx = 0usize;
    let mut make_atom =
        |scheme: &LiteralScheme, vars: &mut crate::ast::VarPool| -> Result<Atom, InstError> {
            match &scheme.pred {
                Pred::Rel(name) => {
                    let rel = db
                        .rel_id(name)
                        .ok_or_else(|| InstError::UnknownRelation(name.clone()))?;
                    Ok(Atom::vars_atom(rel, &scheme.args))
                }
                Pred::Var(_) => {
                    let map = &inst.maps[pattern_idx];
                    pattern_idx += 1;
                    let terms: Vec<Term> = map
                        .slots
                        .iter()
                        .map(|slot| match slot {
                            Some(i) => Term::Var(scheme.args[*i]),
                            None => Term::Var(vars.fresh()),
                        })
                        .collect();
                    Ok(Atom::new(map.rel, terms))
                }
            }
        };
    let head = make_atom(&mq.head, &mut vars)?;
    let mut body = Vec::with_capacity(mq.body.len());
    for scheme in &mq.body {
        body.push(make_atom(scheme, &mut vars)?);
    }
    let mut neg_body = Vec::with_capacity(mq.neg_body.len());
    for scheme in &mq.neg_body {
        neg_body.push(make_atom(scheme, &mut vars)?);
    }
    Ok(Rule {
        head,
        body,
        neg_body,
        var_names: vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_metaquery;
    use mq_relation::ints;

    /// DB with relations p/2, q/2, r/3.
    fn db3() -> Database {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        let r = db.add_relation("r", 3);
        db.insert(p, ints(&[1, 2]));
        db.insert(q, ints(&[2, 3]));
        db.insert(r, ints(&[1, 2, 3]));
        db
    }

    #[test]
    fn type0_counts() {
        let db = db3();
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        // Each of the 3 patterns independently picks one of the two binary
        // relations: 2^3 = 8.
        assert_eq!(count_instantiations(&db, &mq, InstType::Zero).unwrap(), 8);
    }

    #[test]
    fn type1_counts() {
        let db = db3();
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        // Each pattern: 2 relations × 2 argument orders = 4; total 4^3.
        assert_eq!(count_instantiations(&db, &mq, InstType::One).unwrap(), 64);
    }

    #[test]
    fn type2_counts() {
        let db = db3();
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        // Per pattern: binary rels give 2×2=4 placements; the ternary rel
        // gives 3·2 = 6 ordered placements of 2 args into 3 positions.
        // Total per pattern = 4 + 6 = 10; three patterns → 1000.
        assert_eq!(count_instantiations(&db, &mq, InstType::Two).unwrap(), 1000);
    }

    #[test]
    fn type_hierarchy_zero_subset_one_subset_two() {
        let db = db3();
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let t0 = enumerate_instantiations(&db, &mq, InstType::Zero).unwrap();
        let t1 = enumerate_instantiations(&db, &mq, InstType::One).unwrap();
        let t2 = enumerate_instantiations(&db, &mq, InstType::Two).unwrap();
        // Compare by rendered rules (slot layouts differ in representation
        // only when arities differ).
        let render = |insts: &[Instantiation]| -> std::collections::HashSet<String> {
            insts
                .iter()
                .map(|i| apply_instantiation(&db, &mq, i).unwrap().render(&db))
                .collect()
        };
        let (r0, r1, r2) = (render(&t0), render(&t1), render(&t2));
        assert!(r0.is_subset(&r1), "type-0 ⊆ type-1");
        assert!(r1.is_subset(&r2), "type-1 ⊆ type-2");
    }

    #[test]
    fn functional_restriction_enforced() {
        let db = db3();
        // P occurs twice: both occurrences must map to the same relation.
        let mq = parse_metaquery("P(X,Y) <- P(Y,Z), Q(Z,W)").unwrap();
        let insts = enumerate_instantiations(&db, &mq, InstType::Zero).unwrap();
        // P: 2 choices shared, Q: 2 choices → 4.
        assert_eq!(insts.len(), 4);
        for inst in &insts {
            assert_eq!(inst.maps[0].rel, inst.maps[1].rel, "P consistent");
        }
    }

    #[test]
    fn type1_different_permutations_same_predvar_allowed() {
        let db = db3();
        let mq = parse_metaquery("P(X,Y) <- P(Y,Z), Q(Z,W)").unwrap();
        let insts = enumerate_instantiations(&db, &mq, InstType::One).unwrap();
        // P: 2 rels, each occurrence independently permuted (2 × 2),
        // Q: 2 rels × 2 perms → 2·2·2 · 4 = 32.
        assert_eq!(insts.len(), 32);
        // Some instantiation uses different argument orders for the two
        // P-occurrences.
        assert!(insts
            .iter()
            .any(|i| i.maps[0].rel == i.maps[1].rel && i.maps[0].slots != i.maps[1].slots));
    }

    #[test]
    fn type0_requires_pure() {
        let db = db3();
        let mut b = crate::ast::MetaqueryBuilder::new();
        let x = b.var("X");
        let y = b.var("Y");
        let p = b.pred_var("P");
        b.head_pattern(p, vec![x, y]);
        b.body_pattern(p, vec![x]);
        let mq = b.build();
        assert_eq!(
            for_each_instantiation(&db, &mq, InstType::Zero, |_| ControlFlow::Continue(()))
                .unwrap_err(),
            InstError::NotPure
        );
        // Type-2 tolerates impurity.
        assert!(count_instantiations(&db, &mq, InstType::Two).is_ok());
    }

    #[test]
    fn type2_pads_with_fresh_vars() {
        let db = db3();
        let mq = parse_metaquery("I(X) <- O(X)").unwrap();
        let insts = enumerate_instantiations(&db, &mq, InstType::Two).unwrap();
        // Find an instantiation mapping I to r/3: 1 arg into 3 positions.
        let with_r = insts
            .iter()
            .map(|i| apply_instantiation(&db, &mq, i).unwrap())
            .find(|r| db.relation(r.head.rel).name() == "r")
            .expect("some instantiation uses r/3");
        assert_eq!(with_r.head.terms.len(), 3);
        // Exactly one term is X; the others are fresh and distinct.
        let x = mq.vars.get("X").unwrap();
        let vars: Vec<VarId> = with_r
            .head
            .terms
            .iter()
            .filter_map(|t| t.as_var())
            .collect();
        assert_eq!(vars.iter().filter(|&&v| v == x).count(), 1);
        let fresh: Vec<VarId> = vars.into_iter().filter(|&v| v != x).collect();
        assert_eq!(fresh.len(), 2);
        assert_ne!(fresh[0], fresh[1]);
    }

    #[test]
    fn repeated_scheme_vars_dedupe_permutations() {
        let db = db3();
        // P(X,X): both permutations give the same atom; only 1 candidate
        // per binary relation under type-1.
        let mq = parse_metaquery("P(X,X) <- P(X,X)").unwrap();
        // head+body share P and the same scheme shape: relation shared.
        assert_eq!(count_instantiations(&db, &mq, InstType::One).unwrap(), 2);
    }

    #[test]
    fn unknown_relation_symbol_errors() {
        let db = db3();
        let mq = parse_metaquery("P(X,Y) <- missing(X,Y)").unwrap();
        assert_eq!(
            count_instantiations(&db, &mq, InstType::Zero).unwrap_err(),
            InstError::UnknownRelation("missing".into())
        );
    }

    #[test]
    fn arity_mismatch_on_fixed_scheme_errors() {
        let db = db3();
        let mq = parse_metaquery("P(X,Y) <- p(X,Y,Z)").unwrap();
        match count_instantiations(&db, &mq, InstType::Zero).unwrap_err() {
            InstError::ArityMismatch { relation, .. } => assert_eq!(relation, "p"),
            e => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn early_stop_reports_true() {
        let db = db3();
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let stopped =
            for_each_instantiation(&db, &mq, InstType::Zero, |_| ControlFlow::Break(())).unwrap();
        assert!(stopped);
    }
}
