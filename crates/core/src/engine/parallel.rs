//! The work-stealing scheduler for `findRules`.
//!
//! The sequential search enumerates pattern assignments depth-first. The
//! scheduler splits that search over *instantiation prefixes*: every
//! combination of candidate assignments for the first [`split_depth`]
//! patterns (in enumeration order, respecting predicate-variable locks)
//! becomes one task. Tasks go into a shared deque drained by
//! work-stealing workers (`rayon::scope`/`spawn`, identical under the
//! offline shim and real rayon): each worker owns **one** engine reused
//! across every task it steals. By default every engine's executor
//! reads and publishes into the search-global shared memo service
//! ([`super::memo::SharedMemos`], carried by the `Setup`), so an atom,
//! plan or plan-node intermediate computed by any worker is a memo hit
//! for all of them — no per-worker warm-up. With `MQ_SHARED_MEMO=0`
//! each worker instead warms a private memo slice that travels with it
//! (the PR 3 behavior).
//!
//! Determinism: tasks are generated in enumeration order and each task's
//! answers land in its own output slot; concatenating slots in task order
//! reproduces the sequential enumeration order exactly, regardless of
//! which worker ran what when. `find_rules` then applies the same final
//! sort as `find_rules_seq`, so output is byte-identical for every
//! `MQ_THREADS` × `MQ_SPLIT_DEPTH` combination.
//!
//! Knobs: `MQ_PARALLEL=0` disables the scheduler; `MQ_THREADS` caps the
//! worker count (via the rayon shim); `MQ_SPLIT_DEPTH` (default 2) sets
//! how many leading patterns the split enumerates — deeper splits give
//! more, finer tasks for many-core machines; `MQ_SHARED_MEMO=0` falls
//! back to one private memo slice per worker.

use super::find_rules::{collect_sequential, Engine, Setup};
use super::MqAnswer;
use mq_store::lock::{lock_recover, unpoison};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of leading patterns the scheduler splits on.
pub const DEFAULT_SPLIT_DEPTH: usize = 2;

/// Runtime override of the split depth (0 = none). Exists so tests can
/// sweep depths without `std::env::set_var` (unsound under concurrent
/// env reads on glibc).
static SPLIT_DEPTH_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force [`split_depth`] to return `d` (or `None` to restore the
/// `MQ_SPLIT_DEPTH` env / default resolution). Process-global; intended
/// for tests and harnesses.
pub fn set_split_depth_override(d: Option<usize>) {
    SPLIT_DEPTH_OVERRIDE.store(d.unwrap_or(0), Ordering::SeqCst);
}

/// The split depth: the override, else `MQ_SPLIT_DEPTH`, else
/// [`DEFAULT_SPLIT_DEPTH`]. Clamped to ≥ 1.
pub fn split_depth() -> usize {
    let over = SPLIT_DEPTH_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    std::env::var("MQ_SPLIT_DEPTH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&d| d > 0)
        .unwrap_or(DEFAULT_SPLIT_DEPTH)
}

/// Whether the parallel driver is enabled (`MQ_PARALLEL=0` disables it;
/// baseline mode always runs sequentially so A/B timings compare the
/// pre-optimization engine faithfully).
fn parallel_enabled() -> bool {
    if mq_relation::baseline_mode() {
        return false;
    }
    match std::env::var_os("MQ_PARALLEL") {
        Some(v) => !matches!(v.to_str(), Some("0") | Some("false") | Some("off")),
        None => true,
    }
}

/// Run the search for `setup`, on the work-stealing scheduler when it is
/// enabled and the split yields at least two tasks, else sequentially.
/// Answers come back in enumeration order (pre-sort).
pub(crate) fn run(setup: &Setup) -> Vec<MqAnswer> {
    let threads = rayon::current_num_threads();
    if threads <= 1 || !parallel_enabled() {
        // The sequential fallback runs on the calling thread, which is
        // already inside the request's trace scope; count it as one task.
        if let Some(p) = &setup.profile {
            p.task_claimed();
        }
        return collect_sequential(setup);
    }
    let tasks = setup.prefix_tasks(split_depth());
    if tasks.len() < 2 {
        if let Some(p) = &setup.profile {
            p.task_claimed();
        }
        return collect_sequential(setup);
    }
    let n_workers = threads.min(tasks.len());
    // One output slot per task: deterministic merge regardless of which
    // worker ran the task (or when).
    let slots: Vec<Mutex<Vec<MqAnswer>>> = tasks.iter().map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    rayon::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|_| {
                // One engine per worker, reused across stolen tasks. Its
                // executor talks to the Setup's shared memo service (or,
                // with MQ_SHARED_MEMO=0, a private slice), so a prefix
                // computed for one task is a memo hit for the next —
                // and, when shared, for every other worker too.
                // The sink is worker-local (the engine's callback and the
                // drain below are the only handles), so every lock here
                // is uncontended — Arc<Mutex> instead of Rc<RefCell>
                // keeps this module inside the workspace's Send+Sync
                // purity contract (`no-rc-refcell-in-sendsync`).
                // Workers are fresh pool threads: enter the request's
                // trace scope so their spans (and the engine drop's
                // profile flush) attribute to the serving request.
                let _scope =
                    (setup.obs_req != 0).then(|| mq_obs::trace::request_scope(setup.obs_req));
                let sink: Arc<Mutex<Vec<MqAnswer>>> = Arc::new(Mutex::new(Vec::new()));
                let mut engine = Engine::new(setup, {
                    let sink = Arc::clone(&sink);
                    move |ans: &MqAnswer| {
                        lock_recover(&sink).push(ans.clone());
                        ControlFlow::Continue(())
                    }
                });
                loop {
                    // Cooperative deadline: once any worker latches
                    // expiry, the rest stop claiming tasks. (The answers
                    // merged so far are discarded by the budgeted entry
                    // point — partial results are never surfaced.)
                    if setup.deadline.as_ref().is_some_and(|dl| dl.check()) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    if let Some(p) = &setup.profile {
                        p.task_claimed();
                    }
                    let _span = mq_obs::span!(mq_obs::trace::SCHED_TASK);
                    engine.run_prefix_task(&tasks[i]);
                    let got: Vec<MqAnswer> = lock_recover(&sink).drain(..).collect();
                    *lock_recover(&slots[i]) = got;
                }
            });
        }
    });
    slots
        .into_iter()
        .flat_map(|m| unpoison(m.into_inner()))
        .collect()
}
