//! The cross-worker **shared memo service** for `findRules`.
//!
//! Before this layer existed, every scheduler worker owned a private
//! memo slice (atom cache, plan cache, plan-node results): `Bindings`
//! rows lived behind `Rc` and could not cross threads, so each worker
//! re-derived — and re-joined — intermediates its siblings had already
//! computed. With the frozen row store (`mq_store::FrozenRows`) making
//! `Bindings` `Send + Sync`, this module hosts **one** global memo per
//! search that all workers read and publish into:
//!
//! * `atoms`   — `(relation, terms) → Arc<Bindings>`;
//! * `plans`   — `(χ, λ atom keys) → PlanNodeId` (roots into the shared
//!   arena);
//! * `results` — `PlanNodeId → Arc<Bindings>`;
//! * a **shared [`PlanArena`]** behind an `RwLock`, so plan-node ids are
//!   globally consistent — hash-consing is what makes a node id a valid
//!   cross-worker memo key in the first place.
//!
//! Every memo value is a deterministic function of its key (see the
//! memo-sharing contract in `ARCHITECTURE.md`), so first-writer-wins
//! publication ([`mq_store::ShardedMemo`]) keeps all workers byte-
//! consistent: whichever worker computes a key first, the value is the
//! one the sequential engine would have computed.
//!
//! The service is attached to every non-baseline search, including
//! sequential ones (`find_rules_seq`, 1-thread pools): a sharded hit
//! costs one uncontended read lock + `Arc` clone over the private
//! path's map probe — measured as noise on the bench guards (see
//! PERFORMANCE.md) — and in exchange the default path always reports
//! hit-rate telemetry and exercises the exact storage layer that
//! concurrent sessions will share. Deliberate trade-off; revisit if a
//! profile ever says otherwise.
//!
//! Knobs: `MQ_SHARED_MEMO=0` (or [`set_shared_memo_override`]) falls
//! back to the PR 3 behavior — one private memo slice per worker.
//! Hit/miss counters accumulate into process-global totals when a
//! service is dropped; [`take_shared_memo_counters`] drains them (used
//! by `bench_report` to report per-workload hit rates).

use crate::plan::{AtomKey, PlanArena, PlanNodeId, PlanOp};
use mq_relation::{Bindings, VarId};
pub use mq_store::MemoStats;
use mq_store::ShardedMemo;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Key of the plan cache: the node join's χ plus its instantiated λ atom
/// keys (which determine the evaluated atoms, hence the stats, hence the
/// deterministic plan).
pub(crate) type PlanKey = (Vec<VarId>, Vec<AtomKey>);

/// Runtime override of the `MQ_SHARED_MEMO` knob: 0 = none, 1 = forced
/// off, 2 = forced on. Exists so tests can sweep the axis without
/// `std::env::set_var` (unsound under concurrent env reads on glibc).
static SHARED_MEMO_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the shared memo service on or off (`None` restores the
/// `MQ_SHARED_MEMO` env / default resolution). Process-global; intended
/// for tests and harnesses.
pub fn set_shared_memo_override(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    SHARED_MEMO_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Whether searches use the cross-worker shared memo service: the
/// override, else `MQ_SHARED_MEMO` (`0`/`false`/`off` disable), else on.
pub fn shared_memo_enabled() -> bool {
    match SHARED_MEMO_OVERRIDE.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    match std::env::var_os("MQ_SHARED_MEMO") {
        Some(v) => !matches!(v.to_str(), Some("0") | Some("false") | Some("off")),
        None => true,
    }
}

/// Process-global hit/miss totals, fed by dropped [`SharedMemos`].
static TOTAL_HITS: AtomicU64 = AtomicU64::new(0);
static TOTAL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Drain (read and reset) the process-global shared-memo counters.
/// Counters accumulate when a search's memo service is dropped, so call
/// this after the `find_rules` calls you want to attribute.
pub fn take_shared_memo_counters() -> MemoStats {
    MemoStats {
        hits: TOTAL_HITS.swap(0, Ordering::Relaxed),
        misses: TOTAL_MISSES.swap(0, Ordering::Relaxed),
    }
}

/// One search's shared memos: the three executor memo layers plus the
/// shared plan arena, all `Send + Sync`. Created once per `Setup` and
/// handed (via `Arc`) to every worker's executor.
pub(crate) struct SharedMemos {
    /// Hash-consing arena for plan nodes, shared so node ids agree
    /// across workers. Write-locked only while interning (plan-cache
    /// misses); executing reads clone single ops under the read lock.
    arena: RwLock<PlanArena>,
    /// Instantiated-atom bindings by `(relation, terms)`.
    pub(crate) atoms: ShardedMemo<AtomKey, Arc<Bindings>>,
    /// Plan roots by `(χ, λ atom keys)`.
    pub(crate) plans: ShardedMemo<PlanKey, PlanNodeId>,
    /// Plan-node results by interned node id.
    pub(crate) results: ShardedMemo<PlanNodeId, Arc<Bindings>>,
}

impl SharedMemos {
    pub(crate) fn new() -> Self {
        SharedMemos {
            arena: RwLock::new(PlanArena::new()),
            atoms: ShardedMemo::new(),
            plans: ShardedMemo::new(),
            results: ShardedMemo::new(),
        }
    }

    /// The operator of node `id` (cloned out of the shared arena).
    pub(crate) fn op(&self, id: PlanNodeId) -> PlanOp {
        self.arena
            .read()
            .expect("plan arena poisoned")
            .op(id)
            .clone()
    }

    /// Intern a plan under the write lock. Interning is pure and
    /// idempotent, so concurrent planners racing on the same key build
    /// identical node ids.
    pub(crate) fn intern_plan(
        &self,
        build: impl FnOnce(&mut PlanArena) -> PlanNodeId,
    ) -> PlanNodeId {
        build(&mut self.arena.write().expect("plan arena poisoned"))
    }

    /// Aggregated hit/miss counters of the three memo layers.
    pub(crate) fn stats(&self) -> MemoStats {
        self.atoms
            .stats()
            .merged(self.plans.stats())
            .merged(self.results.stats())
    }
}

impl Drop for SharedMemos {
    fn drop(&mut self) {
        // Fold this search's counters into the process totals so
        // bench/report code can read hit rates after the fact.
        let s = self.stats();
        TOTAL_HITS.fetch_add(s.hits, Ordering::Relaxed);
        TOTAL_MISSES.fetch_add(s.misses, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_memos_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedMemos>();
    }

    #[test]
    fn override_beats_env_resolution() {
        set_shared_memo_override(Some(false));
        assert!(!shared_memo_enabled());
        set_shared_memo_override(Some(true));
        assert!(shared_memo_enabled());
        set_shared_memo_override(None);
    }

    #[test]
    fn dropped_service_feeds_global_counters() {
        let memos = SharedMemos::new();
        assert!(memos
            .atoms
            .get(&(mq_relation::RelId(0), Vec::new()))
            .is_none());
        drop(memos);
        // At least the miss above landed in the totals (other tests may
        // add more concurrently; drain and check the floor).
        let drained = take_shared_memo_counters();
        assert!(drained.misses >= 1);
    }
}
