//! The cross-worker **shared memo service** for `findRules`, plus the
//! cross-**search** persistent atom cache the serving layer builds on.
//!
//! Before this layer existed, every scheduler worker owned a private
//! memo slice (atom cache, plan cache, plan-node results): `Bindings`
//! rows lived behind `Rc` and could not cross threads, so each worker
//! re-derived — and re-joined — intermediates its siblings had already
//! computed. With the frozen row store (`mq_store::FrozenRows`) making
//! `Bindings` `Send + Sync`, this module hosts **one** global memo per
//! search that all workers read and publish into:
//!
//! * `atoms`   — `(relation, terms) → Arc<Bindings>`;
//! * `plans`   — `(χ, λ atom keys) → PlanNodeId` (roots into the shared
//!   arena);
//! * `results` — `PlanNodeId → Arc<Bindings>`;
//! * a **shared [`PlanArena`]** behind an `RwLock`, so plan-node ids are
//!   globally consistent — hash-consing is what makes a node id a valid
//!   cross-worker memo key in the first place.
//!
//! Every memo value is a deterministic function of its key (see the
//! memo-sharing contract in `ARCHITECTURE.md`), so first-writer-wins
//! publication ([`mq_store::ShardedMemo`]) keeps all workers byte-
//! consistent: whichever worker computes a key first, the value is the
//! one the sequential engine would have computed.
//!
//! ## Cross-search persistence: the [`AtomCache`]
//!
//! An instantiated atom's bindings depend on nothing but the atom key
//! and the **contents of its one relation** — so unlike plans (whose
//! cost-model decisions read relation statistics) and plan-node results
//! (whose values join several relations), atom bindings can outlive a
//! single search safely, provided the key says *which version* of the
//! relation it was computed from. The [`AtomCache`] is exactly that: a
//! concurrent map keyed by `(relation generation, relation, terms)`,
//! owned by a catalog entry in the serving layer and surviving across
//! searches and sessions. [`SharedMemos::with_persistent_atoms`] builds
//! a per-search memo service that, on a search-local atom miss, probes
//! the persistent cache under the search's snapshot generations and
//! publishes what it computes back — so a second session issuing a
//! similar metaquery over an unchanged database starts warm, and a
//! database update (which bumps only the touched relation's generation)
//! cold-starts only that relation's entries.
//!
//! The service is attached to every non-baseline search, including
//! sequential ones (`find_rules_seq`, 1-thread pools): a sharded hit
//! costs one uncontended read lock + `Arc` clone over the private
//! path's map probe — measured as noise on the bench guards (see
//! PERFORMANCE.md) — and in exchange the default path always reports
//! hit-rate telemetry and exercises the exact storage layer that
//! concurrent sessions share. Deliberate trade-off; revisit if a
//! profile ever says otherwise.
//!
//! Knobs: `MQ_SHARED_MEMO=0` (or [`set_shared_memo_override`]) falls
//! back to the PR 3 behavior — one private memo slice per worker.
//!
//! ## Counters
//!
//! Hit/miss counters live **on the instance**: [`SharedMemos::stats`]
//! for one memo service, [`AtomCache::stats`] for a catalog's persistent
//! cache. There is deliberately no process-global counter: concurrent
//! searches would clobber each other's attribution, so every consumer
//! (the serving layer's `stats` session command, `bench_report`) reads
//! the instance it owns.

use crate::plan::{AtomKey, PlanArena, PlanNodeId, PlanOp};
use mq_relation::{Bindings, VarId};
pub use mq_store::MemoStats;
use mq_store::{lock::read_recover, lock::write_recover, ShardedMemo};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Key of the plan cache: the node join's χ plus its instantiated λ atom
/// keys (which determine the evaluated atoms, hence the stats, hence the
/// deterministic plan).
pub(crate) type PlanKey = (Vec<VarId>, Vec<AtomKey>);

/// Generation tag of one relation inside a catalog entry: bumped by every
/// update that touches the relation, so `(generation, atom key)` names
/// the atom's bindings unambiguously across database versions.
pub type RelGeneration = u64;

/// Runtime override of the `MQ_SHARED_MEMO` knob: 0 = none, 1 = forced
/// off, 2 = forced on. Exists so tests can sweep the axis without
/// `std::env::set_var` (unsound under concurrent env reads on glibc).
static SHARED_MEMO_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the shared memo service on or off (`None` restores the
/// `MQ_SHARED_MEMO` env / default resolution). Process-global; intended
/// for tests and harnesses.
pub fn set_shared_memo_override(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    SHARED_MEMO_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Whether searches use the cross-worker shared memo service: the
/// override, else `MQ_SHARED_MEMO` (`0`/`false`/`off` disable), else on.
pub fn shared_memo_enabled() -> bool {
    match SHARED_MEMO_OVERRIDE.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    match std::env::var_os("MQ_SHARED_MEMO") {
        Some(v) => !matches!(v.to_str(), Some("0") | Some("false") | Some("off")),
        None => true,
    }
}

/// A **persistent, cross-search** cache of instantiated-atom bindings,
/// keyed by `(relation generation, relation, terms)`.
///
/// Owned by whoever outlives individual searches — in this workspace,
/// one per catalog entry in `mq-service` — and handed to per-search memo
/// services via [`SharedMemos::with_persistent_atoms`]. Generation keys
/// make invalidation free: an update bumps the touched relation's
/// generation, so new searches simply probe new keys for that relation
/// (cold start) while every untouched relation's entries keep hitting.
/// Sessions still running on an older snapshot keep probing the older
/// generation's keys, so they never observe post-update bindings.
///
/// Stale generations are not dropped eagerly (in-flight snapshot
/// sessions may still be reading them); [`AtomCache::purge_stale`] is
/// the explicit maintenance sweep.
pub struct AtomCache {
    memo: ShardedMemo<(RelGeneration, AtomKey), Arc<Bindings>>,
}

impl AtomCache {
    /// An empty cache.
    pub fn new() -> Self {
        AtomCache {
            memo: ShardedMemo::new(),
        }
    }

    /// Hit/miss counters of the persistent cache itself. Hits here are
    /// **cross-search** hits: a probe only reaches this cache after
    /// missing the search-local atom memo.
    pub fn stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Reset the hit/miss counters (entries are kept).
    pub fn reset_stats(&self) {
        self.memo.reset_stats()
    }

    /// Number of cached atom bindings (all generations).
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Drop every entry whose generation is not the relation's current
    /// one (per `current`, indexed by `RelId`). Call only once no
    /// session is still pinned to an older snapshot; entries of
    /// relations beyond `current` (unknown to the caller) are dropped
    /// too.
    pub fn purge_stale(&self, current: &[RelGeneration]) {
        self.memo
            .retain(|(gen, (rel, _)), _| current.get(rel.index()).copied() == Some(*gen));
    }
}

impl Default for AtomCache {
    fn default() -> Self {
        Self::new()
    }
}

/// The seed a per-search memo service probes on search-local atom
/// misses: the persistent cache plus the search snapshot's per-relation
/// generations.
struct PersistentAtoms {
    cache: Arc<AtomCache>,
    /// Generation per `RelId` of the snapshot this search runs against.
    gens: Arc<Vec<RelGeneration>>,
}

/// One search's shared memos: the three executor memo layers plus the
/// shared plan arena, all `Send + Sync`. Created once per `Setup` and
/// handed (via `Arc`) to every worker's executor — or supplied
/// externally by the serving layer ([`SharedMemos::with_persistent_atoms`],
/// threaded through `find_rules_shared`), in which case the atom layer
/// is seeded from, and publishes back to, a catalog's cross-search
/// [`AtomCache`].
pub struct SharedMemos {
    /// Hash-consing arena for plan nodes, shared so node ids agree
    /// across workers. Write-locked only while interning (plan-cache
    /// misses); executing reads clone single ops under the read lock.
    arena: RwLock<PlanArena>,
    /// Instantiated-atom bindings by `(relation, terms)`.
    pub(crate) atoms: ShardedMemo<AtomKey, Arc<Bindings>>,
    /// Plan roots by `(χ, λ atom keys)`.
    pub(crate) plans: ShardedMemo<PlanKey, PlanNodeId>,
    /// Plan-node results by interned node id.
    pub(crate) results: ShardedMemo<PlanNodeId, Arc<Bindings>>,
    /// Cross-search atom seed, when the service was built by the serving
    /// layer. Plans and results never persist: plan choices read
    /// relation statistics and node results join several relations, so
    /// neither is a function of a single relation's generation.
    persistent: Option<PersistentAtoms>,
}

impl SharedMemos {
    /// A fresh, unseeded memo service (one search, no cross-search
    /// persistence).
    pub fn new() -> Self {
        SharedMemos {
            arena: RwLock::new(PlanArena::new()),
            atoms: ShardedMemo::new(),
            plans: ShardedMemo::new(),
            results: ShardedMemo::new(),
            persistent: None,
        }
    }

    /// A memo service whose atom layer is seeded from (and publishes
    /// back to) `cache`, probing it under `gens` — the per-relation
    /// generations of the database snapshot this search runs against.
    /// This is the constructor the catalog uses: plans and results stay
    /// per-service, atoms persist across searches.
    pub fn with_persistent_atoms(cache: Arc<AtomCache>, gens: Arc<Vec<RelGeneration>>) -> Self {
        let mut memos = SharedMemos::new();
        memos.persistent = Some(PersistentAtoms { cache, gens });
        memos
    }

    /// Look up atom `key`, consulting the search-local memo, then (when
    /// seeded) the persistent cross-search cache under the snapshot's
    /// generation, then computing via `build` and publishing to both.
    /// First-writer-wins at every layer, so racing searches converge on
    /// one canonical `Arc`.
    pub(crate) fn atom_or_compute(
        &self,
        key: AtomKey,
        build: impl FnOnce(&AtomKey) -> Arc<Bindings>,
    ) -> Arc<Bindings> {
        if let Some(hit) = self.atoms.get(&key) {
            return hit;
        }
        match &self.persistent {
            None => {
                let built = build(&key);
                self.atoms.publish(key, built)
            }
            Some(p) => {
                let gen = p.gens.get(key.0.index()).copied().unwrap_or(0);
                if let Some(hit) = p.cache.memo.get(&(gen, key.clone())) {
                    return self.atoms.publish(key, hit);
                }
                let built = build(&key);
                let canonical = p.cache.memo.publish((gen, key.clone()), built);
                self.atoms.publish(key, canonical)
            }
        }
    }

    /// The operator of node `id` (cloned out of the shared arena).
    pub(crate) fn op(&self, id: PlanNodeId) -> PlanOp {
        read_recover(&self.arena).op(id).clone()
    }

    /// Intern a plan under the write lock. Interning is pure and
    /// idempotent, so concurrent planners racing on the same key build
    /// identical node ids.
    pub(crate) fn intern_plan(
        &self,
        build: impl FnOnce(&mut PlanArena) -> PlanNodeId,
    ) -> PlanNodeId {
        build(&mut write_recover(&self.arena))
    }

    /// Human label of plan node `id` — `scan(r3)`, `hashjoin(#2, r5)`,
    /// … — where `#n` is the left child's node id and `rN` the atom's
    /// relation. Used by the slow-query log and `bench_report`'s node
    /// profile to make "hottest plan nodes" tables readable. `None`
    /// when `id` was never interned in this service's arena.
    pub fn describe_plan_node(&self, id: PlanNodeId) -> Option<String> {
        let arena = read_recover(&self.arena);
        if (id.0 as usize) >= arena.len() {
            return None;
        }
        Some(match arena.op(id) {
            PlanOp::Scan { atom } => format!("scan(r{})", atom.0.index()),
            PlanOp::Project { left, .. } => format!("project(#{})", left.0),
            PlanOp::HashJoin { left, atom, .. } => {
                format!("hashjoin(#{}, r{})", left.0, atom.0.index())
            }
            PlanOp::Semijoin { left, atom, .. } => {
                format!("semijoin(#{}, r{})", left.0, atom.0.index())
            }
        })
    }

    /// Aggregated hit/miss counters of the three memo layers of **this**
    /// service (the persistent atom seed keeps its own counters — see
    /// [`AtomCache::stats`]).
    pub fn stats(&self) -> MemoStats {
        self.atoms
            .stats()
            .merged(self.plans.stats())
            .merged(self.results.stats())
    }
}

impl Default for SharedMemos {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_relation::{RelId, Term};

    fn key(rel: u32, var: u32) -> AtomKey {
        (RelId(rel), vec![Term::Var(VarId(var))])
    }

    fn bindings() -> Arc<Bindings> {
        Arc::new(Bindings::unit())
    }

    #[test]
    fn shared_memos_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedMemos>();
        assert_send_sync::<AtomCache>();
    }

    #[test]
    fn override_beats_env_resolution() {
        set_shared_memo_override(Some(false));
        assert!(!shared_memo_enabled());
        set_shared_memo_override(Some(true));
        assert!(shared_memo_enabled());
        set_shared_memo_override(None);
    }

    #[test]
    fn persistent_atoms_survive_across_services() {
        let cache = Arc::new(AtomCache::new());
        let gens = Arc::new(vec![1u64, 1]);
        let first = SharedMemos::with_persistent_atoms(Arc::clone(&cache), Arc::clone(&gens));
        let built = first.atom_or_compute(key(0, 0), |_| bindings());
        drop(first);
        // A second "search" over the same generations hits the cache.
        let second = SharedMemos::with_persistent_atoms(Arc::clone(&cache), Arc::clone(&gens));
        let before = cache.stats();
        let again = second.atom_or_compute(key(0, 0), |_| panic!("must hit persistent cache"));
        assert!(Arc::ptr_eq(&built, &again), "canonical Arc is shared");
        let after = cache.stats();
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn generation_bump_cold_starts_only_touched_relation() {
        let cache = Arc::new(AtomCache::new());
        let old = SharedMemos::with_persistent_atoms(Arc::clone(&cache), Arc::new(vec![1, 1]));
        let _ = old.atom_or_compute(key(0, 0), |_| bindings());
        let _ = old.atom_or_compute(key(1, 0), |_| bindings());
        drop(old);
        assert_eq!(cache.len(), 2);
        // Relation 1 is updated: generation bumps to 2.
        let new_gens = Arc::new(vec![1u64, 2]);
        let fresh = SharedMemos::with_persistent_atoms(Arc::clone(&cache), Arc::clone(&new_gens));
        // Untouched relation 0 still hits…
        let _ = fresh.atom_or_compute(key(0, 0), |_| panic!("untouched relation must hit"));
        // …while relation 1 recomputes under its new generation.
        let mut recomputed = false;
        let _ = fresh.atom_or_compute(key(1, 0), |_| {
            recomputed = true;
            bindings()
        });
        assert!(recomputed, "bumped relation must cold-start");
        assert_eq!(cache.len(), 3, "old generation entry is retained");
        // The maintenance sweep drops the stale generation-1 entry of
        // relation 1 and keeps everything current.
        cache.purge_stale(&new_gens);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn instance_stats_attribute_one_service() {
        let memos = SharedMemos::new();
        let _ = memos.atom_or_compute(key(0, 0), |_| bindings());
        let _ = memos.atom_or_compute(key(0, 0), |_| panic!("second probe must hit"));
        let s = memos.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }
}
