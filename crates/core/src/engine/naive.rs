//! The naive metaquery engine: enumerate instantiations, materialize the
//! joins, measure the indices (the "guess and check" of Proposition 3.18,
//! run deterministically over all guesses).
//!
//! This engine is the correctness baseline for `findRules` and the
//! exhaustive-search side of the combined-complexity experiments.

use crate::ast::Metaquery;
use crate::engine::{MqAnswer, MqProblem, Thresholds};
use crate::index::{all_indices, index_value};
use crate::instantiate::{apply_instantiation, for_each_instantiation, InstError, InstType};
use mq_relation::Database;
use std::ops::ControlFlow;

/// Find all type-`ty` instantiations whose indices clear `thresholds`.
///
/// A failing [`apply_instantiation`] (e.g. a relation disappearing
/// between validation and application) is propagated as an [`InstError`]
/// rather than panicking mid-enumeration.
pub fn find_all(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
) -> Result<Vec<MqAnswer>, InstError> {
    let mut out = Vec::new();
    let mut failed: Option<InstError> = None;
    for_each_instantiation(db, mq, ty, |inst| {
        let rule = match apply_instantiation(db, mq, inst) {
            Ok(rule) => rule,
            Err(e) => {
                failed = Some(e);
                return ControlFlow::Break(());
            }
        };
        let iv = all_indices(db, &rule);
        if thresholds.accepts(&iv) {
            out.push(MqAnswer {
                inst: inst.clone(),
                indices: iv,
            });
        }
        ControlFlow::Continue(())
    })?;
    if let Some(e) = failed {
        return Err(e);
    }
    crate::engine::sort_answers(&mut out);
    Ok(out)
}

/// Decide the problem `⟨DB, MQ, I, k, T⟩`: is there a type-`T`
/// instantiation with `I(σ(MQ)) > k`? Stops at the first witness.
/// Application errors propagate like in [`find_all`].
pub fn decide(db: &Database, mq: &Metaquery, problem: MqProblem) -> Result<bool, InstError> {
    let mut found = false;
    let mut failed: Option<InstError> = None;
    for_each_instantiation(db, mq, problem.ty, |inst| {
        let rule = match apply_instantiation(db, mq, inst) {
            Ok(rule) => rule,
            Err(e) => {
                failed = Some(e);
                return ControlFlow::Break(());
            }
        };
        if index_value(db, &rule, problem.index) > problem.threshold {
            found = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })?;
    if let Some(e) = failed {
        return Err(e);
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::parse::parse_metaquery;
    use mq_relation::{ints, Frac};

    fn chain_db() -> Database {
        let mut db = Database::new();
        let p = db.add_relation("p", 2);
        let q = db.add_relation("q", 2);
        let r = db.add_relation("r", 2);
        for (a, b) in [(1, 10), (2, 20)] {
            db.insert(p, ints(&[a, b]));
        }
        for (a, b) in [(10, 100), (20, 200)] {
            db.insert(q, ints(&[a, b]));
        }
        for (a, b) in [(1, 100), (2, 200)] {
            db.insert(r, ints(&[a, b]));
        }
        db
    }

    #[test]
    fn finds_perfect_rule() {
        let db = chain_db();
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let answers = find_all(
            &db,
            &mq,
            InstType::Zero,
            Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
        )
        .unwrap();
        // r(X,Z) <- p(X,Y), q(Y,Z) holds perfectly; it must be among the
        // answers with cnf = cvr = sup = 1.
        let perfect = answers
            .iter()
            .filter(|a| a.indices.cnf == Frac::ONE && a.indices.cvr == Frac::ONE)
            .count();
        assert!(perfect >= 1, "expected the planted rule to be found");
    }

    #[test]
    fn decide_threshold_cuts() {
        let db = chain_db();
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let yes = decide(
            &db,
            &mq,
            MqProblem {
                index: IndexKind::Cnf,
                threshold: Frac::new(99, 100),
                ty: InstType::Zero,
            },
        )
        .unwrap();
        assert!(yes, "the planted rule has cnf = 1 > 0.99");
    }

    #[test]
    fn no_answers_above_one() {
        let db = chain_db();
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        // threshold 1 is not allowed by the problem definition (k < 1), but
        // the engine handles it: nothing exceeds 1 strictly.
        let answers = find_all(
            &db,
            &mq,
            InstType::Zero,
            Thresholds::single(IndexKind::Sup, Frac::ONE),
        )
        .unwrap();
        assert!(answers.is_empty());
    }
}
