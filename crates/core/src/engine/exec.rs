//! The plan executor: an interpreter over the [`crate::plan`] IR.
//!
//! One [`Executor`] lives inside each search engine (one per parallel
//! worker). It owns the three memo layers that make repeated plan
//! execution cheap:
//!
//! * **atom cache** — instantiated-atom bindings keyed by
//!   `(relation, terms)`: instantiations overwhelmingly share atom
//!   evaluations, so each distinct instantiated atom is evaluated once;
//! * **plan cache** — `(χ, λ atom keys) → plan root`, so re-visiting a
//!   vertex under the same λ assignment skips re-planning entirely;
//! * **result memo** — plan-node id → bindings, a dense vector aligned
//!   with the hash-consing [`PlanArena`]. Because node identity is the
//!   operator plus its operands, sibling plans that share a planned
//!   prefix share node ids, and the memo resumes them from the cached
//!   intermediate — the PR 2 partial-join memo, re-keyed from ad-hoc
//!   `(atom prefix, kept vars)` tuples to interned plan-node ids.
//!
//! The memos travel with the executor: the work-stealing scheduler keeps
//! one engine (and thus one executor) per worker, so every task a worker
//! steals reuses the slices accumulated by its previous tasks.
//!
//! In baseline mode ([`mq_relation::baseline_mode`]) the executor
//! reproduces the pre-optimization engine faithfully: atoms re-evaluated
//! at every use, node joins folded in raw λ order, no plans, no memos.

use crate::plan::{
    build_node_plan, AtomKey, CountOp, CountPlan, JoinAtomStats, PlanArena, PlanNodeId, PlanOp,
};
use mq_relation::{Bindings, Database, VarId};
use std::collections::HashMap;
use std::rc::Rc;

/// Interprets [`crate::plan`] IR against a database, memoizing per
/// plan-node id. Cheap to construct — one per search engine.
pub(crate) struct Executor<'a> {
    db: &'a Database,
    arena: PlanArena,
    /// Memo of instantiated-atom bindings, keyed by `(relation, terms)`.
    atom_cache: HashMap<AtomKey, Rc<Bindings>>,
    /// `(χ, λ atom keys) → plan root` — "decide once".
    plan_cache: HashMap<(Vec<VarId>, Vec<AtomKey>), PlanNodeId>,
    /// Plan-node id → result, aligned with the arena ("execute many").
    results: Vec<Option<Rc<Bindings>>>,
}

impl<'a> Executor<'a> {
    pub(crate) fn new(db: &'a Database) -> Self {
        Executor {
            db,
            arena: PlanArena::new(),
            atom_cache: HashMap::new(),
            plan_cache: HashMap::new(),
            results: Vec::new(),
        }
    }

    /// Evaluate `rel(terms)` once, memoized. In baseline mode the memo is
    /// bypassed so A/B timings measure the pre-optimization engine (which
    /// re-evaluated every atom at every use) faithfully.
    pub(crate) fn eval_atom(&mut self, key: AtomKey) -> Rc<Bindings> {
        if mq_relation::baseline_mode() {
            return Rc::new(Bindings::from_atom(self.db.relation(key.0), &key.1));
        }
        let db = self.db;
        Rc::clone(
            self.atom_cache
                .entry(key)
                .or_insert_with_key(|(rel, terms)| {
                    Rc::new(Bindings::from_atom(db.relation(*rel), terms))
                }),
        )
    }

    /// `π_χ(J(σi(λ(p_ν(i)))))`: plan (or fetch the cached plan for) the
    /// node join of `atom_keys` projected onto `chi`, then execute it.
    ///
    /// Planning uses the cost model of [`crate::plan::plan_join_order`]
    /// with the executor's own evaluated atoms as the statistics source
    /// (`len / distinct_keys` off the cached
    /// [`mq_relation::hashjoin::GroupIndex`]). The plan is keyed by
    /// `(χ, atom keys)` — not by decomposition vertex — so vertices with
    /// identical labels share one plan outright.
    pub(crate) fn node_join(&mut self, chi: &[VarId], atom_keys: Vec<AtomKey>) -> Rc<Bindings> {
        if mq_relation::baseline_mode() {
            // Pre-optimization engine: fold in raw λ order, no planning,
            // no memo — the A/B comparison target of `bench_report`.
            let mut join = Bindings::unit();
            for key in atom_keys {
                let b = self.eval_atom(key);
                join = join.join(&b);
                if join.is_empty() {
                    break;
                }
            }
            return Rc::new(join.project(chi));
        }
        let cache_key = (chi.to_vec(), atom_keys);
        if let Some(&root) = self.plan_cache.get(&cache_key) {
            return self.exec(root);
        }
        let atoms: Vec<Rc<Bindings>> = cache_key
            .1
            .iter()
            .map(|key| self.eval_atom(key.clone()))
            .collect();
        let stats: Vec<JoinAtomStats> = atoms
            .iter()
            .map(|b| JoinAtomStats {
                len: b.len(),
                vars: b.vars().to_vec(),
            })
            .collect();
        let root = build_node_plan(&mut self.arena, chi, &cache_key.1, &stats, |i, shared| {
            atoms[i].len() as f64 / atoms[i].distinct_keys(shared).max(1) as f64
        });
        self.plan_cache.insert(cache_key, root);
        self.exec(root)
    }

    /// Execute plan node `id`, memoized per node id. Recursion depth is
    /// the plan's atom count (plans are left-deep chains).
    ///
    /// Empty intermediates short-circuit: joins and semijoins both
    /// preserve emptiness, so the remaining pipeline is skipped and the
    /// empty intermediate itself is the node's (memoized) result — its
    /// columns are the prefix's kept variables, exactly like the engine
    /// before this refactor.
    pub(crate) fn exec(&mut self, id: PlanNodeId) -> Rc<Bindings> {
        if let Some(Some(hit)) = self.results.get(id.0 as usize) {
            return Rc::clone(hit);
        }
        let op = self.arena.op(id).clone();
        let out: Rc<Bindings> = match op {
            PlanOp::Scan { atom } => self.eval_atom(atom),
            PlanOp::Project { left, vars } => {
                let l = self.exec(left);
                if l.is_empty() {
                    l
                } else {
                    Rc::new(l.project(&vars))
                }
            }
            PlanOp::HashJoin { left, atom, keys } => {
                let l = self.exec(left);
                if l.is_empty() {
                    l
                } else {
                    let a = self.eval_atom(atom);
                    Rc::new(l.join_on(&a, &keys))
                }
            }
            PlanOp::Semijoin { left, atom, keys } => {
                let l = self.exec(left);
                if l.is_empty() {
                    l
                } else {
                    let a = self.eval_atom(atom);
                    Rc::new(l.semijoin_on(&a, &keys))
                }
            }
        };
        if self.results.len() < self.arena.len() {
            self.results.resize(self.arena.len(), None);
        }
        self.results[id.0 as usize] = Some(Rc::clone(&out));
        out
    }

    /// Execute a count-only plan over the given input slots — the
    /// cover/confidence semijoin counts and the Yannakakis support
    /// counts run through here, so every index computation is IR-driven.
    pub(crate) fn exec_count(&self, plan: &CountPlan, inputs: &[&Bindings]) -> usize {
        match &plan.op {
            CountOp::SemijoinCount { left, right } => inputs[*left].semijoin_count(inputs[*right]),
            CountOp::CountDistinct { input, vars } => inputs[*input].count_distinct(vars),
        }
    }
}
