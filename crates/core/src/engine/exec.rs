//! The plan executor: an interpreter over the [`crate::plan`] IR.
//!
//! One [`Executor`] lives inside each search engine (one per parallel
//! worker). It owns handles to the three memo layers that make repeated
//! plan execution cheap:
//!
//! * **atom cache** — instantiated-atom bindings keyed by
//!   `(relation, terms)`: instantiations overwhelmingly share atom
//!   evaluations, so each distinct instantiated atom is evaluated once;
//! * **plan cache** — `(χ, λ atom keys) → plan root`, so re-visiting a
//!   vertex under the same λ assignment skips re-planning entirely;
//! * **result memo** — plan-node id → bindings, aligned with the
//!   hash-consing [`PlanArena`]. Because node identity is the operator
//!   plus its operands, sibling plans that share a planned prefix share
//!   node ids, and the memo resumes them from the cached intermediate.
//!
//! The memos come in two backings:
//!
//! * **Shared** (the default) — handles into the search-global
//!   [`SharedMemos`] service: every scheduler worker reads and publishes
//!   into one memo, so an intermediate computed by any worker is a hit
//!   for all of them. Sound because every memo value is a deterministic
//!   function of its key and publication is first-writer-wins.
//! * **Private** (`MQ_SHARED_MEMO=0`) — the PR 3 layout: one arena, one
//!   atom/plan map and one dense id-indexed result vector per executor,
//!   traveling with the worker that owns it.
//!
//! In baseline mode ([`mq_relation::baseline_mode`]) the executor
//! reproduces the pre-optimization engine faithfully: atoms re-evaluated
//! at every use, node joins folded in raw λ order, no plans, no memos.

use crate::engine::memo::{PlanKey, SharedMemos};
use crate::plan::{
    build_node_plan_ordered, AtomKey, CountOp, CountPlan, JoinAtomStats, PlanArena, PlanNodeId,
    PlanOp,
};
use mq_obs::profile::{NodeStat, SearchProfile};
use mq_relation::{Bindings, Database, VarId};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The executor's memo backing: private per-worker slices, or handles
/// into the cross-worker shared memo service.
enum Memos {
    /// One memo slice per executor (the `MQ_SHARED_MEMO=0` escape
    /// hatch): an arena plus maps only this worker touches.
    Private {
        arena: PlanArena,
        /// Memo of instantiated-atom bindings, keyed by `(relation, terms)`.
        atom_cache: HashMap<AtomKey, Arc<Bindings>>,
        /// `(χ, λ atom keys) → plan root` — "decide once".
        plan_cache: HashMap<PlanKey, PlanNodeId>,
        /// Plan-node id → result, aligned with the arena ("execute many").
        results: Vec<Option<Arc<Bindings>>>,
    },
    /// Handles into the search-global shared memo service.
    Shared(Arc<SharedMemos>),
}

/// Interprets [`crate::plan`] IR against a database, memoizing per
/// plan-node id. Cheap to construct — one per search engine.
pub(crate) struct Executor<'a> {
    db: &'a Database,
    memos: Memos,
    /// The search's profile sink (`mq-obs`), when the caller asked for
    /// one. Node evals and memo hits accumulate in the worker-local
    /// fields below and flush into the shared profile exactly once — on
    /// drop — so the execution loop never touches a shared cache line.
    profile: Option<Arc<SearchProfile>>,
    /// Cached `profile.is_detailed()`: whether to keep per-node wall
    /// time / row counts (clock reads happen only when set).
    detailed: bool,
    /// Worker-local node evaluations (kernel actually ran).
    execs: u64,
    /// Worker-local result-memo hits.
    memo_hits: u64,
    /// Worker-local per-node detail, indexed by plan-node id.
    nodes: Vec<NodeStat>,
}

impl<'a> Executor<'a> {
    /// An executor over `db`. With `shared = Some(service)` all memo
    /// traffic goes through the cross-worker service; with `None` the
    /// executor owns private memo slices. `profile` (when given)
    /// receives this worker's node-eval totals — and per-node detail if
    /// it is a detailed profile — when the executor drops.
    pub(crate) fn new(
        db: &'a Database,
        shared: Option<Arc<SharedMemos>>,
        profile: Option<Arc<SearchProfile>>,
    ) -> Self {
        let memos = match shared {
            Some(s) => Memos::Shared(s),
            None => Memos::Private {
                arena: PlanArena::new(),
                atom_cache: HashMap::new(),
                plan_cache: HashMap::new(),
                results: Vec::new(),
            },
        };
        let detailed = profile.as_deref().is_some_and(SearchProfile::is_detailed);
        Executor {
            db,
            memos,
            profile,
            detailed,
            execs: 0,
            memo_hits: 0,
            nodes: Vec::new(),
        }
    }

    /// The detail slot of node `id`, grown on demand (plan-node ids are
    /// dense per arena).
    fn node_mut(&mut self, id: PlanNodeId) -> &mut NodeStat {
        let i = id.0 as usize;
        if self.nodes.len() <= i {
            self.nodes.resize(i + 1, NodeStat::default());
        }
        &mut self.nodes[i]
    }

    /// The trace clock, read only when per-node detail is being kept —
    /// the undetailed path stays free of clock syscalls.
    fn clock(&self) -> u64 {
        if self.detailed {
            mq_obs::trace::now_ns()
        } else {
            0
        }
    }

    /// Evaluate `rel(terms)` once, memoized. In baseline mode the memo is
    /// bypassed so A/B timings measure the pre-optimization engine (which
    /// re-evaluated every atom at every use) faithfully.
    pub(crate) fn eval_atom(&mut self, key: AtomKey) -> Arc<Bindings> {
        if mq_relation::baseline_mode() {
            return Arc::new(Bindings::from_atom(self.db.relation(key.0), &key.1));
        }
        let db = self.db;
        match &mut self.memos {
            Memos::Private { atom_cache, .. } => {
                Arc::clone(atom_cache.entry(key).or_insert_with_key(|(rel, terms)| {
                    Arc::new(Bindings::from_atom(db.relation(*rel), terms))
                }))
            }
            Memos::Shared(memos) => {
                // The service consults the search-local atom memo, then
                // (when seeded by the serving layer) the persistent
                // cross-search cache under the snapshot's generations.
                memos.atom_or_compute(key, |(rel, terms)| {
                    Arc::new(Bindings::from_atom(db.relation(*rel), terms))
                })
            }
        }
    }

    /// `π_χ(J(σi(λ(p_ν(i)))))`: plan (or fetch the cached plan for) the
    /// node join of `atom_keys` projected onto `chi`, then execute it.
    ///
    /// Planning uses the cost model of [`crate::plan::plan_join_order`]
    /// with the executor's own evaluated atoms as the statistics source
    /// (`len / distinct_keys` off the cached
    /// [`mq_relation::hashjoin::GroupIndex`]). The plan is keyed by
    /// `(χ, atom keys)` — not by decomposition vertex — so vertices with
    /// identical labels share one plan outright.
    pub(crate) fn node_join(&mut self, chi: &[VarId], atom_keys: Vec<AtomKey>) -> Arc<Bindings> {
        if mq_relation::baseline_mode() {
            // Pre-optimization engine: fold in raw λ order, no planning,
            // no memo — the A/B comparison target of `bench_report`.
            let mut join = Bindings::unit();
            for key in atom_keys {
                let b = self.eval_atom(key);
                join = join.join(&b);
                if join.is_empty() {
                    break;
                }
            }
            return Arc::new(join.project(chi));
        }
        let cache_key: PlanKey = (chi.to_vec(), atom_keys);
        let cached_root = match &self.memos {
            Memos::Private { plan_cache, .. } => plan_cache.get(&cache_key).copied(),
            Memos::Shared(memos) => memos.plans.get(&cache_key),
        };
        if let Some(root) = cached_root {
            return self.exec(root);
        }
        let atoms: Vec<Arc<Bindings>> = cache_key
            .1
            .iter()
            .map(|key| self.eval_atom(key.clone()))
            .collect();
        let stats: Vec<JoinAtomStats> = atoms
            .iter()
            .map(|b| JoinAtomStats {
                len: b.len(),
                vars: b.vars().to_vec(),
            })
            .collect();
        let expansion = |i: usize, shared: &[VarId]| {
            atoms[i].len() as f64 / atoms[i].distinct_keys(shared).max(1) as f64
        };
        // Costing probes row statistics (index builds); do it before any
        // arena lock so shared-mode planning never serializes workers on
        // O(rows) work.
        let order = crate::plan::plan_join_order(&stats, expansion);
        let root = match &mut self.memos {
            Memos::Private {
                arena, plan_cache, ..
            } => {
                let root = build_node_plan_ordered(arena, chi, &cache_key.1, &stats, &order);
                plan_cache.insert(cache_key, root);
                root
            }
            Memos::Shared(memos) => {
                // Interning is idempotent, so racing planners converge
                // on identical node ids; the plan cache then keeps the
                // first-published (equal) root. Only the pure intern
                // runs under the shared arena's write lock.
                let root = memos.intern_plan(|arena| {
                    build_node_plan_ordered(arena, chi, &cache_key.1, &stats, &order)
                });
                memos.plans.publish(cache_key, root)
            }
        };
        self.exec(root)
    }

    /// The memoized result of node `id`, if present.
    fn result_hit(&self, id: PlanNodeId) -> Option<Arc<Bindings>> {
        match &self.memos {
            Memos::Private { results, .. } => results.get(id.0 as usize).and_then(Clone::clone),
            Memos::Shared(memos) => memos.results.get(&id),
        }
    }

    /// Publish `out` as node `id`'s result; returns the canonical value
    /// (a racing worker's first-published result wins in shared mode —
    /// byte-identical either way, since node execution is deterministic).
    fn result_publish(&mut self, id: PlanNodeId, out: Arc<Bindings>) -> Arc<Bindings> {
        match &mut self.memos {
            Memos::Private { arena, results, .. } => {
                if results.len() < arena.len() {
                    results.resize(arena.len(), None);
                }
                results[id.0 as usize] = Some(Arc::clone(&out));
                out
            }
            Memos::Shared(memos) => memos.results.publish(id, out),
        }
    }

    /// The operator of node `id`.
    fn op(&self, id: PlanNodeId) -> PlanOp {
        match &self.memos {
            Memos::Private { arena, .. } => arena.op(id).clone(),
            Memos::Shared(memos) => memos.op(id),
        }
    }

    /// Execute plan node `id`, memoized per node id. Recursion depth is
    /// the plan's atom count (plans are left-deep chains).
    ///
    /// Empty intermediates short-circuit: joins and semijoins both
    /// preserve emptiness, so the remaining pipeline is skipped and the
    /// empty intermediate itself is the node's (memoized) result — its
    /// columns are the prefix's kept variables, exactly like the engine
    /// before this refactor.
    ///
    /// Profiling: memo hits and kernel executions bump worker-local
    /// counters unconditionally (two integer adds); wall time and row
    /// counts per node are kept only under a detailed profile, as
    /// **self** time — the clock around a node's own kernel, with the
    /// child's recursion subtracted — so a plan's node times sum to the
    /// executor total instead of multiply-counting shared prefixes.
    pub(crate) fn exec(&mut self, id: PlanNodeId) -> Arc<Bindings> {
        if let Some(hit) = self.result_hit(id) {
            self.memo_hits += 1;
            if self.detailed {
                self.node_mut(id).memo_hits += 1;
            }
            return hit;
        }
        let op = self.op(id);
        self.execs += 1;
        let t0 = self.clock();
        let mut child_ns = 0u64;
        let mut rows_in = 0u64;
        let out: Arc<Bindings> = match op {
            PlanOp::Scan { atom } => self.eval_atom(atom),
            PlanOp::Project { left, vars } => {
                let tc = self.clock();
                let l = self.exec(left);
                child_ns = self.clock().saturating_sub(tc);
                rows_in = l.len() as u64;
                if l.is_empty() {
                    l
                } else {
                    Arc::new(l.project(&vars))
                }
            }
            PlanOp::HashJoin { left, atom, keys } => {
                let tc = self.clock();
                let l = self.exec(left);
                child_ns = self.clock().saturating_sub(tc);
                rows_in = l.len() as u64;
                if l.is_empty() {
                    l
                } else {
                    let a = self.eval_atom(atom);
                    rows_in += a.len() as u64;
                    Arc::new(l.join_on(&a, &keys))
                }
            }
            PlanOp::Semijoin { left, atom, keys } => {
                let tc = self.clock();
                let l = self.exec(left);
                child_ns = self.clock().saturating_sub(tc);
                rows_in = l.len() as u64;
                if l.is_empty() {
                    l
                } else {
                    let a = self.eval_atom(atom);
                    rows_in += a.len() as u64;
                    Arc::new(l.semijoin_on(&a, &keys))
                }
            }
        };
        if self.detailed {
            let self_ns = self.clock().saturating_sub(t0).saturating_sub(child_ns);
            let rows_out = out.len() as u64;
            let stat = self.node_mut(id);
            stat.execs += 1;
            stat.wall_ns += self_ns;
            stat.rows_in += rows_in;
            stat.rows_out += rows_out;
        }
        self.result_publish(id, out)
    }

    /// Execute a count-only plan over the given input slots — the
    /// cover/confidence semijoin counts and the Yannakakis support
    /// counts run through here, so every index computation is IR-driven.
    pub(crate) fn exec_count(&self, plan: &CountPlan, inputs: &[&Bindings]) -> usize {
        match &plan.op {
            CountOp::SemijoinCount { left, right } => inputs[*left].semijoin_count(inputs[*right]),
            CountOp::CountDistinct { input, vars } => inputs[*input].count_distinct(vars),
        }
    }
}

impl Drop for Executor<'_> {
    /// Flush the worker-local profile accumulation exactly once —
    /// engines (and their executors) drop when their worker finishes,
    /// so the shared profile is touched O(workers), not O(nodes).
    fn drop(&mut self) {
        let Some(profile) = &self.profile else {
            return;
        };
        profile.node_execs.fetch_add(self.execs, Ordering::Relaxed);
        profile
            .node_memo_hits
            .fetch_add(self.memo_hits, Ordering::Relaxed);
        profile.merge_nodes(&self.nodes);
    }
}
