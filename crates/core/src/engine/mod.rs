//! Metaquery answering engines.
//!
//! Two implementations of the same contract:
//!
//! * [`naive`] — enumerate every instantiation, materialize the joins, and
//!   measure the indices directly; the correctness baseline;
//! * [`find_rules`] — the `findRules` algorithm of Figure 4: a hypertree
//!   decomposition of the metaquery body drives partial-instantiation
//!   enumeration with semijoin reduction and support-based pruning.
//!
//! Both return, for a database `DB`, metaquery `MQ`, instantiation type
//! `T` and thresholds, all type-`T` instantiations `σ` with
//! `sup(σ(MQ)) > k_sup`, `cvr(σ(MQ)) > k_cvr` and `cnf(σ(MQ)) > k_cnf`.

pub(crate) mod exec;
pub mod find_rules;
pub mod memo;
pub mod naive;
pub mod parallel;

use crate::index::{IndexKind, IndexValues};
use crate::instantiate::{InstType, Instantiation};
use mq_relation::Frac;
use std::fmt;

/// Strict lower-bound thresholds for the three indices; `None` disables a
/// constraint (the decision problems of §3 constrain one index at a time).
/// `Hash` so a request `(metaquery, type, thresholds)` can key the serving
/// layer's in-flight dedup map.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Thresholds {
    /// Keep rules with `sup > ksup`.
    pub sup: Option<Frac>,
    /// Keep rules with `cvr > kcvr`.
    pub cvr: Option<Frac>,
    /// Keep rules with `cnf > kcnf`.
    pub cnf: Option<Frac>,
}

impl Thresholds {
    /// No constraints: every instantiation qualifies.
    pub fn none() -> Self {
        Thresholds::default()
    }

    /// Constrain a single index, as in the decision problems
    /// `⟨DB, MQ, I, k, T⟩`.
    pub fn single(kind: IndexKind, k: Frac) -> Self {
        let mut t = Thresholds::default();
        match kind {
            IndexKind::Sup => t.sup = Some(k),
            IndexKind::Cvr => t.cvr = Some(k),
            IndexKind::Cnf => t.cnf = Some(k),
        }
        t
    }

    /// Constrain all three indices.
    pub fn all(sup: Frac, cvr: Frac, cnf: Frac) -> Self {
        Thresholds {
            sup: Some(sup),
            cvr: Some(cvr),
            cnf: Some(cnf),
        }
    }

    /// Does a rule with these index values qualify?
    pub fn accepts(&self, iv: &IndexValues) -> bool {
        self.sup.is_none_or(|k| iv.sup > k)
            && self.cvr.is_none_or(|k| iv.cvr > k)
            && self.cnf.is_none_or(|k| iv.cnf > k)
    }
}

/// One answer: an instantiation and its (exact) index values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MqAnswer {
    /// The qualifying instantiation.
    pub inst: Instantiation,
    /// Its exact plausibility indices.
    pub indices: IndexValues,
}

/// A metaquerying decision-problem instance `⟨DB, MQ, I, k, T⟩` (§3.2).
#[derive(Clone, Copy, Debug)]
pub struct MqProblem {
    /// The plausibility index `I`.
    pub index: IndexKind,
    /// The threshold `k ∈ [0, 1)`.
    pub threshold: Frac,
    /// The instantiation type `T`.
    pub ty: InstType,
}

impl fmt::Display for MqProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨DB, MQ, {}, {}, {}⟩",
            self.index,
            self.threshold,
            self.ty.tag()
        )
    }
}

/// Sort answers canonically (by instantiation) so engines can be compared.
pub fn sort_answers(answers: &mut [MqAnswer]) {
    answers.sort_by(|a, b| a.inst.cmp(&b.inst));
}
