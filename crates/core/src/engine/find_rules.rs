//! The `findRules` algorithm (Figure 4).
//!
//! Answering proceeds in the paper's three phases:
//!
//! 1. **findBodies** — a bottom-up visit of a complete hypertree
//!    decomposition `⟨T, χ, λ⟩` of `body(MQ)`. Visiting vertex `p_ν(i)`
//!    extends the current partial instantiation `σb` with instantiations
//!    `σi` of the not-yet-mapped patterns in `λ(p_ν(i))`, computes
//!    `r[i] := π_χ(J(σi(λ(p_ν(i)))))`, semijoins it with the children's
//!    `r[·]` (the *first half* of a full reducer, interleaved with the
//!    search), and prunes the branch when `r[i]` is empty.
//! 2. At the root, the *second half* of the full reducer produces globally
//!    consistent reduced relations `s[·]`, from which `enoughSupport`
//!    evaluates `sup(σb(body)) > k_sup` exactly and cheaply.
//! 3. **findHeads** — the body join `b = J(σb(body(MQ)))` is assembled
//!    from the reduced relations; every head instantiation `σh` that
//!    agrees with `σb` is checked with two semijoins:
//!    `cvr = |h ⋉ b| / |h|` and `cnf = |b ⋉ h| / |b|`.
//!
//! The decomposition is computed once: by Proposition 4.9, applying any
//! instantiation `σ` to the `λ` labels preserves a width-`c`
//! decomposition, so one decomposition serves every instantiation.
//!
//! ## Architecture
//!
//! The engine is three explicit layers (see `ARCHITECTURE.md`):
//!
//! * **Planner** ([`crate::plan`]) — a pure function from a vertex's χ
//!   and λ-atom statistics to a hash-consed [`crate::plan::PlanOp`] DAG;
//! * **Executor** ([`super::exec`]) — interprets plan nodes against
//!   [`Bindings`], memoizing per plan-node id (atom cache, plan cache,
//!   result memo); the count-only cvr/cnf/sup paths run through it too;
//! * **Scheduler** ([`super::parallel`]) — splits the search over
//!   instantiation prefixes up to `MQ_SPLIT_DEPTH` and drains the task
//!   deque with work-stealing workers, merging results in enumeration
//!   order so answers are byte-identical to [`find_rules_seq`].
//!
//! This module is the remaining orchestration: the immutable [`Setup`]
//! (decomposition, candidates, thresholds, enumeration order) and the
//! per-search [`Engine`] (assignment stacks, node relations, executor)
//! driving the three phases.

use crate::ast::{Metaquery, Pred, PredVarId};
use crate::engine::exec::Executor;
use crate::engine::{MqAnswer, MqProblem, Thresholds};
use crate::index::IndexValues;
use crate::instantiate::{
    check_fixed_schemes, pattern_candidates, InstError, InstType, Instantiation, PatternMap,
};
use crate::plan::{AtomKey, CountPlan};
use mq_cq::hypertree::{hypertree_width_of_sets, Hypertree};
use mq_relation::{Bindings, Database, Frac, RelId, Term, VarId};
use std::collections::{BTreeSet, HashMap};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Find all type-`ty` instantiations whose indices clear `thresholds`,
/// using the Figure 4 algorithm with the search run on the work-stealing
/// scheduler ([`super::parallel`]). Answers match
/// [`crate::engine::naive`] exactly (including the degenerate
/// no-thresholds case) and are returned in sorted order.
pub fn find_rules(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
) -> Result<Vec<MqAnswer>, InstError> {
    validate(db, mq, ty)?;
    let setup = Setup::new(db, mq, ty, thresholds);
    let mut out = super::parallel::run(&setup);
    crate::engine::sort_answers(&mut out);
    Ok(out)
}

/// [`find_rules`] with an **externally supplied memo service** — the
/// serving layer's entry point. The search reads and publishes into
/// `memos` instead of creating a fresh service, so a catalog can seed
/// the atom layer from its persistent cross-search [`AtomCache`]
/// (`SharedMemos::with_persistent_atoms`) and read per-search hit rates
/// off the instance afterwards. Answers are byte-identical to
/// [`find_rules`]/[`find_rules_seq`]: every memo value is a
/// deterministic function of its key and the snapshot the generations
/// describe (see the memo-sharing contract in `ARCHITECTURE.md`).
///
/// In baseline mode the supplied service is ignored (the baseline engine
/// bypasses every memo by design).
pub fn find_rules_shared(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
    memos: Arc<super::memo::SharedMemos>,
) -> Result<Vec<MqAnswer>, InstError> {
    validate(db, mq, ty)?;
    let setup = Setup::with_memo_service(db, mq, ty, thresholds, Some(memos));
    let mut out = super::parallel::run(&setup);
    crate::engine::sort_answers(&mut out);
    Ok(out)
}

/// [`find_rules_shared`] under a **wall-clock budget** — the serving
/// layer's deadline entry point. The search checks the deadline
/// cooperatively (in the engine's enumeration loop and in the
/// scheduler's task loop) and, once it expires, unwinds and returns
/// [`InstError::DeadlineExceeded`] instead of a partial answer set —
/// partial answers are never surfaced, so every `Ok` is still
/// byte-identical to [`find_rules_seq`]. `memos: None` keeps the
/// default memo-service resolution; `max_wall_ms: None` runs unbounded
/// (exactly [`find_rules_shared`] / [`find_rules`]).
pub fn find_rules_budgeted(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
    memos: Option<Arc<super::memo::SharedMemos>>,
    max_wall_ms: Option<u64>,
) -> Result<Vec<MqAnswer>, InstError> {
    find_rules_instrumented(db, mq, ty, thresholds, memos, max_wall_ms, None, 0)
}

/// [`find_rules_budgeted`] with observability attached — the fully
/// instrumented serving/bench entry point. `profile` (when given)
/// receives the search's scheduler-task and node-eval totals, plus
/// per-plan-node wall time / rows / memo hits when it was built
/// [`mq_obs::SearchProfile::detailed`]. `req_id` (0 = unattributed)
/// scopes every worker's trace spans to the serving request, so
/// `trace <req-id>` shows scheduler tasks next to the session spans.
/// Neither affects answers: `Ok` results stay byte-identical to
/// [`find_rules_seq`].
#[allow(clippy::too_many_arguments)]
pub fn find_rules_instrumented(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
    memos: Option<Arc<super::memo::SharedMemos>>,
    max_wall_ms: Option<u64>,
    profile: Option<Arc<mq_obs::SearchProfile>>,
    req_id: u64,
) -> Result<Vec<MqAnswer>, InstError> {
    validate(db, mq, ty)?;
    let mut setup = Setup::with_memo_service(db, mq, ty, thresholds, memos);
    setup.deadline = max_wall_ms.map(SearchDeadline::new);
    setup.profile = profile;
    setup.obs_req = req_id;
    // An already-expired budget (e.g. 0 ms) fails before any work: the
    // engines only read the clock every 64th poll, so a tiny search
    // could otherwise finish under an expired deadline.
    if let Some(dl) = &setup.deadline {
        if dl.check() {
            return Err(InstError::DeadlineExceeded {
                budget_ms: dl.budget_ms,
            });
        }
    }
    let mut out = super::parallel::run(&setup);
    if let Some(dl) = &setup.deadline {
        if dl.is_expired() {
            return Err(InstError::DeadlineExceeded {
                budget_ms: dl.budget_ms,
            });
        }
    }
    crate::engine::sort_answers(&mut out);
    Ok(out)
}

/// Single-threaded `findRules` (the parallel driver's reference). Public
/// so benchmarks and the determinism regression test can compare against
/// [`find_rules`].
pub fn find_rules_seq(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
) -> Result<Vec<MqAnswer>, InstError> {
    validate(db, mq, ty)?;
    let setup = Setup::new(db, mq, ty, thresholds);
    let mut out = collect_sequential(&setup);
    crate::engine::sort_answers(&mut out);
    Ok(out)
}

/// Run the whole search on the calling thread, collecting every answer.
pub(crate) fn collect_sequential(setup: &Setup) -> Vec<MqAnswer> {
    let mut out = Vec::new();
    {
        let mut engine = Engine::new(setup, |ans: &MqAnswer| {
            out.push(ans.clone());
            ControlFlow::Continue(())
        });
        let _ = engine.find_bodies(0);
    }
    out
}

/// Decide `⟨DB, MQ, I, k, T⟩` with `findRules`, stopping at the first
/// witness.
pub fn decide(db: &Database, mq: &Metaquery, problem: MqProblem) -> Result<bool, InstError> {
    let mut found = false;
    find_rules_with(
        db,
        mq,
        problem.ty,
        Thresholds::single(problem.index, problem.threshold),
        |_| {
            found = true;
            ControlFlow::Break(())
        },
    )?;
    Ok(found)
}

/// Streaming variant: invoke `f` on each answer; `Break` stops the search.
/// Returns `true` if stopped early. Always sequential (streaming order is
/// the enumeration order).
pub fn find_rules_with(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
    f: impl FnMut(&MqAnswer) -> ControlFlow<()>,
) -> Result<bool, InstError> {
    find_rules_with_memos(db, mq, ty, thresholds, None, f)
}

/// [`find_rules_with`] with an optionally supplied memo service (`None`
/// keeps the default per-search service resolution) — the streaming
/// sibling of [`find_rules_shared`], used by serving-layer callers that
/// want early termination under a persistent atom cache.
pub fn find_rules_with_memos(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
    memos: Option<Arc<super::memo::SharedMemos>>,
    f: impl FnMut(&MqAnswer) -> ControlFlow<()>,
) -> Result<bool, InstError> {
    validate(db, mq, ty)?;
    let setup = Setup::with_memo_service(db, mq, ty, thresholds, memos);
    let mut engine = Engine::new(&setup, f);
    let stopped = engine.find_bodies(0).is_break();
    Ok(stopped)
}

fn validate(db: &Database, mq: &Metaquery, ty: InstType) -> Result<(), InstError> {
    if ty != InstType::Two && !mq.is_pure() {
        return Err(InstError::NotPure);
    }
    if !mq.is_safe() {
        return Err(InstError::UnsafeNegation);
    }
    check_fixed_schemes(db, mq)?;
    assert!(!mq.body.is_empty(), "metaquery body must be non-empty");
    Ok(())
}

/// The diagnostic facts `findRules` precomputes; exposed so benchmarks can
/// report the decomposition width `c` of Theorem 4.12.
#[derive(Clone, Debug)]
pub struct BodyDecomposition {
    /// The hypertree width of `body(MQ)`.
    pub width: usize,
    /// Number of decomposition vertices.
    pub vertices: usize,
}

/// Compute `body(MQ)`'s hypertree width and decomposition size.
pub fn body_decomposition(mq: &Metaquery) -> BodyDecomposition {
    let edges: Vec<BTreeSet<VarId>> = mq.body.iter().map(|l| l.var_set()).collect();
    let (width, ht) = hypertree_width_of_sets(&edges).expect("non-empty body");
    BodyDecomposition {
        width,
        vertices: ht.len(),
    }
}

/// A cooperative wall-clock deadline shared by every worker of one
/// search. Workers poll it ([`SearchDeadline::check`]) at enumeration
/// and task boundaries; the first poll past the deadline latches
/// `expired`, after which every poll is a cheap atomic load and the
/// whole search unwinds without further clock reads. Latching matters
/// for determinism of the *error*: once any worker observes expiry the
/// search is doomed, so [`find_rules_budgeted`] reports
/// [`InstError::DeadlineExceeded`] rather than whatever partial answers
/// happened to be merged.
pub(crate) struct SearchDeadline {
    at: Instant,
    /// The configured budget, echoed back in the error.
    pub(crate) budget_ms: u64,
    expired: AtomicBool,
}

impl SearchDeadline {
    pub(crate) fn new(budget_ms: u64) -> Self {
        SearchDeadline {
            at: Instant::now() + Duration::from_millis(budget_ms),
            budget_ms,
            expired: AtomicBool::new(false),
        }
    }

    /// Read the clock (unless already latched): `true` once the budget
    /// has run out.
    pub(crate) fn check(&self) -> bool {
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        if Instant::now() >= self.at {
            self.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Whether any poll has observed expiry (no clock read).
    pub(crate) fn is_expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }
}

/// Everything `findRules` computes **once** per (database, metaquery,
/// type, thresholds) — immutable and shared by every search engine,
/// including parallel workers.
pub(crate) struct Setup<'a> {
    pub(crate) db: &'a Database,
    mq: &'a Metaquery,
    thresholds: Thresholds,
    /// `true` when a rule with all-zero indices would be accepted; in that
    /// case empty-join pruning must be disabled to match the naive engine.
    zero_ok: bool,

    ht: Hypertree,
    /// Bottom-up visit: postorder node list (the paper's ν).
    post: Vec<usize>,
    /// node -> its postorder position.
    pos_of: Vec<usize>,
    /// Per node: its χ label as a sorted variable list (what node joins
    /// project onto).
    chi_sorted: Vec<Vec<VarId>>,

    /// Global pattern count and scheme info. Pattern index 0 is the head
    /// pattern when the head is a pattern; body patterns follow in order.
    head_is_pattern: bool,
    /// body scheme index -> global pattern index (None if fixed atom).
    body_pattern: Vec<Option<usize>>,
    /// negated body scheme index -> global pattern index (None if fixed).
    neg_pattern: Vec<Option<usize>>,
    /// Per global pattern: candidate relation -> slot maps.
    pub(crate) candidates: Vec<HashMap<RelId, Vec<Vec<Option<usize>>>>>,
    /// Per global pattern: pre-allocated fresh padding variables, one per
    /// relation position (type-2); index j pads position j.
    fresh_slots: Vec<Vec<VarId>>,
    /// Per global pattern: its predicate variable.
    pub(crate) pattern_pv: Vec<PredVarId>,
    /// Body patterns in the order `find_bodies` first assigns them —
    /// the scheduler's split axis.
    pub(crate) enum_order: Vec<usize>,
    /// The count-only plan behind both cover and confidence:
    /// `|inputs[0] ⋉ inputs[1]|` (cvr feeds `[h, b]`, cnf `[b, h]`).
    semijoin_count_plan: CountPlan,
    /// The cross-worker shared memo service (atoms, plans, node
    /// results), created once per search when `MQ_SHARED_MEMO` is on
    /// (the default) — or supplied by the serving layer, possibly seeded
    /// with a persistent cross-search atom cache — and handed to every
    /// worker's executor. `None` means each worker warms a private memo
    /// slice (the escape hatch, and baseline mode — which bypasses memos
    /// anyway).
    pub(crate) shared_memos: Option<Arc<super::memo::SharedMemos>>,
    /// Optional wall-clock budget, polled cooperatively by every engine
    /// and by the scheduler's task loop. `None` (every entry point but
    /// [`find_rules_budgeted`]) is a single branch on the hot path.
    pub(crate) deadline: Option<SearchDeadline>,
    /// Optional per-search profile sink (`mq-obs`): scheduler tasks and
    /// executor node evals always, per-plan-node detail when the profile
    /// is detailed. `None` everywhere but the serving/bench entry point
    /// ([`find_rules_instrumented`]).
    pub(crate) profile: Option<Arc<mq_obs::SearchProfile>>,
    /// Request id the search's trace spans are attributed to (0 = none):
    /// scheduler workers enter this scope so spans they record land on
    /// the same request as the serving thread's.
    pub(crate) obs_req: u64,
}

impl<'a> Setup<'a> {
    pub(crate) fn new(
        db: &'a Database,
        mq: &'a Metaquery,
        ty: InstType,
        thresholds: Thresholds,
    ) -> Self {
        Setup::with_memo_service(db, mq, ty, thresholds, None)
    }

    /// [`Setup::new`] with an externally supplied memo service. `None`
    /// resolves the default (fresh service when shared memos are
    /// enabled); `Some` is honored unconditionally — except in baseline
    /// mode, which bypasses every memo to reproduce the pre-optimization
    /// engine faithfully.
    pub(crate) fn with_memo_service(
        db: &'a Database,
        mq: &'a Metaquery,
        ty: InstType,
        thresholds: Thresholds,
        external_memos: Option<Arc<super::memo::SharedMemos>>,
    ) -> Self {
        // Decomposition of the body literal schemes' ordinary variables.
        let edges: Vec<BTreeSet<VarId>> = mq.body.iter().map(|l| l.var_set()).collect();
        let (_, mut ht) = hypertree_width_of_sets(&edges).expect("non-empty body");
        ht.complete_edges(edges.len());
        let post = ht.postorder();
        let mut pos_of = vec![0usize; ht.len()];
        for (i, &n) in post.iter().enumerate() {
            pos_of[n] = i;
        }
        let chi_sorted: Vec<Vec<VarId>> = ht
            .nodes
            .iter()
            .map(|n| n.chi.iter().copied().collect())
            .collect();

        // Global pattern bookkeeping (head first, as in rep(MQ)).
        let head_is_pattern = mq.head.is_pattern();
        let mut schemes = Vec::new();
        if head_is_pattern {
            schemes.push(&mq.head);
        }
        let mut body_pattern = Vec::with_capacity(mq.body.len());
        for l in &mq.body {
            if l.is_pattern() {
                body_pattern.push(Some(schemes.len()));
                schemes.push(l);
            } else {
                body_pattern.push(None);
            }
        }
        let mut neg_pattern = Vec::with_capacity(mq.neg_body.len());
        for l in &mq.neg_body {
            if l.is_pattern() {
                neg_pattern.push(Some(schemes.len()));
                schemes.push(l);
            } else {
                neg_pattern.push(None);
            }
        }
        let candidates: Vec<_> = schemes
            .iter()
            .map(|s| pattern_candidates(db, s, ty))
            .collect();
        let pattern_pv: Vec<PredVarId> = schemes
            .iter()
            .map(|s| match s.pred {
                Pred::Var(p) => p,
                Pred::Rel(_) => unreachable!("patterns have predicate variables"),
            })
            .collect();
        // Fresh padding variables: one per pattern per possible position.
        let mut pool = mq.vars.clone();
        let max_arity = db.max_arity();
        let fresh_slots: Vec<Vec<VarId>> = schemes
            .iter()
            .map(|_| (0..max_arity).map(|_| pool.fresh()).collect())
            .collect();

        // The order `find_bodies` first assigns body patterns: postorder
        // vertices, each vertex's λ patterns in label order, first
        // occurrence only. The scheduler splits tasks along a prefix of
        // this order, so it must mirror `enum_node` exactly.
        let mut seen = vec![false; schemes.len()];
        let mut enum_order = Vec::new();
        for &node in &post {
            for &bi in &ht.nodes[node].lambda {
                if let Some(pidx) = body_pattern[bi] {
                    if !seen[pidx] {
                        seen[pidx] = true;
                        enum_order.push(pidx);
                    }
                }
            }
        }

        let zero = IndexValues {
            sup: Frac::ZERO,
            cnf: Frac::ZERO,
            cvr: Frac::ZERO,
        };
        Setup {
            db,
            mq,
            thresholds,
            zero_ok: thresholds.accepts(&zero),
            ht,
            post,
            pos_of,
            chi_sorted,
            head_is_pattern,
            body_pattern,
            neg_pattern,
            candidates,
            fresh_slots,
            pattern_pv,
            enum_order,
            semijoin_count_plan: CountPlan::semijoin_count(0, 1),
            shared_memos: if mq_relation::baseline_mode() {
                None
            } else {
                external_memos.or_else(|| {
                    super::memo::shared_memo_enabled()
                        .then(|| Arc::new(super::memo::SharedMemos::new()))
                })
            },
            deadline: None,
            profile: None,
            obs_req: 0,
        }
    }
}

/// One pre-pinned pattern assignment of a scheduler task: pattern index,
/// relation, slot map.
pub(crate) type PrefixAssign = (usize, RelId, Vec<Option<usize>>);

impl Setup<'_> {
    /// The deterministic partition of the search space used by the
    /// scheduler: every combination of candidate assignments for the
    /// first `depth` patterns in [`Setup::enum_order`], generated in
    /// exactly the order `enum_node` would enumerate them (including
    /// predicate-variable locking between patterns sharing a `pv`).
    /// Empty when the body binds no pattern.
    pub(crate) fn prefix_tasks(&self, depth: usize) -> Vec<Vec<PrefixAssign>> {
        let pats: Vec<usize> = self.enum_order.iter().copied().take(depth.max(1)).collect();
        let mut tasks = Vec::new();
        if pats.is_empty() {
            return tasks;
        }
        let mut locked: HashMap<PredVarId, (RelId, usize)> = HashMap::new();
        let mut cur: Vec<PrefixAssign> = Vec::with_capacity(pats.len());
        self.gen_prefix(&pats, 0, &mut locked, &mut cur, &mut tasks);
        tasks
    }

    fn gen_prefix(
        &self,
        pats: &[usize],
        k: usize,
        locked: &mut HashMap<PredVarId, (RelId, usize)>,
        cur: &mut Vec<PrefixAssign>,
        out: &mut Vec<Vec<PrefixAssign>>,
    ) {
        if k == pats.len() {
            out.push(cur.clone());
            return;
        }
        let pidx = pats[k];
        let pv = self.pattern_pv[pidx];
        let rels: Vec<RelId> = match locked.get(&pv).map(|&(r, _)| r) {
            Some(r) if self.candidates[pidx].contains_key(&r) => vec![r],
            Some(_) => Vec::new(),
            None => {
                let mut rels: Vec<RelId> = self.candidates[pidx].keys().copied().collect();
                rels.sort();
                rels
            }
        };
        for rel in rels {
            locked
                .entry(pv)
                .and_modify(|e| e.1 += 1)
                .or_insert((rel, 1));
            for slots in &self.candidates[pidx][&rel] {
                cur.push((pidx, rel, slots.clone()));
                self.gen_prefix(pats, k + 1, locked, cur, out);
                cur.pop();
            }
            match locked.get_mut(&pv) {
                Some(e) if e.1 == 1 => {
                    locked.remove(&pv);
                }
                Some(e) => e.1 -= 1,
                None => {}
            }
        }
    }
}

/// Per-search mutable state: assignment stacks, node relations, and the
/// plan executor with its memos. Cheap to construct — one per worker,
/// reused across every task the worker steals (so memo slices accumulate).
pub(crate) struct Engine<'a, 'b, F> {
    setup: &'b Setup<'a>,
    exec: Executor<'a>,
    f: F,
    /// Search state: per-pattern assignment.
    assign: Vec<Option<PatternMap>>,
    /// Predicate variable -> (relation, how many patterns pinned it).
    pv_rel: HashMap<PredVarId, (RelId, usize)>,
    /// Per postorder position: the reduced node relation `r[i]`.
    r: Vec<Option<Bindings>>,
    /// Deadline poll counter: the clock is read every 64th poll (and
    /// never when the setup has no deadline).
    ticks: u32,
}

impl<'a, 'b, F: FnMut(&MqAnswer) -> ControlFlow<()>> Engine<'a, 'b, F> {
    pub(crate) fn new(setup: &'b Setup<'a>, f: F) -> Self {
        let n_patterns = setup.candidates.len();
        let n_pos = setup.post.len();
        Engine {
            setup,
            exec: Executor::new(setup.db, setup.shared_memos.clone(), setup.profile.clone()),
            f,
            assign: vec![None; n_patterns],
            pv_rel: HashMap::new(),
            r: vec![None; n_pos],
            ticks: 0,
        }
    }

    /// Cooperative deadline poll. A counter keeps the common case to one
    /// branch + one increment; every 64th poll reads the clock. Once the
    /// deadline latches, every poll short-circuits `true` so the
    /// recursion unwinds immediately.
    fn over_deadline(&mut self) -> bool {
        let Some(dl) = &self.setup.deadline else {
            return false;
        };
        if dl.is_expired() {
            return true;
        }
        self.ticks = self.ticks.wrapping_add(1);
        self.ticks.is_multiple_of(64) && dl.check()
    }

    /// Pin pattern `pidx` to `(rel, slots)` before the search starts (the
    /// scheduler's partition points). Mirrors one iteration of the
    /// `enum_node` candidate loop, including the shared-`pv` lock count.
    fn preassign(&mut self, pidx: usize, rel: RelId, slots: Vec<Option<usize>>) {
        let pv = self.setup.pattern_pv[pidx];
        self.pv_rel
            .entry(pv)
            .and_modify(|e| e.1 += 1)
            .or_insert((rel, 1));
        self.assign[pidx] = Some(PatternMap { rel, slots });
    }

    /// Undo a [`Engine::preassign`].
    fn unassign(&mut self, pidx: usize) {
        self.assign[pidx] = None;
        self.unpin(self.setup.pattern_pv[pidx]);
    }

    /// Run one scheduler task: pin the prefix, search the remainder,
    /// unpin. The executor's memos survive across tasks.
    pub(crate) fn run_prefix_task(&mut self, task: &[PrefixAssign]) {
        for (pidx, rel, slots) in task {
            self.preassign(*pidx, *rel, slots.clone());
        }
        let _ = self.find_bodies(0);
        for (pidx, _, _) in task {
            self.unassign(*pidx);
        }
    }

    fn eval_atom(&mut self, rel: RelId, terms: Vec<Term>) -> Arc<Bindings> {
        self.exec.eval_atom((rel, terms))
    }

    /// Instantiated terms for body scheme `bi` under the current (partial)
    /// assignment. Only called when the scheme is fixed or assigned.
    fn body_atom_terms(&self, bi: usize) -> AtomKey {
        let setup = self.setup;
        let scheme = &setup.mq.body[bi];
        match setup.body_pattern[bi] {
            None => {
                let name = match &scheme.pred {
                    Pred::Rel(n) => n,
                    Pred::Var(_) => unreachable!(),
                };
                let rel = setup.db.rel_id(name).expect("checked in setup");
                (rel, scheme.args.iter().map(|&v| Term::Var(v)).collect())
            }
            Some(pidx) => {
                let map = self.assign[pidx].as_ref().expect("assigned");
                let terms = map
                    .slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| match slot {
                        Some(i) => Term::Var(scheme.args[*i]),
                        None => Term::Var(setup.fresh_slots[pidx][j]),
                    })
                    .collect();
                (map.rel, terms)
            }
        }
    }

    fn eval_body_atom(&mut self, bi: usize) -> Arc<Bindings> {
        let (rel, terms) = self.body_atom_terms(bi);
        self.eval_atom(rel, terms)
    }

    /// `π_χ(J(σi(λ(p_ν(i)))))` for vertex `node`: collect the λ atoms'
    /// instantiated keys and hand them to the executor, which plans
    /// (memoized by `(χ, atoms)`) and executes (memoized by plan-node id).
    fn eval_node_join(&mut self, node: usize, lambda: &[usize]) -> Arc<Bindings> {
        let keys: Vec<AtomKey> = lambda.iter().map(|&bi| self.body_atom_terms(bi)).collect();
        self.exec.node_join(&self.setup.chi_sorted[node], keys)
    }

    /// Instantiated terms for negated body scheme `ni` (must be fixed or
    /// assigned).
    fn neg_atom_terms(&self, ni: usize) -> AtomKey {
        let setup = self.setup;
        let scheme = &setup.mq.neg_body[ni];
        match setup.neg_pattern[ni] {
            None => {
                let name = match &scheme.pred {
                    Pred::Rel(n) => n,
                    Pred::Var(_) => unreachable!(),
                };
                let rel = setup.db.rel_id(name).expect("checked in setup");
                (rel, scheme.args.iter().map(|&v| Term::Var(v)).collect())
            }
            Some(pidx) => {
                let map = self.assign[pidx].as_ref().expect("assigned");
                let terms = map
                    .slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| match slot {
                        Some(i) => Term::Var(scheme.args[*i]),
                        None => Term::Var(setup.fresh_slots[pidx][j]),
                    })
                    .collect();
                (map.rel, terms)
            }
        }
    }

    /// The paper's `findBodies(i, σb)`.
    pub(crate) fn find_bodies(&mut self, i: usize) -> ControlFlow<()> {
        if self.over_deadline() {
            return ControlFlow::Break(());
        }
        if i == self.setup.post.len() {
            return self.second_half_and_heads();
        }
        let node = self.setup.post[i];
        // Patterns of λ(p_ν(i)) not yet instantiated.
        let lambda = self.setup.ht.nodes[node].lambda.clone();
        let to_assign: Vec<usize> = lambda
            .iter()
            .filter_map(|&bi| self.setup.body_pattern[bi])
            .filter(|&pidx| self.assign[pidx].is_none())
            .collect();
        self.enum_node(i, node, &lambda, &to_assign, 0)
    }

    /// Enumerate assignments for the node's unassigned patterns, then
    /// compute `r[i]` and recurse.
    fn enum_node(
        &mut self,
        i: usize,
        node: usize,
        lambda: &[usize],
        to_assign: &[usize],
        depth: usize,
    ) -> ControlFlow<()> {
        if depth == to_assign.len() {
            // All λ patterns mapped: r[i] := π_χ(J(σi(λ(p_ν(i))))),
            // planned and executed by the executor, memoized so sibling
            // instantiations that only differ elsewhere share it.
            let projected = self.eval_node_join(node, lambda);
            // One fused sweep over all children: same probe count as
            // folded binary semijoins, but survivors materialize once.
            let children = &self.setup.ht.children[node];
            let r_i = if children.is_empty() {
                (*projected).clone()
            } else {
                let child_rs: Vec<&Bindings> = children
                    .iter()
                    .map(|&child| {
                        let cpos = self.setup.pos_of[child];
                        self.r[cpos].as_ref().expect("children visited first")
                    })
                    .collect();
                projected.semijoin_all(&child_rs)
            };
            if r_i.is_empty() && !self.setup.zero_ok {
                return ControlFlow::Continue(()); // prune this branch
            }
            self.r[i] = Some(r_i);
            let flow = self.find_bodies(i + 1);
            self.r[i] = None;
            return flow;
        }

        let pidx = to_assign[depth];
        let pv = self.setup.pattern_pv[pidx];
        let locked = self.pv_rel.get(&pv).map(|&(r, _)| r);
        let rels: Vec<RelId> = match locked {
            Some(r) if self.setup.candidates[pidx].contains_key(&r) => vec![r],
            Some(_) => Vec::new(),
            None => {
                let mut rels: Vec<RelId> = self.setup.candidates[pidx].keys().copied().collect();
                rels.sort();
                rels
            }
        };
        for rel in rels {
            self.pv_rel
                .entry(pv)
                .and_modify(|e| e.1 += 1)
                .or_insert((rel, 1));
            let slot_sets = self.setup.candidates[pidx][&rel].clone();
            for slots in slot_sets {
                self.assign[pidx] = Some(PatternMap { rel, slots });
                let flow = self.enum_node(i, node, lambda, to_assign, depth + 1);
                self.assign[pidx] = None;
                if flow.is_break() {
                    self.unpin(pv);
                    return ControlFlow::Break(());
                }
            }
            self.unpin(pv);
        }
        ControlFlow::Continue(())
    }

    fn unpin(&mut self, pv: PredVarId) {
        if let Some(e) = self.pv_rel.get_mut(&pv) {
            if e.1 == 1 {
                self.pv_rel.remove(&pv);
            } else {
                e.1 -= 1;
            }
        }
    }

    /// Second half of the full reducer, `enoughSupport`, and `findHeads`.
    fn second_half_and_heads(&mut self) -> ControlFlow<()> {
        let setup = self.setup;
        let n = setup.post.len();
        // s[j] for postorder positions; root is position n-1.
        let mut s: Vec<Bindings> = Vec::with_capacity(n);
        for j in 0..n {
            s.push(self.r[j].as_ref().expect("all nodes computed").clone());
        }
        for j in (0..n.saturating_sub(1)).rev() {
            let node = setup.post[j];
            let parent = setup.ht.parent[node].expect("non-root has parent");
            let ppos = setup.pos_of[parent];
            // `s[j]` is still the pristine `r[j]` here (each node is
            // reduced exactly once, top-down), so its index cache is the
            // long-lived one shared with the executor's memoized value —
            // index that side, probe the small already-reduced parent.
            s[j] = s[j].semijoin_indexed(&s[ppos]);
        }

        // enoughSupport (exact: sup > k iff some atom's fraction > k).
        let mut body_atoms: Vec<Arc<Bindings>> = Vec::with_capacity(setup.mq.body.len());
        for bi in 0..setup.mq.body.len() {
            body_atoms.push(self.eval_body_atom(bi));
        }
        if let Some(ksup) = setup.thresholds.sup {
            let mut enough = false;
            for (bi, ra) in body_atoms.iter().enumerate() {
                if ra.is_empty() {
                    continue;
                }
                let s_home = &s[setup.pos_of[setup.ht.atom_home[bi]]];
                // When s[home] ranges over exactly the atom's variables it
                // is itself the reduced atom (every s-row is an ra-row and
                // reduction only drops rows), so |ra ⋉ s| = |s|. (Engine
                // shortcut: disabled in baseline mode so A/B timings
                // reproduce the pre-optimization engine.)
                let reduced = if !mq_relation::baseline_mode() && s_home.vars() == ra.vars() {
                    s_home.len()
                } else {
                    self.exec
                        .exec_count(&setup.semijoin_count_plan, &[ra, s_home])
                };
                if Frac::ratio_or_zero(reduced as u64, ra.len() as u64) > ksup {
                    enough = true;
                    break;
                }
            }
            if !enough {
                return ControlFlow::Continue(());
            }
        }

        // b := J(σb(body(MQ))). After both reducer halves every vertex
        // relation is calibrated — `s[j] = π_χ(j)(b)` (Yannakakis, the
        // same invariant the support counts below rely on) — so when
        // every instantiated atom's variables sit inside its home's χ,
        // joining the vertex relations along the decomposition
        // reconstructs `b` exactly: every atom's constraint is already
        // inside its home's s[j], the χ-connectedness condition keeps
        // every join keyed when parents join before children (postorder
        // positions descend root-first), and a vertex whose χ is
        // already covered satisfies `b ⋉ s[j] = b` and is skipped
        // outright. Type-2 instantiations can pad atoms with fresh
        // variables that appear in no χ — those columns exist only in
        // the atom relations, so such bodies (and baseline mode, for
        // A/B parity with the pre-optimization engine) take the
        // per-atom assembly: reduce each atom relation against its
        // home, then fold joins (pure filters become semijoins).
        let calibrated = !mq_relation::baseline_mode()
            && body_atoms.iter().enumerate().all(|(bi, ra)| {
                let s_home = &s[setup.pos_of[setup.ht.atom_home[bi]]];
                ra.vars().iter().all(|v| s_home.position(*v).is_some())
            });
        let mut b;
        if calibrated {
            b = s[n - 1].clone();
            for j in (0..n.saturating_sub(1)).rev() {
                if s[j].vars().iter().all(|v| b.position(*v).is_some()) {
                    continue; // χ(j) covered: s[j] = π_χ(j)(b) adds nothing
                }
                b = b.join(&s[j]);
                if b.is_empty() && !setup.zero_ok {
                    return ControlFlow::Continue(());
                }
            }
        } else {
            // Join reduced atoms in postorder of homes (join-tree locality).
            let baseline = mq_relation::baseline_mode();
            let mut order: Vec<usize> = (0..setup.mq.body.len()).collect();
            order.sort_by_key(|&bi| setup.pos_of[setup.ht.atom_home[bi]]);
            b = Bindings::unit();
            for &bi in &order {
                let s_home = &s[setup.pos_of[setup.ht.atom_home[bi]]];
                // A vertex relation over exactly the atom's variables is
                // the reduced atom already.
                let reduced = if !baseline && s_home.vars() == body_atoms[bi].vars() {
                    s_home.clone()
                } else if baseline {
                    body_atoms[bi].semijoin(s_home)
                } else {
                    // Index the stable atom side (cached across bodies
                    // by the executor's atom memo), probe the small
                    // reduced side.
                    body_atoms[bi].semijoin_indexed(s_home)
                };
                // An atom contributing no new variable is a pure filter:
                // `b ⋈ reduced = b ⋉ reduced` (set semantics).
                let filter_only = !baseline
                    && !b.vars().is_empty()
                    && reduced.vars().iter().all(|v| b.position(*v).is_some());
                b = if filter_only {
                    b.semijoin(&reduced)
                } else {
                    b.join(&reduced)
                };
                if b.is_empty() && !setup.zero_ok {
                    return ControlFlow::Continue(());
                }
            }
        }

        // With no negated literals, the exact support is available from
        // the reduced vertex relations: after both reducer halves the
        // tree is fully reduced, so `s[j] = π_χ(j)(b)` (Yannakakis).
        // For an atom whose instantiated variables all occur in χ(home),
        // projection composes — `π_vars(b) = π_vars(s[home])` — so the
        // support count runs over the (small) vertex relation, never the
        // assembled join; when the variables are *exactly* the vertex's,
        // the count is just `|s[home]|`.
        let sup_hint: Option<Frac> =
            if setup.mq.neg_body.is_empty() && !mq_relation::baseline_mode() {
                let mut sup = Some(Frac::ZERO);
                for (bi, ra) in body_atoms.iter().enumerate() {
                    if ra.is_empty() {
                        continue;
                    }
                    let s_home = &s[setup.pos_of[setup.ht.atom_home[bi]]];
                    let vars = self.mq_body_atom_vars(bi);
                    if vars.iter().all(|v| s_home.position(*v).is_some()) {
                        let num = if s_home.vars() == vars.as_slice() {
                            s_home.len()
                        } else {
                            self.exec
                                .exec_count(&CountPlan::count_distinct(0, vars), &[s_home])
                        };
                        let f = Frac::ratio_or_zero(num as u64, ra.len() as u64);
                        if let Some(cur) = sup {
                            if f > cur {
                                sup = Some(f);
                            }
                        }
                    } else {
                        // Atom variables outside the decomposition (type-2
                        // padding): fall back to counting over the
                        // assembled join.
                        sup = None;
                        break;
                    }
                }
                sup
            } else {
                None
            };

        self.enum_neg(0, b, &body_atoms, sup_hint)
    }

    /// Assign negated patterns (agreeing with σb) and apply their
    /// antijoins to the body join, then compute the exact support and
    /// proceed to `findHeads`. Negated atoms only ever shrink the body
    /// join, so the earlier `enoughSupport` prune (an upper bound) stays
    /// sound.
    fn enum_neg(
        &mut self,
        ni: usize,
        b: Bindings,
        body_atoms: &[Arc<Bindings>],
        sup_hint: Option<Frac>,
    ) -> ControlFlow<()> {
        let setup = self.setup;
        if ni == setup.mq.neg_body.len() {
            // Exact support values for reporting, on the filtered join
            // (or precomputed from the reduced tree when no negated atom
            // filtered it — see `second_half_and_heads`).
            let sup = match sup_hint {
                Some(s) => s,
                None => {
                    let mut sup = Frac::ZERO;
                    for (bi, ra) in body_atoms.iter().enumerate() {
                        if ra.is_empty() {
                            continue;
                        }
                        let vars = self.mq_body_atom_vars(bi);
                        let num = self
                            .exec
                            .exec_count(&CountPlan::count_distinct(0, vars), &[&b])
                            as u64;
                        let f = Frac::ratio_or_zero(num, ra.len() as u64);
                        if f > sup {
                            sup = f;
                        }
                    }
                    sup
                }
            };
            if let Some(ksup) = setup.thresholds.sup {
                if sup <= ksup {
                    return ControlFlow::Continue(());
                }
            }
            return self.find_heads(&b, sup);
        }
        match setup.neg_pattern[ni].filter(|&pidx| self.assign[pidx].is_none()) {
            None => {
                // Fixed atom or already-assigned pattern: filter and go on.
                let (rel, terms) = self.neg_atom_terms(ni);
                let jn = self.eval_atom(rel, terms);
                let filtered = b.antijoin(&jn);
                if filtered.is_empty() && !setup.zero_ok {
                    return ControlFlow::Continue(());
                }
                self.enum_neg(ni + 1, filtered, body_atoms, sup_hint)
            }
            Some(pidx) => {
                let pv = setup.pattern_pv[pidx];
                let locked = self.pv_rel.get(&pv).map(|&(r, _)| r);
                let rels: Vec<RelId> = match locked {
                    Some(r) if setup.candidates[pidx].contains_key(&r) => vec![r],
                    Some(_) => Vec::new(),
                    None => {
                        let mut rels: Vec<RelId> = setup.candidates[pidx].keys().copied().collect();
                        rels.sort();
                        rels
                    }
                };
                for rel in rels {
                    self.pv_rel
                        .entry(pv)
                        .and_modify(|e| e.1 += 1)
                        .or_insert((rel, 1));
                    let slot_sets = setup.candidates[pidx][&rel].clone();
                    for slots in slot_sets {
                        self.assign[pidx] = Some(PatternMap { rel, slots });
                        let (nrel, terms) = self.neg_atom_terms(ni);
                        let jn = self.eval_atom(nrel, terms);
                        let filtered = b.antijoin(&jn);
                        let flow = if filtered.is_empty() && !setup.zero_ok {
                            ControlFlow::Continue(())
                        } else {
                            self.enum_neg(ni + 1, filtered, body_atoms, sup_hint)
                        };
                        self.assign[pidx] = None;
                        if flow.is_break() {
                            self.unpin(pv);
                            return ControlFlow::Break(());
                        }
                    }
                    self.unpin(pv);
                }
                ControlFlow::Continue(())
            }
        }
    }

    /// Distinct variables of instantiated body atom `bi` (including
    /// padding).
    fn mq_body_atom_vars(&self, bi: usize) -> Vec<VarId> {
        let (_, terms) = self.body_atom_terms(bi);
        mq_relation::distinct_vars(&terms)
    }

    /// The paper's `findHeads(σb)`: enumerate head instantiations agreeing
    /// with the body instantiation and test cover/confidence by semijoin.
    fn find_heads(&mut self, b: &Bindings, sup: Frac) -> ControlFlow<()> {
        let setup = self.setup;
        if !setup.head_is_pattern {
            let name = match &setup.mq.head.pred {
                Pred::Rel(n) => n,
                Pred::Var(_) => unreachable!(),
            };
            let rel = setup.db.rel_id(name).expect("checked in setup");
            let terms: Vec<Term> = setup.mq.head.args.iter().map(|&v| Term::Var(v)).collect();
            return self.check_head(b, sup, None, rel, terms);
        }
        // Head pattern has global index 0.
        let pv = setup.pattern_pv[0];
        let locked = self.pv_rel.get(&pv).map(|&(r, _)| r);
        let rels: Vec<RelId> = match locked {
            Some(r) if setup.candidates[0].contains_key(&r) => vec![r],
            Some(_) => Vec::new(),
            None => {
                let mut rels: Vec<RelId> = setup.candidates[0].keys().copied().collect();
                rels.sort();
                rels
            }
        };
        for rel in rels {
            let slot_sets = setup.candidates[0][&rel].clone();
            for slots in slot_sets {
                let terms: Vec<Term> = slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| match slot {
                        Some(i) => Term::Var(setup.mq.head.args[*i]),
                        None => Term::Var(setup.fresh_slots[0][j]),
                    })
                    .collect();
                let map = PatternMap {
                    rel,
                    slots: slots.clone(),
                };
                if self.check_head(b, sup, Some(map), rel, terms).is_break() {
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::Continue(())
    }

    fn check_head(
        &mut self,
        b: &Bindings,
        sup: Frac,
        head_map: Option<PatternMap>,
        head_rel: RelId,
        head_terms: Vec<Term>,
    ) -> ControlFlow<()> {
        if self.over_deadline() {
            return ControlFlow::Break(());
        }
        let h = self.eval_atom(head_rel, head_terms);
        let count_plan = &self.setup.semijoin_count_plan;
        // cvr = |h ⋉ b| / |h| — a pure count, no rows materialized.
        let cvr = Frac::ratio_or_zero(
            self.exec.exec_count(count_plan, &[&h, b]) as u64,
            h.len() as u64,
        );
        if let Some(k) = self.setup.thresholds.cvr {
            if cvr <= k {
                return ControlFlow::Continue(());
            }
        }
        // cnf = |b ⋉ h| / |b| (equivalently b ⋉ h': every h-row whose key
        // occurs in b is itself in h', so the key sets agree). Probing `h`
        // reuses its cached index across every body instantiation.
        let cnf = Frac::ratio_or_zero(
            self.exec.exec_count(count_plan, &[b, &h]) as u64,
            b.len() as u64,
        );
        if let Some(k) = self.setup.thresholds.cnf {
            if cnf <= k {
                return ControlFlow::Continue(());
            }
        }
        let iv = IndexValues { sup, cnf, cvr };
        if !self.setup.thresholds.accepts(&iv) {
            return ControlFlow::Continue(());
        }
        // Assemble the full instantiation in rep(MQ) order.
        let mut maps = Vec::new();
        if let Some(hm) = head_map {
            maps.push(hm);
        }
        for bi in 0..self.setup.mq.body.len() {
            if let Some(pidx) = self.setup.body_pattern[bi] {
                maps.push(self.assign[pidx].clone().expect("assigned"));
            }
        }
        for ni in 0..self.setup.mq.neg_body.len() {
            if let Some(pidx) = self.setup.neg_pattern[ni] {
                maps.push(self.assign[pidx].clone().expect("assigned"));
            }
        }
        (self.f)(&MqAnswer {
            inst: Instantiation { maps },
            indices: iv,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::naive;
    use crate::index::IndexKind;
    use crate::parse::parse_metaquery;

    use rand::prelude::*;

    fn random_db(rng: &mut StdRng, rels: &[(&str, usize)], rows: usize, dom: i64) -> Database {
        let mut db = Database::new();
        for &(name, ar) in rels {
            let id = db.add_relation(name, ar);
            for _ in 0..rows {
                let row: Vec<_> = (0..ar)
                    .map(|_| mq_relation::Value::Int(rng.gen_range(0..dom)))
                    .collect();
                db.insert(id, row.into_boxed_slice());
            }
        }
        db
    }

    fn agree(db: &Database, mq_text: &str, ty: InstType, th: Thresholds) {
        let mq = parse_metaquery(mq_text).unwrap();
        let a = naive::find_all(db, &mq, ty, th).unwrap();
        let b = find_rules(db, &mq, ty, th).unwrap();
        assert_eq!(
            a, b,
            "engines disagree on {mq_text} ({ty}, {th:?}):\nnaive={a:#?}\nfindRules={b:#?}"
        );
    }

    #[test]
    fn engines_agree_type0_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2), ("r", 2)], 12, 5);
            for th in [
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
                Thresholds::all(Frac::new(1, 2), Frac::new(1, 4), Frac::new(1, 4)),
                Thresholds::single(IndexKind::Cnf, Frac::new(1, 3)),
                Thresholds::none(),
            ] {
                agree(&db, "R(X,Z) <- P(X,Y), Q(Y,Z)", InstType::Zero, th);
            }
        }
    }

    #[test]
    fn engines_agree_type1() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 10, 4);
            agree(
                &db,
                "R(X,Z) <- P(X,Y), Q(Y,Z)",
                InstType::One,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_type2_mixed_arities() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let db = random_db(&mut rng, &[("p", 2), ("t", 3)], 8, 4);
            agree(
                &db,
                "R(X,Z) <- P(X,Y), Q(Y,Z)",
                InstType::Two,
                Thresholds::all(Frac::new(1, 10), Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_cyclic_body() {
        // body is a triangle: hypertree width 2 path of the engine.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("e", 2), ("f", 2)], 12, 4);
            agree(
                &db,
                "H(X,Y) <- P(X,Y), Q(Y,Z), R(Z,X)",
                InstType::Zero,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_shared_predvars() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 10, 4);
            agree(
                &db,
                "P(X,Y) <- P(Y,Z), Q(Z,W)",
                InstType::Zero,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_fixed_body_atom() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("e", 2), ("p", 1), ("q", 1)], 10, 4);
            agree(
                &db,
                "N(X) <- N(Y), e(X,Y)",
                InstType::Zero,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn decide_matches_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 10, 4);
            let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
            for kind in IndexKind::ALL {
                for k in [Frac::ZERO, Frac::new(1, 2), Frac::new(9, 10)] {
                    let p = MqProblem {
                        index: kind,
                        threshold: k,
                        ty: InstType::Zero,
                    };
                    assert_eq!(
                        naive::decide(&db, &mq, p).unwrap(),
                        decide(&db, &mq, p).unwrap(),
                        "decide disagrees for {kind} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_order() {
        // The scheduler must return byte-identical, identically ordered
        // answers to the sequential engine. Force a multi-worker pool
        // even on single-core machines so the fan-out actually runs (an
        // atomic override — env mutation is unsound under concurrent
        // reads).
        rayon::set_thread_override(Some(3));
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2), ("r", 2)], 14, 5);
            let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
            for th in [
                Thresholds::none(),
                Thresholds::all(Frac::new(1, 10), Frac::new(1, 10), Frac::new(1, 10)),
            ] {
                let par = find_rules(&db, &mq, InstType::Zero, th).unwrap();
                let seq = find_rules_seq(&db, &mq, InstType::Zero, th).unwrap();
                assert_eq!(par, seq, "parallel and sequential answers must match");
            }
        }
        rayon::set_thread_override(None);
    }

    #[test]
    fn prefix_tasks_cover_enumeration_in_order() {
        // Depth-2 tasks over "R(X,Z) <- P(X,Y), Q(Y,Z)" with 2 relations:
        // the cartesian product of both body patterns' candidates, in
        // enumeration order.
        let mut rng = StdRng::seed_from_u64(9);
        let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 6, 3);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let setup = Setup::new(&db, &mq, InstType::Zero, Thresholds::none());
        assert_eq!(setup.enum_order.len(), 2);
        let d1 = setup.prefix_tasks(1);
        let d2 = setup.prefix_tasks(2);
        assert_eq!(d1.len(), 2, "2 relations × 1 slot map for pattern 1");
        assert_eq!(d2.len(), 4, "cartesian product at depth 2");
        // Depth-2 tasks refine depth-1 tasks in order.
        for (i, task) in d2.iter().enumerate() {
            assert_eq!(task.len(), 2);
            assert_eq!(task[0], d1[i / 2][0], "prefix order must nest");
        }
        // A shared predicate variable locks the relation across patterns.
        let mq2 = parse_metaquery("R(X,Z) <- P(X,Y), P(Y,Z)").unwrap();
        let setup2 = Setup::new(&db, &mq2, InstType::Zero, Thresholds::none());
        for task in setup2.prefix_tasks(2) {
            assert_eq!(task[0].1, task[1].1, "shared pv must lock the relation");
        }
    }

    #[test]
    fn budgeted_search_honors_deadline_and_matches_when_unconstrained() {
        let mut rng = StdRng::seed_from_u64(10);
        let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 12, 4);
        let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
        let th = Thresholds::none();
        // An already-expired budget fails fast with the budget echoed.
        let err = find_rules_budgeted(&db, &mq, InstType::Zero, th, None, Some(0)).unwrap_err();
        assert!(
            matches!(err, InstError::DeadlineExceeded { budget_ms: 0 }),
            "want DeadlineExceeded, got {err:?}"
        );
        // A generous budget and no budget both match the sequential
        // reference byte-for-byte.
        let seq = find_rules_seq(&db, &mq, InstType::Zero, th).unwrap();
        let ok = find_rules_budgeted(&db, &mq, InstType::Zero, th, None, Some(60_000)).unwrap();
        assert_eq!(ok, seq);
        let unbounded = find_rules_budgeted(&db, &mq, InstType::Zero, th, None, None).unwrap();
        assert_eq!(unbounded, seq);
    }

    #[test]
    fn body_decomposition_widths() {
        let chain = parse_metaquery("R(X,W) <- P(X,Y), Q(Y,Z), S(Z,W)").unwrap();
        assert_eq!(body_decomposition(&chain).width, 1);
        let triangle = parse_metaquery("R(X,Y) <- P(X,Y), Q(Y,Z), S(Z,X)").unwrap();
        assert_eq!(body_decomposition(&triangle).width, 2);
    }
}
