//! The `findRules` algorithm (Figure 4).
//!
//! Answering proceeds in the paper's three phases:
//!
//! 1. **findBodies** — a bottom-up visit of a complete hypertree
//!    decomposition `⟨T, χ, λ⟩` of `body(MQ)`. Visiting vertex `p_ν(i)`
//!    extends the current partial instantiation `σb` with instantiations
//!    `σi` of the not-yet-mapped patterns in `λ(p_ν(i))`, computes
//!    `r[i] := π_χ(J(σi(λ(p_ν(i)))))`, semijoins it with the children's
//!    `r[·]` (the *first half* of a full reducer, interleaved with the
//!    search), and prunes the branch when `r[i]` is empty.
//! 2. At the root, the *second half* of the full reducer produces globally
//!    consistent reduced relations `s[·]`, from which `enoughSupport`
//!    evaluates `sup(σb(body)) > k_sup` exactly and cheaply.
//! 3. **findHeads** — the body join `b = J(σb(body(MQ)))` is assembled
//!    from the reduced relations; every head instantiation `σh` that
//!    agrees with `σb` is checked with two semijoins:
//!    `cvr = |h ⋉ b| / |h|` and `cnf = |b ⋉ h| / |b|`.
//!
//! The decomposition is computed once: by Proposition 4.9, applying any
//! instantiation `σ` to the `λ` labels preserves a width-`c`
//! decomposition, so one decomposition serves every instantiation.

use crate::ast::{Metaquery, Pred, PredVarId};
use crate::engine::{MqAnswer, MqProblem, Thresholds};
use crate::index::IndexValues;
use crate::instantiate::{
    check_fixed_schemes, pattern_candidates, InstError, InstType, Instantiation, PatternMap,
};
use mq_cq::hypertree::{hypertree_width_of_sets, Hypertree};
use mq_relation::{Bindings, Database, Frac, RelId, Term, VarId};
use std::collections::{BTreeSet, HashMap};
use std::ops::ControlFlow;

/// Find all type-`ty` instantiations whose indices clear `thresholds`,
/// using the Figure 4 algorithm. Answers match [`crate::engine::naive`]
/// exactly (including the degenerate no-thresholds case).
pub fn find_rules(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
) -> Result<Vec<MqAnswer>, InstError> {
    let mut out = Vec::new();
    find_rules_with(db, mq, ty, thresholds, |ans| {
        out.push(ans.clone());
        ControlFlow::Continue(())
    })?;
    crate::engine::sort_answers(&mut out);
    Ok(out)
}

/// Decide `⟨DB, MQ, I, k, T⟩` with `findRules`, stopping at the first
/// witness.
pub fn decide(db: &Database, mq: &Metaquery, problem: MqProblem) -> Result<bool, InstError> {
    let mut found = false;
    find_rules_with(
        db,
        mq,
        problem.ty,
        Thresholds::single(problem.index, problem.threshold),
        |_| {
            found = true;
            ControlFlow::Break(())
        },
    )?;
    Ok(found)
}

/// Streaming variant: invoke `f` on each answer; `Break` stops the search.
/// Returns `true` if stopped early.
pub fn find_rules_with(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
    f: impl FnMut(&MqAnswer) -> ControlFlow<()>,
) -> Result<bool, InstError> {
    if ty != InstType::Two && !mq.is_pure() {
        return Err(InstError::NotPure);
    }
    if !mq.is_safe() {
        return Err(InstError::UnsafeNegation);
    }
    check_fixed_schemes(db, mq)?;
    assert!(!mq.body.is_empty(), "metaquery body must be non-empty");

    let mut engine = Engine::new(db, mq, ty, thresholds, f);
    let stopped = engine.find_bodies(0).is_break();
    Ok(stopped)
}

/// The diagnostic facts `findRules` precomputes; exposed so benchmarks can
/// report the decomposition width `c` of Theorem 4.12.
#[derive(Clone, Debug)]
pub struct BodyDecomposition {
    /// The hypertree width of `body(MQ)`.
    pub width: usize,
    /// Number of decomposition vertices.
    pub vertices: usize,
}

/// Compute `body(MQ)`'s hypertree width and decomposition size.
pub fn body_decomposition(mq: &Metaquery) -> BodyDecomposition {
    let edges: Vec<BTreeSet<VarId>> = mq.body.iter().map(|l| l.var_set()).collect();
    let (width, ht) = hypertree_width_of_sets(&edges).expect("non-empty body");
    BodyDecomposition {
        width,
        vertices: ht.len(),
    }
}

struct Engine<'a, F> {
    db: &'a Database,
    mq: &'a Metaquery,
    thresholds: Thresholds,
    f: F,
    /// `true` when a rule with all-zero indices would be accepted; in that
    /// case empty-join pruning must be disabled to match the naive engine.
    zero_ok: bool,

    ht: Hypertree,
    /// Bottom-up visit: postorder node list (the paper's ν).
    post: Vec<usize>,
    /// node -> its postorder position.
    pos_of: Vec<usize>,

    /// Global pattern count and scheme info. Pattern index 0 is the head
    /// pattern when the head is a pattern; body patterns follow in order.
    head_is_pattern: bool,
    /// body scheme index -> global pattern index (None if fixed atom).
    body_pattern: Vec<Option<usize>>,
    /// negated body scheme index -> global pattern index (None if fixed).
    neg_pattern: Vec<Option<usize>>,
    /// Per global pattern: candidate relation -> slot maps.
    candidates: Vec<HashMap<RelId, Vec<Vec<Option<usize>>>>>,
    /// Per global pattern: pre-allocated fresh padding variables, one per
    /// relation position (type-2); index j pads position j.
    fresh_slots: Vec<Vec<VarId>>,
    /// Per global pattern: its predicate variable.
    pattern_pv: Vec<PredVarId>,

    /// Search state: per-pattern assignment.
    assign: Vec<Option<PatternMap>>,
    /// Predicate variable -> (relation, how many patterns pinned it).
    pv_rel: HashMap<PredVarId, (RelId, usize)>,
    /// Per postorder position: the reduced node relation `r[i]`.
    r: Vec<Option<Bindings>>,
}

impl<'a, F: FnMut(&MqAnswer) -> ControlFlow<()>> Engine<'a, F> {
    fn new(
        db: &'a Database,
        mq: &'a Metaquery,
        ty: InstType,
        thresholds: Thresholds,
        f: F,
    ) -> Self {
        // Decomposition of the body literal schemes' ordinary variables.
        let edges: Vec<BTreeSet<VarId>> = mq.body.iter().map(|l| l.var_set()).collect();
        let (_, mut ht) = hypertree_width_of_sets(&edges).expect("non-empty body");
        ht.complete_edges(edges.len());
        let post = ht.postorder();
        let mut pos_of = vec![0usize; ht.len()];
        for (i, &n) in post.iter().enumerate() {
            pos_of[n] = i;
        }

        // Global pattern bookkeeping (head first, as in rep(MQ)).
        let head_is_pattern = mq.head.is_pattern();
        let mut schemes = Vec::new();
        if head_is_pattern {
            schemes.push(&mq.head);
        }
        let mut body_pattern = Vec::with_capacity(mq.body.len());
        for l in &mq.body {
            if l.is_pattern() {
                body_pattern.push(Some(schemes.len()));
                schemes.push(l);
            } else {
                body_pattern.push(None);
            }
        }
        let mut neg_pattern = Vec::with_capacity(mq.neg_body.len());
        for l in &mq.neg_body {
            if l.is_pattern() {
                neg_pattern.push(Some(schemes.len()));
                schemes.push(l);
            } else {
                neg_pattern.push(None);
            }
        }
        let candidates: Vec<_> = schemes
            .iter()
            .map(|s| pattern_candidates(db, s, ty))
            .collect();
        let pattern_pv: Vec<PredVarId> = schemes
            .iter()
            .map(|s| match s.pred {
                Pred::Var(p) => p,
                Pred::Rel(_) => unreachable!("patterns have predicate variables"),
            })
            .collect();
        // Fresh padding variables: one per pattern per possible position.
        let mut pool = mq.vars.clone();
        let max_arity = db.max_arity();
        let fresh_slots: Vec<Vec<VarId>> = schemes
            .iter()
            .map(|_| (0..max_arity).map(|_| pool.fresh()).collect())
            .collect();

        let zero = IndexValues {
            sup: Frac::ZERO,
            cnf: Frac::ZERO,
            cvr: Frac::ZERO,
        };
        let n_patterns = schemes.len();
        let n_pos = post.len();
        Engine {
            db,
            mq,
            thresholds,
            f,
            zero_ok: thresholds.accepts(&zero),
            ht,
            post,
            pos_of,
            head_is_pattern,
            body_pattern,
            neg_pattern,
            candidates,
            fresh_slots,
            pattern_pv,
            assign: vec![None; n_patterns],
            pv_rel: HashMap::new(),
            r: vec![None; n_pos],
        }
    }

    /// Instantiated terms for body scheme `bi` under the current (partial)
    /// assignment. Only called when the scheme is fixed or assigned.
    fn body_atom_terms(&self, bi: usize) -> (RelId, Vec<Term>) {
        let scheme = &self.mq.body[bi];
        match self.body_pattern[bi] {
            None => {
                let name = match &scheme.pred {
                    Pred::Rel(n) => n,
                    Pred::Var(_) => unreachable!(),
                };
                let rel = self.db.rel_id(name).expect("checked in setup");
                (rel, scheme.args.iter().map(|&v| Term::Var(v)).collect())
            }
            Some(pidx) => {
                let map = self.assign[pidx].as_ref().expect("assigned");
                let terms = map
                    .slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| match slot {
                        Some(i) => Term::Var(scheme.args[*i]),
                        None => Term::Var(self.fresh_slots[pidx][j]),
                    })
                    .collect();
                (map.rel, terms)
            }
        }
    }

    fn eval_body_atom(&self, bi: usize) -> Bindings {
        let (rel, terms) = self.body_atom_terms(bi);
        Bindings::from_atom(self.db.relation(rel), &terms)
    }

    /// Instantiated terms for negated body scheme `ni` (must be fixed or
    /// assigned).
    fn neg_atom_terms(&self, ni: usize) -> (RelId, Vec<Term>) {
        let scheme = &self.mq.neg_body[ni];
        match self.neg_pattern[ni] {
            None => {
                let name = match &scheme.pred {
                    Pred::Rel(n) => n,
                    Pred::Var(_) => unreachable!(),
                };
                let rel = self.db.rel_id(name).expect("checked in setup");
                (rel, scheme.args.iter().map(|&v| Term::Var(v)).collect())
            }
            Some(pidx) => {
                let map = self.assign[pidx].as_ref().expect("assigned");
                let terms = map
                    .slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| match slot {
                        Some(i) => Term::Var(scheme.args[*i]),
                        None => Term::Var(self.fresh_slots[pidx][j]),
                    })
                    .collect();
                (map.rel, terms)
            }
        }
    }

    /// The paper's `findBodies(i, σb)`.
    fn find_bodies(&mut self, i: usize) -> ControlFlow<()> {
        if i == self.post.len() {
            return self.second_half_and_heads();
        }
        let node = self.post[i];
        // Patterns of λ(p_ν(i)) not yet instantiated.
        let lambda = self.ht.nodes[node].lambda.clone();
        let to_assign: Vec<usize> = lambda
            .iter()
            .filter_map(|&bi| self.body_pattern[bi])
            .filter(|&pidx| self.assign[pidx].is_none())
            .collect();
        self.enum_node(i, node, &lambda, &to_assign, 0)
    }

    /// Enumerate assignments for the node's unassigned patterns, then
    /// compute `r[i]` and recurse.
    fn enum_node(
        &mut self,
        i: usize,
        node: usize,
        lambda: &[usize],
        to_assign: &[usize],
        depth: usize,
    ) -> ControlFlow<()> {
        if depth == to_assign.len() {
            // All λ patterns mapped: r[i] := π_χ(J(σi(λ(p_ν(i))))).
            let mut join = Bindings::unit();
            for &bi in lambda {
                let b = self.eval_body_atom(bi);
                join = join.join(&b);
                if join.is_empty() {
                    break;
                }
            }
            let chi: Vec<VarId> = self.ht.nodes[node].chi.iter().copied().collect();
            let mut r_i = join.project(&chi);
            for &child in &self.ht.children[node].clone() {
                let cpos = self.pos_of[child];
                let child_r = self.r[cpos].as_ref().expect("children visited first");
                r_i = r_i.semijoin(child_r);
            }
            if r_i.is_empty() && !self.zero_ok {
                return ControlFlow::Continue(()); // prune this branch
            }
            self.r[i] = Some(r_i);
            let flow = self.find_bodies(i + 1);
            self.r[i] = None;
            return flow;
        }

        let pidx = to_assign[depth];
        let pv = self.pattern_pv[pidx];
        let locked = self.pv_rel.get(&pv).map(|&(r, _)| r);
        let rels: Vec<RelId> = match locked {
            Some(r) if self.candidates[pidx].contains_key(&r) => vec![r],
            Some(_) => Vec::new(),
            None => {
                let mut rels: Vec<RelId> = self.candidates[pidx].keys().copied().collect();
                rels.sort();
                rels
            }
        };
        for rel in rels {
            self.pv_rel
                .entry(pv)
                .and_modify(|e| e.1 += 1)
                .or_insert((rel, 1));
            let slot_sets = self.candidates[pidx][&rel].clone();
            for slots in slot_sets {
                self.assign[pidx] = Some(PatternMap { rel, slots });
                let flow = self.enum_node(i, node, lambda, to_assign, depth + 1);
                self.assign[pidx] = None;
                if flow.is_break() {
                    self.unpin(pv);
                    return ControlFlow::Break(());
                }
            }
            self.unpin(pv);
        }
        ControlFlow::Continue(())
    }

    fn unpin(&mut self, pv: PredVarId) {
        if let Some(e) = self.pv_rel.get_mut(&pv) {
            if e.1 == 1 {
                self.pv_rel.remove(&pv);
            } else {
                e.1 -= 1;
            }
        }
    }

    /// Second half of the full reducer, `enoughSupport`, and `findHeads`.
    fn second_half_and_heads(&mut self) -> ControlFlow<()> {
        let n = self.post.len();
        // s[j] for postorder positions; root is position n-1.
        let mut s: Vec<Bindings> = Vec::with_capacity(n);
        for j in 0..n {
            s.push(self.r[j].as_ref().expect("all nodes computed").clone());
        }
        for j in (0..n.saturating_sub(1)).rev() {
            let node = self.post[j];
            let parent = self.ht.parent[node].expect("non-root has parent");
            let ppos = self.pos_of[parent];
            s[j] = s[j].semijoin(&s[ppos]);
        }

        // enoughSupport (exact: sup > k iff some atom's fraction > k).
        let mut body_atoms: Vec<Bindings> = Vec::with_capacity(self.mq.body.len());
        for bi in 0..self.mq.body.len() {
            body_atoms.push(self.eval_body_atom(bi));
        }
        if let Some(ksup) = self.thresholds.sup {
            let mut enough = false;
            for (bi, ra) in body_atoms.iter().enumerate() {
                if ra.is_empty() {
                    continue;
                }
                let home = self.ht.atom_home[bi];
                let reduced = ra.semijoin(&s[self.pos_of[home]]);
                if Frac::ratio_or_zero(reduced.len() as u64, ra.len() as u64) > ksup {
                    enough = true;
                    break;
                }
            }
            if !enough {
                return ControlFlow::Continue(());
            }
        }

        // b := J(σb(body(MQ))), assembled from the reduced atoms (joining
        // reduced relations is exact: reduction only removes dangling
        // tuples). Join in postorder of homes for join-tree locality.
        let mut order: Vec<usize> = (0..self.mq.body.len()).collect();
        order.sort_by_key(|&bi| self.pos_of[self.ht.atom_home[bi]]);
        let mut b = Bindings::unit();
        for &bi in &order {
            let reduced = body_atoms[bi].semijoin(&s[self.pos_of[self.ht.atom_home[bi]]]);
            b = b.join(&reduced);
            if b.is_empty() && !self.zero_ok {
                return ControlFlow::Continue(());
            }
        }

        self.enum_neg(0, b, &body_atoms)
    }

    /// Assign negated patterns (agreeing with σb) and apply their
    /// antijoins to the body join, then compute the exact support and
    /// proceed to `findHeads`. Negated atoms only ever shrink the body
    /// join, so the earlier `enoughSupport` prune (an upper bound) stays
    /// sound.
    fn enum_neg(&mut self, ni: usize, b: Bindings, body_atoms: &[Bindings]) -> ControlFlow<()> {
        if ni == self.mq.neg_body.len() {
            // Exact support values for reporting, on the filtered join.
            let mut sup = Frac::ZERO;
            for (bi, ra) in body_atoms.iter().enumerate() {
                if ra.is_empty() {
                    continue;
                }
                let vars = self.mq_body_atom_vars(bi);
                let num = b.count_distinct(&vars) as u64;
                let f = Frac::ratio_or_zero(num, ra.len() as u64);
                if f > sup {
                    sup = f;
                }
            }
            if let Some(ksup) = self.thresholds.sup {
                if sup <= ksup {
                    return ControlFlow::Continue(());
                }
            }
            return self.find_heads(&b, sup);
        }
        match self.neg_pattern[ni].filter(|&pidx| self.assign[pidx].is_none()) {
            None => {
                // Fixed atom or already-assigned pattern: filter and go on.
                let (rel, terms) = self.neg_atom_terms(ni);
                let jn = Bindings::from_atom(self.db.relation(rel), &terms);
                let filtered = b.antijoin(&jn);
                if filtered.is_empty() && !self.zero_ok {
                    return ControlFlow::Continue(());
                }
                self.enum_neg(ni + 1, filtered, body_atoms)
            }
            Some(pidx) => {
                let pv = self.pattern_pv[pidx];
                let locked = self.pv_rel.get(&pv).map(|&(r, _)| r);
                let rels: Vec<RelId> = match locked {
                    Some(r) if self.candidates[pidx].contains_key(&r) => vec![r],
                    Some(_) => Vec::new(),
                    None => {
                        let mut rels: Vec<RelId> =
                            self.candidates[pidx].keys().copied().collect();
                        rels.sort();
                        rels
                    }
                };
                for rel in rels {
                    self.pv_rel
                        .entry(pv)
                        .and_modify(|e| e.1 += 1)
                        .or_insert((rel, 1));
                    let slot_sets = self.candidates[pidx][&rel].clone();
                    for slots in slot_sets {
                        self.assign[pidx] = Some(PatternMap { rel, slots });
                        let (nrel, terms) = self.neg_atom_terms(ni);
                        let jn = Bindings::from_atom(self.db.relation(nrel), &terms);
                        let filtered = b.antijoin(&jn);
                        let flow = if filtered.is_empty() && !self.zero_ok {
                            ControlFlow::Continue(())
                        } else {
                            self.enum_neg(ni + 1, filtered, body_atoms)
                        };
                        self.assign[pidx] = None;
                        if flow.is_break() {
                            self.unpin(pv);
                            return ControlFlow::Break(());
                        }
                    }
                    self.unpin(pv);
                }
                ControlFlow::Continue(())
            }
        }
    }

    /// Distinct variables of instantiated body atom `bi` (including
    /// padding).
    fn mq_body_atom_vars(&self, bi: usize) -> Vec<VarId> {
        let (_, terms) = self.body_atom_terms(bi);
        mq_relation::distinct_vars(&terms)
    }

    /// The paper's `findHeads(σb)`: enumerate head instantiations agreeing
    /// with the body instantiation and test cover/confidence by semijoin.
    fn find_heads(&mut self, b: &Bindings, sup: Frac) -> ControlFlow<()> {
        if !self.head_is_pattern {
            let name = match &self.mq.head.pred {
                Pred::Rel(n) => n,
                Pred::Var(_) => unreachable!(),
            };
            let rel = self.db.rel_id(name).expect("checked in setup");
            let terms: Vec<Term> = self.mq.head.args.iter().map(|&v| Term::Var(v)).collect();
            return self.check_head(b, sup, None, rel, &terms);
        }
        // Head pattern has global index 0.
        let pv = self.pattern_pv[0];
        let locked = self.pv_rel.get(&pv).map(|&(r, _)| r);
        let rels: Vec<RelId> = match locked {
            Some(r) if self.candidates[0].contains_key(&r) => vec![r],
            Some(_) => Vec::new(),
            None => {
                let mut rels: Vec<RelId> = self.candidates[0].keys().copied().collect();
                rels.sort();
                rels
            }
        };
        for rel in rels {
            let slot_sets = self.candidates[0][&rel].clone();
            for slots in slot_sets {
                let terms: Vec<Term> = slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| match slot {
                        Some(i) => Term::Var(self.mq.head.args[*i]),
                        None => Term::Var(self.fresh_slots[0][j]),
                    })
                    .collect();
                let map = PatternMap {
                    rel,
                    slots: slots.clone(),
                };
                if self.check_head(b, sup, Some(map), rel, &terms).is_break() {
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::Continue(())
    }

    fn check_head(
        &mut self,
        b: &Bindings,
        sup: Frac,
        head_map: Option<PatternMap>,
        head_rel: RelId,
        head_terms: &[Term],
    ) -> ControlFlow<()> {
        let h = Bindings::from_atom(self.db.relation(head_rel), head_terms);
        // h' := h ⋉ b; cvr = |h'| / |h|.
        let h_reduced = h.semijoin(b);
        let cvr = Frac::ratio_or_zero(h_reduced.len() as u64, h.len() as u64);
        if let Some(k) = self.thresholds.cvr {
            if cvr <= k {
                return ControlFlow::Continue(());
            }
        }
        // cnf = |b ⋉ h'| / |b| (equivalently b ⋉ h).
        let b_matching = b.semijoin(&h_reduced);
        let cnf = Frac::ratio_or_zero(b_matching.len() as u64, b.len() as u64);
        if let Some(k) = self.thresholds.cnf {
            if cnf <= k {
                return ControlFlow::Continue(());
            }
        }
        let iv = IndexValues { sup, cnf, cvr };
        if !self.thresholds.accepts(&iv) {
            return ControlFlow::Continue(());
        }
        // Assemble the full instantiation in rep(MQ) order.
        let mut maps = Vec::new();
        if let Some(hm) = head_map {
            maps.push(hm);
        }
        for bi in 0..self.mq.body.len() {
            if let Some(pidx) = self.body_pattern[bi] {
                maps.push(self.assign[pidx].clone().expect("assigned"));
            }
        }
        for ni in 0..self.mq.neg_body.len() {
            if let Some(pidx) = self.neg_pattern[ni] {
                maps.push(self.assign[pidx].clone().expect("assigned"));
            }
        }
        (self.f)(&MqAnswer {
            inst: Instantiation { maps },
            indices: iv,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::naive;
    use crate::index::IndexKind;
    use crate::parse::parse_metaquery;
    
    use rand::prelude::*;

    fn random_db(rng: &mut StdRng, rels: &[(&str, usize)], rows: usize, dom: i64) -> Database {
        let mut db = Database::new();
        for &(name, ar) in rels {
            let id = db.add_relation(name, ar);
            for _ in 0..rows {
                let row: Vec<_> = (0..ar)
                    .map(|_| mq_relation::Value::Int(rng.gen_range(0..dom)))
                    .collect();
                db.insert(id, row.into_boxed_slice());
            }
        }
        db
    }

    fn agree(db: &Database, mq_text: &str, ty: InstType, th: Thresholds) {
        let mq = parse_metaquery(mq_text).unwrap();
        let a = naive::find_all(db, &mq, ty, th).unwrap();
        let b = find_rules(db, &mq, ty, th).unwrap();
        assert_eq!(
            a, b,
            "engines disagree on {mq_text} ({ty}, {th:?}):\nnaive={a:#?}\nfindRules={b:#?}"
        );
    }

    #[test]
    fn engines_agree_type0_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2), ("r", 2)], 12, 5);
            for th in [
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
                Thresholds::all(Frac::new(1, 2), Frac::new(1, 4), Frac::new(1, 4)),
                Thresholds::single(IndexKind::Cnf, Frac::new(1, 3)),
                Thresholds::none(),
            ] {
                agree(&db, "R(X,Z) <- P(X,Y), Q(Y,Z)", InstType::Zero, th);
            }
        }
    }

    #[test]
    fn engines_agree_type1() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 10, 4);
            agree(
                &db,
                "R(X,Z) <- P(X,Y), Q(Y,Z)",
                InstType::One,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_type2_mixed_arities() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let db = random_db(&mut rng, &[("p", 2), ("t", 3)], 8, 4);
            agree(
                &db,
                "R(X,Z) <- P(X,Y), Q(Y,Z)",
                InstType::Two,
                Thresholds::all(Frac::new(1, 10), Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_cyclic_body() {
        // body is a triangle: hypertree width 2 path of the engine.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("e", 2), ("f", 2)], 12, 4);
            agree(
                &db,
                "H(X,Y) <- P(X,Y), Q(Y,Z), R(Z,X)",
                InstType::Zero,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_shared_predvars() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 10, 4);
            agree(
                &db,
                "P(X,Y) <- P(Y,Z), Q(Z,W)",
                InstType::Zero,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_fixed_body_atom() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("e", 2), ("p", 1), ("q", 1)], 10, 4);
            agree(
                &db,
                "N(X) <- N(Y), e(X,Y)",
                InstType::Zero,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn decide_matches_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 10, 4);
            let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
            for kind in IndexKind::ALL {
                for k in [Frac::ZERO, Frac::new(1, 2), Frac::new(9, 10)] {
                    let p = MqProblem {
                        index: kind,
                        threshold: k,
                        ty: InstType::Zero,
                    };
                    assert_eq!(
                        naive::decide(&db, &mq, p).unwrap(),
                        decide(&db, &mq, p).unwrap(),
                        "decide disagrees for {kind} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn body_decomposition_widths() {
        let chain = parse_metaquery("R(X,W) <- P(X,Y), Q(Y,Z), S(Z,W)").unwrap();
        assert_eq!(body_decomposition(&chain).width, 1);
        let triangle = parse_metaquery("R(X,Y) <- P(X,Y), Q(Y,Z), S(Z,X)").unwrap();
        assert_eq!(body_decomposition(&triangle).width, 2);
    }
}
