//! The `findRules` algorithm (Figure 4).
//!
//! Answering proceeds in the paper's three phases:
//!
//! 1. **findBodies** — a bottom-up visit of a complete hypertree
//!    decomposition `⟨T, χ, λ⟩` of `body(MQ)`. Visiting vertex `p_ν(i)`
//!    extends the current partial instantiation `σb` with instantiations
//!    `σi` of the not-yet-mapped patterns in `λ(p_ν(i))`, computes
//!    `r[i] := π_χ(J(σi(λ(p_ν(i)))))`, semijoins it with the children's
//!    `r[·]` (the *first half* of a full reducer, interleaved with the
//!    search), and prunes the branch when `r[i]` is empty.
//! 2. At the root, the *second half* of the full reducer produces globally
//!    consistent reduced relations `s[·]`, from which `enoughSupport`
//!    evaluates `sup(σb(body)) > k_sup` exactly and cheaply.
//! 3. **findHeads** — the body join `b = J(σb(body(MQ)))` is assembled
//!    from the reduced relations; every head instantiation `σh` that
//!    agrees with `σb` is checked with two semijoins:
//!    `cvr = |h ⋉ b| / |h|` and `cnf = |b ⋉ h| / |b|`.
//!
//! The decomposition is computed once: by Proposition 4.9, applying any
//! instantiation `σ` to the `λ` labels preserves a width-`c`
//! decomposition, so one decomposition serves every instantiation.
//!
//! ## Execution strategy
//!
//! The enumeration machinery is split into an immutable [`Setup`] (the
//! decomposition, per-pattern candidates, thresholds) and a lightweight
//! per-search `Engine` (assignment stacks, node relations, and a memo of
//! instantiated-atom bindings keyed by `(relation, terms)` so the same
//! atom evaluation is shared across instantiations). Multi-atom node
//! joins are **planned**, not folded in λ-label order: atoms are ordered
//! by a cardinality/selectivity estimate ([`crate::cost::plan_join_order`]),
//! intermediates are projected onto the still-needed variables (applying
//! purely-filtering atoms as semijoins), and every planned prefix is
//! memoized so sibling instantiations sharing a prefix reuse the
//! intermediate — see [`Engine::plan_node_join`]. [`find_rules`]
//! partitions the search space by the first pattern assignment of the
//! first decomposition vertex and runs the partitions on rayon workers —
//! each with its own `Engine` — merging per-candidate result vectors in
//! enumeration order, so answers are identical (and identically ordered
//! after [`crate::engine::sort_answers`]) to the sequential
//! [`find_rules_seq`].

use crate::ast::{Metaquery, Pred, PredVarId};
use crate::cost::{plan_join_order, JoinAtomStats};
use crate::engine::{MqAnswer, MqProblem, Thresholds};
use crate::index::IndexValues;
use crate::instantiate::{
    check_fixed_schemes, pattern_candidates, InstError, InstType, Instantiation, PatternMap,
};
use mq_cq::hypertree::{hypertree_width_of_sets, Hypertree};
use mq_relation::{Bindings, Database, Frac, RelId, Term, VarId};
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::ops::ControlFlow;
use std::rc::Rc;

/// Find all type-`ty` instantiations whose indices clear `thresholds`,
/// using the Figure 4 algorithm with the outer pattern enumeration run in
/// parallel. Answers match [`crate::engine::naive`] exactly (including the
/// degenerate no-thresholds case) and are returned in sorted order.
pub fn find_rules(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
) -> Result<Vec<MqAnswer>, InstError> {
    validate(db, mq, ty)?;
    let setup = Setup::new(db, mq, ty, thresholds);
    let mut out = match setup.top_split() {
        Some(split)
            if split.tasks.len() >= 2 && parallel_enabled() && rayon::current_num_threads() > 1 =>
        {
            let results: Vec<Vec<MqAnswer>> = split
                .tasks
                .into_par_iter()
                .map(|(rel, slots)| {
                    let mut local = Vec::new();
                    {
                        let mut engine = Engine::new(&setup, |ans: &MqAnswer| {
                            local.push(ans.clone());
                            ControlFlow::Continue(())
                        });
                        engine.preassign(split.pidx, rel, slots);
                        let _ = engine.find_bodies(0);
                    }
                    local
                })
                .collect();
            results.into_iter().flatten().collect()
        }
        _ => collect_sequential(&setup),
    };
    crate::engine::sort_answers(&mut out);
    Ok(out)
}

/// Single-threaded `findRules` (the parallel driver's reference). Public
/// so benchmarks and the determinism regression test can compare against
/// [`find_rules`].
pub fn find_rules_seq(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
) -> Result<Vec<MqAnswer>, InstError> {
    validate(db, mq, ty)?;
    let setup = Setup::new(db, mq, ty, thresholds);
    let mut out = collect_sequential(&setup);
    crate::engine::sort_answers(&mut out);
    Ok(out)
}

fn collect_sequential(setup: &Setup) -> Vec<MqAnswer> {
    let mut out = Vec::new();
    {
        let mut engine = Engine::new(setup, |ans: &MqAnswer| {
            out.push(ans.clone());
            ControlFlow::Continue(())
        });
        let _ = engine.find_bodies(0);
    }
    out
}

/// Whether the parallel driver is enabled (`MQ_PARALLEL=0` disables it;
/// baseline mode always runs sequentially so A/B timings compare the
/// pre-optimization engine faithfully).
fn parallel_enabled() -> bool {
    if mq_relation::baseline_mode() {
        return false;
    }
    match std::env::var_os("MQ_PARALLEL") {
        Some(v) => !matches!(v.to_str(), Some("0") | Some("false") | Some("off")),
        None => true,
    }
}

/// Decide `⟨DB, MQ, I, k, T⟩` with `findRules`, stopping at the first
/// witness.
pub fn decide(db: &Database, mq: &Metaquery, problem: MqProblem) -> Result<bool, InstError> {
    let mut found = false;
    find_rules_with(
        db,
        mq,
        problem.ty,
        Thresholds::single(problem.index, problem.threshold),
        |_| {
            found = true;
            ControlFlow::Break(())
        },
    )?;
    Ok(found)
}

/// Streaming variant: invoke `f` on each answer; `Break` stops the search.
/// Returns `true` if stopped early. Always sequential (streaming order is
/// the enumeration order).
pub fn find_rules_with(
    db: &Database,
    mq: &Metaquery,
    ty: InstType,
    thresholds: Thresholds,
    f: impl FnMut(&MqAnswer) -> ControlFlow<()>,
) -> Result<bool, InstError> {
    validate(db, mq, ty)?;
    let setup = Setup::new(db, mq, ty, thresholds);
    let mut engine = Engine::new(&setup, f);
    let stopped = engine.find_bodies(0).is_break();
    Ok(stopped)
}

fn validate(db: &Database, mq: &Metaquery, ty: InstType) -> Result<(), InstError> {
    if ty != InstType::Two && !mq.is_pure() {
        return Err(InstError::NotPure);
    }
    if !mq.is_safe() {
        return Err(InstError::UnsafeNegation);
    }
    check_fixed_schemes(db, mq)?;
    assert!(!mq.body.is_empty(), "metaquery body must be non-empty");
    Ok(())
}

/// The diagnostic facts `findRules` precomputes; exposed so benchmarks can
/// report the decomposition width `c` of Theorem 4.12.
#[derive(Clone, Debug)]
pub struct BodyDecomposition {
    /// The hypertree width of `body(MQ)`.
    pub width: usize,
    /// Number of decomposition vertices.
    pub vertices: usize,
}

/// Compute `body(MQ)`'s hypertree width and decomposition size.
pub fn body_decomposition(mq: &Metaquery) -> BodyDecomposition {
    let edges: Vec<BTreeSet<VarId>> = mq.body.iter().map(|l| l.var_set()).collect();
    let (width, ht) = hypertree_width_of_sets(&edges).expect("non-empty body");
    BodyDecomposition {
        width,
        vertices: ht.len(),
    }
}

/// Everything `findRules` computes **once** per (database, metaquery,
/// type, thresholds) — immutable and shared by every search engine,
/// including parallel workers.
struct Setup<'a> {
    db: &'a Database,
    mq: &'a Metaquery,
    thresholds: Thresholds,
    /// `true` when a rule with all-zero indices would be accepted; in that
    /// case empty-join pruning must be disabled to match the naive engine.
    zero_ok: bool,

    ht: Hypertree,
    /// Bottom-up visit: postorder node list (the paper's ν).
    post: Vec<usize>,
    /// node -> its postorder position.
    pos_of: Vec<usize>,

    /// Global pattern count and scheme info. Pattern index 0 is the head
    /// pattern when the head is a pattern; body patterns follow in order.
    head_is_pattern: bool,
    /// body scheme index -> global pattern index (None if fixed atom).
    body_pattern: Vec<Option<usize>>,
    /// negated body scheme index -> global pattern index (None if fixed).
    neg_pattern: Vec<Option<usize>>,
    /// Per global pattern: candidate relation -> slot maps.
    candidates: Vec<HashMap<RelId, Vec<Vec<Option<usize>>>>>,
    /// Per global pattern: pre-allocated fresh padding variables, one per
    /// relation position (type-2); index j pads position j.
    fresh_slots: Vec<Vec<VarId>>,
    /// Per global pattern: its predicate variable.
    pattern_pv: Vec<PredVarId>,
}

/// The deterministic partition of the search space used by the parallel
/// driver: every candidate assignment of the first pattern enumerated at
/// the first decomposition vertex.
struct TopSplit {
    pidx: usize,
    tasks: Vec<(RelId, Vec<Option<usize>>)>,
}

impl<'a> Setup<'a> {
    fn new(db: &'a Database, mq: &'a Metaquery, ty: InstType, thresholds: Thresholds) -> Self {
        // Decomposition of the body literal schemes' ordinary variables.
        let edges: Vec<BTreeSet<VarId>> = mq.body.iter().map(|l| l.var_set()).collect();
        let (_, mut ht) = hypertree_width_of_sets(&edges).expect("non-empty body");
        ht.complete_edges(edges.len());
        let post = ht.postorder();
        let mut pos_of = vec![0usize; ht.len()];
        for (i, &n) in post.iter().enumerate() {
            pos_of[n] = i;
        }

        // Global pattern bookkeeping (head first, as in rep(MQ)).
        let head_is_pattern = mq.head.is_pattern();
        let mut schemes = Vec::new();
        if head_is_pattern {
            schemes.push(&mq.head);
        }
        let mut body_pattern = Vec::with_capacity(mq.body.len());
        for l in &mq.body {
            if l.is_pattern() {
                body_pattern.push(Some(schemes.len()));
                schemes.push(l);
            } else {
                body_pattern.push(None);
            }
        }
        let mut neg_pattern = Vec::with_capacity(mq.neg_body.len());
        for l in &mq.neg_body {
            if l.is_pattern() {
                neg_pattern.push(Some(schemes.len()));
                schemes.push(l);
            } else {
                neg_pattern.push(None);
            }
        }
        let candidates: Vec<_> = schemes
            .iter()
            .map(|s| pattern_candidates(db, s, ty))
            .collect();
        let pattern_pv: Vec<PredVarId> = schemes
            .iter()
            .map(|s| match s.pred {
                Pred::Var(p) => p,
                Pred::Rel(_) => unreachable!("patterns have predicate variables"),
            })
            .collect();
        // Fresh padding variables: one per pattern per possible position.
        let mut pool = mq.vars.clone();
        let max_arity = db.max_arity();
        let fresh_slots: Vec<Vec<VarId>> = schemes
            .iter()
            .map(|_| (0..max_arity).map(|_| pool.fresh()).collect())
            .collect();

        let zero = IndexValues {
            sup: Frac::ZERO,
            cnf: Frac::ZERO,
            cvr: Frac::ZERO,
        };
        Setup {
            db,
            mq,
            thresholds,
            zero_ok: thresholds.accepts(&zero),
            ht,
            post,
            pos_of,
            head_is_pattern,
            body_pattern,
            neg_pattern,
            candidates,
            fresh_slots,
            pattern_pv,
        }
    }

    /// The candidate assignments of the first pattern the search would
    /// enumerate, in enumeration order — the parallel partition points.
    /// `None` when the first vertex binds no pattern (all fixed atoms).
    fn top_split(&self) -> Option<TopSplit> {
        let node = self.post[0];
        let pidx = self.ht.nodes[node]
            .lambda
            .iter()
            .find_map(|&bi| self.body_pattern[bi])?;
        let mut rels: Vec<RelId> = self.candidates[pidx].keys().copied().collect();
        rels.sort();
        let mut tasks = Vec::new();
        for rel in rels {
            for slots in &self.candidates[pidx][&rel] {
                tasks.push((rel, slots.clone()));
            }
        }
        Some(TopSplit { pidx, tasks })
    }
}

/// An instantiated atom — the memo-key unit shared by the atom cache and
/// the partial-join memo.
type AtomKey = (RelId, Vec<Term>);

/// Per-search mutable state: assignment stacks, node relations, and the
/// atom-bindings memo. Cheap to construct — one per parallel worker.
struct Engine<'a, 'b, F> {
    setup: &'b Setup<'a>,
    f: F,
    /// Search state: per-pattern assignment.
    assign: Vec<Option<PatternMap>>,
    /// Predicate variable -> (relation, how many patterns pinned it).
    pv_rel: HashMap<PredVarId, (RelId, usize)>,
    /// Per postorder position: the reduced node relation `r[i]`.
    r: Vec<Option<Bindings>>,
    /// Memo of instantiated-atom bindings, keyed by `(relation, terms)`.
    /// Instantiations overwhelmingly share atom evaluations (each pattern
    /// ranges over few relations), so evaluating once per distinct
    /// instantiated atom — instead of once per use per instantiation —
    /// removes most `from_atom` work from the enumeration.
    atom_cache: HashMap<AtomKey, Rc<Bindings>>,
    /// Memo of `π_χ(J(σi(λ(p_ν(i)))))` per decomposition vertex, keyed by
    /// the vertex and its λ patterns' assignments: the projected node join
    /// is independent of every *other* pattern's assignment, so sibling
    /// instantiations share it (only the child semijoins differ).
    node_cache: HashMap<(usize, Vec<PatternMap>), Rc<Bindings>>,
    /// Memo of *partial* λ-join prefixes, keyed by the planned prefix of
    /// instantiated atoms and the variables the intermediate keeps (the
    /// projection applied, `χ ∪ vars(remaining atoms)` restricted to the
    /// prefix). Sibling λ assignments that differ only in later-planned
    /// atoms — the inner loops of the pattern enumeration — resume from
    /// the shared prefix instead of rejoining from scratch, and because
    /// the key carries no vertex, prefixes are even shared across
    /// decomposition vertices whose λ labels overlap.
    partial_cache: HashMap<(Vec<AtomKey>, Vec<VarId>), Rc<Bindings>>,
}

impl<'a, 'b, F: FnMut(&MqAnswer) -> ControlFlow<()>> Engine<'a, 'b, F> {
    fn new(setup: &'b Setup<'a>, f: F) -> Self {
        let n_patterns = setup.candidates.len();
        let n_pos = setup.post.len();
        Engine {
            setup,
            f,
            assign: vec![None; n_patterns],
            pv_rel: HashMap::new(),
            r: vec![None; n_pos],
            atom_cache: HashMap::new(),
            node_cache: HashMap::new(),
            partial_cache: HashMap::new(),
        }
    }

    /// Pin pattern `pidx` to `(rel, slots)` before the search starts (the
    /// parallel driver's partition point). Mirrors one iteration of the
    /// `enum_node` candidate loop.
    fn preassign(&mut self, pidx: usize, rel: RelId, slots: Vec<Option<usize>>) {
        let pv = self.setup.pattern_pv[pidx];
        self.pv_rel.insert(pv, (rel, 1));
        self.assign[pidx] = Some(PatternMap { rel, slots });
    }

    /// Evaluate `rel(terms)` once, memoized. In baseline mode the memo is
    /// bypassed so A/B timings measure the pre-optimization engine (which
    /// re-evaluated every atom at every use) faithfully.
    fn eval_atom(&mut self, rel: RelId, terms: Vec<Term>) -> Rc<Bindings> {
        let db = self.setup.db;
        if mq_relation::baseline_mode() {
            return Rc::new(Bindings::from_atom(db.relation(rel), &terms));
        }
        Rc::clone(
            self.atom_cache
                .entry((rel, terms))
                .or_insert_with_key(|(rel, terms)| {
                    Rc::new(Bindings::from_atom(db.relation(*rel), terms))
                }),
        )
    }

    /// Instantiated terms for body scheme `bi` under the current (partial)
    /// assignment. Only called when the scheme is fixed or assigned.
    fn body_atom_terms(&self, bi: usize) -> (RelId, Vec<Term>) {
        let setup = self.setup;
        let scheme = &setup.mq.body[bi];
        match setup.body_pattern[bi] {
            None => {
                let name = match &scheme.pred {
                    Pred::Rel(n) => n,
                    Pred::Var(_) => unreachable!(),
                };
                let rel = setup.db.rel_id(name).expect("checked in setup");
                (rel, scheme.args.iter().map(|&v| Term::Var(v)).collect())
            }
            Some(pidx) => {
                let map = self.assign[pidx].as_ref().expect("assigned");
                let terms = map
                    .slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| match slot {
                        Some(i) => Term::Var(scheme.args[*i]),
                        None => Term::Var(setup.fresh_slots[pidx][j]),
                    })
                    .collect();
                (map.rel, terms)
            }
        }
    }

    fn eval_body_atom(&mut self, bi: usize) -> Rc<Bindings> {
        let (rel, terms) = self.body_atom_terms(bi);
        self.eval_atom(rel, terms)
    }

    /// `π_χ(J(σi(λ(p_ν(i)))))` for vertex `node`, memoized by the λ
    /// patterns' current assignments. The optimized path plans the join
    /// instead of folding λ in label order — see
    /// [`Engine::plan_node_join`].
    fn eval_node_join(&mut self, node: usize, lambda: &[usize]) -> Rc<Bindings> {
        if mq_relation::baseline_mode() {
            // Pre-optimization engine: fold in raw λ order, no planning,
            // no memo — the A/B comparison target of `bench_report`.
            let mut join = Bindings::unit();
            for &bi in lambda {
                let b = self.eval_body_atom(bi);
                join = join.join(&b);
                if join.is_empty() {
                    break;
                }
            }
            let chi: Vec<VarId> = self.setup.ht.nodes[node].chi.iter().copied().collect();
            return Rc::new(join.project(&chi));
        }
        let key_maps: Vec<PatternMap> = lambda
            .iter()
            .filter_map(|&bi| self.setup.body_pattern[bi])
            .map(|pidx| self.assign[pidx].clone().expect("λ patterns assigned"))
            .collect();
        let key = (node, key_maps);
        if let Some(hit) = self.node_cache.get(&key) {
            return Rc::clone(hit);
        }
        let built = self.plan_node_join(node, lambda);
        self.node_cache.insert(key, Rc::clone(&built));
        built
    }

    /// Cost-guided, prefix-memoized evaluation of the node join
    /// `π_χ(J(σi(λ(p_ν(i)))))`.
    ///
    /// The λ atoms are joined in a planned order ([`plan_join_order`]):
    /// smallest atom first, then greedily by estimated hash-join fan-out
    /// (`len / distinct_keys` on the shared columns, both read off the
    /// cached [`mq_relation::hashjoin::GroupIndex`]). Completed width-≥2
    /// decompositions routinely label a vertex with variable-disjoint atom
    /// pairs, and the raw λ fold joined those into a `d²` cross product
    /// before the connecting atom could filter it — the fig-4 width-2
    /// cycle slowdown.
    ///
    /// Two further refinements keep the largest intermediate from ever
    /// materializing:
    ///
    /// * each intermediate is projected onto the variables still *needed*
    ///   (`χ ∪ vars(remaining atoms)`), and
    /// * an atom contributing no needed variable is applied as a
    ///   **semijoin** — `π_V(J ⋈ A) = π_V(J ⋉ A)` when `A` adds no
    ///   variable of `V`, and the semijoin never multiplies rows.
    ///
    /// Every planned prefix is memoized by `(instantiated atoms, kept
    /// variables)`, so sibling instantiations that differ only in
    /// later-planned atoms resume from the shared intermediate.
    fn plan_node_join(&mut self, node: usize, lambda: &[usize]) -> Rc<Bindings> {
        let chi: Vec<VarId> = self.setup.ht.nodes[node].chi.iter().copied().collect();
        let keys: Vec<AtomKey> = lambda.iter().map(|&bi| self.body_atom_terms(bi)).collect();
        let atoms: Vec<Rc<Bindings>> = keys
            .iter()
            .map(|(rel, terms)| self.eval_atom(*rel, terms.clone()))
            .collect();
        if let [atom] = atoms.as_slice() {
            return Rc::new(atom.project(&chi));
        }
        let stats: Vec<JoinAtomStats> = atoms
            .iter()
            .map(|b| JoinAtomStats {
                len: b.len(),
                vars: b.vars().to_vec(),
            })
            .collect();
        let order = plan_join_order(&stats, |i, shared| {
            atoms[i].len() as f64 / atoms[i].distinct_keys(shared).max(1) as f64
        });
        // needed[k]: variables the pipeline still requires after step k —
        // χ plus everything a later-planned atom joins on.
        let mut needed: Vec<BTreeSet<VarId>> = Vec::with_capacity(order.len());
        let mut acc_need: BTreeSet<VarId> = chi.iter().copied().collect();
        for &ai in order.iter().rev() {
            needed.push(acc_need.clone());
            acc_need.extend(atoms[ai].vars().iter().copied());
        }
        needed.reverse();

        let mut prefix: Vec<AtomKey> = Vec::with_capacity(order.len());
        let mut covered: BTreeSet<VarId> = BTreeSet::new();
        let mut acc: Option<Rc<Bindings>> = None;
        for (k, &ai) in order.iter().enumerate() {
            prefix.push(keys[ai].clone());
            covered.extend(atoms[ai].vars().iter().copied());
            let kept: Vec<VarId> = covered
                .iter()
                .copied()
                .filter(|v| needed[k].contains(v))
                .collect();
            let memo_key = (prefix.clone(), kept.clone());
            if let Some(hit) = self.partial_cache.get(&memo_key) {
                let empty = hit.is_empty();
                acc = Some(Rc::clone(hit));
                if empty {
                    break; // joins and semijoins both preserve emptiness
                }
                continue;
            }
            let next = match &acc {
                None => Rc::new(atoms[ai].project(&kept)),
                Some(a) => {
                    let adds_needed = atoms[ai]
                        .vars()
                        .iter()
                        .any(|v| a.position(*v).is_none() && needed[k].contains(v));
                    let stepped = if adds_needed {
                        a.join(&atoms[ai])
                    } else {
                        a.semijoin(&atoms[ai])
                    };
                    Rc::new(stepped.project(&kept))
                }
            };
            self.partial_cache.insert(memo_key, Rc::clone(&next));
            let empty = next.is_empty();
            acc = Some(next);
            if empty {
                break; // joins and semijoins both preserve emptiness
            }
        }
        // The last step's kept set is `covered ∩ χ` in sorted order —
        // exactly what projecting the full join onto χ produces.
        acc.expect("λ labels are non-empty")
    }

    /// Instantiated terms for negated body scheme `ni` (must be fixed or
    /// assigned).
    fn neg_atom_terms(&self, ni: usize) -> (RelId, Vec<Term>) {
        let setup = self.setup;
        let scheme = &setup.mq.neg_body[ni];
        match setup.neg_pattern[ni] {
            None => {
                let name = match &scheme.pred {
                    Pred::Rel(n) => n,
                    Pred::Var(_) => unreachable!(),
                };
                let rel = setup.db.rel_id(name).expect("checked in setup");
                (rel, scheme.args.iter().map(|&v| Term::Var(v)).collect())
            }
            Some(pidx) => {
                let map = self.assign[pidx].as_ref().expect("assigned");
                let terms = map
                    .slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| match slot {
                        Some(i) => Term::Var(scheme.args[*i]),
                        None => Term::Var(setup.fresh_slots[pidx][j]),
                    })
                    .collect();
                (map.rel, terms)
            }
        }
    }

    /// The paper's `findBodies(i, σb)`.
    fn find_bodies(&mut self, i: usize) -> ControlFlow<()> {
        if i == self.setup.post.len() {
            return self.second_half_and_heads();
        }
        let node = self.setup.post[i];
        // Patterns of λ(p_ν(i)) not yet instantiated.
        let lambda = self.setup.ht.nodes[node].lambda.clone();
        let to_assign: Vec<usize> = lambda
            .iter()
            .filter_map(|&bi| self.setup.body_pattern[bi])
            .filter(|&pidx| self.assign[pidx].is_none())
            .collect();
        self.enum_node(i, node, &lambda, &to_assign, 0)
    }

    /// Enumerate assignments for the node's unassigned patterns, then
    /// compute `r[i]` and recurse.
    fn enum_node(
        &mut self,
        i: usize,
        node: usize,
        lambda: &[usize],
        to_assign: &[usize],
        depth: usize,
    ) -> ControlFlow<()> {
        if depth == to_assign.len() {
            // All λ patterns mapped: r[i] := π_χ(J(σi(λ(p_ν(i))))),
            // memoized per (vertex, λ assignment) and shared across the
            // sibling instantiations that only differ elsewhere.
            let projected = self.eval_node_join(node, lambda);
            let mut r_i = (*projected).clone();
            for &child in &self.setup.ht.children[node] {
                let cpos = self.setup.pos_of[child];
                let child_r = self.r[cpos].as_ref().expect("children visited first");
                r_i = r_i.semijoin(child_r);
            }
            if r_i.is_empty() && !self.setup.zero_ok {
                return ControlFlow::Continue(()); // prune this branch
            }
            self.r[i] = Some(r_i);
            let flow = self.find_bodies(i + 1);
            self.r[i] = None;
            return flow;
        }

        let pidx = to_assign[depth];
        let pv = self.setup.pattern_pv[pidx];
        let locked = self.pv_rel.get(&pv).map(|&(r, _)| r);
        let rels: Vec<RelId> = match locked {
            Some(r) if self.setup.candidates[pidx].contains_key(&r) => vec![r],
            Some(_) => Vec::new(),
            None => {
                let mut rels: Vec<RelId> = self.setup.candidates[pidx].keys().copied().collect();
                rels.sort();
                rels
            }
        };
        for rel in rels {
            self.pv_rel
                .entry(pv)
                .and_modify(|e| e.1 += 1)
                .or_insert((rel, 1));
            let slot_sets = self.setup.candidates[pidx][&rel].clone();
            for slots in slot_sets {
                self.assign[pidx] = Some(PatternMap { rel, slots });
                let flow = self.enum_node(i, node, lambda, to_assign, depth + 1);
                self.assign[pidx] = None;
                if flow.is_break() {
                    self.unpin(pv);
                    return ControlFlow::Break(());
                }
            }
            self.unpin(pv);
        }
        ControlFlow::Continue(())
    }

    fn unpin(&mut self, pv: PredVarId) {
        if let Some(e) = self.pv_rel.get_mut(&pv) {
            if e.1 == 1 {
                self.pv_rel.remove(&pv);
            } else {
                e.1 -= 1;
            }
        }
    }

    /// Second half of the full reducer, `enoughSupport`, and `findHeads`.
    fn second_half_and_heads(&mut self) -> ControlFlow<()> {
        let setup = self.setup;
        let n = setup.post.len();
        // s[j] for postorder positions; root is position n-1.
        let mut s: Vec<Bindings> = Vec::with_capacity(n);
        for j in 0..n {
            s.push(self.r[j].as_ref().expect("all nodes computed").clone());
        }
        for j in (0..n.saturating_sub(1)).rev() {
            let node = setup.post[j];
            let parent = setup.ht.parent[node].expect("non-root has parent");
            let ppos = setup.pos_of[parent];
            s[j] = s[j].semijoin(&s[ppos]);
        }

        // enoughSupport (exact: sup > k iff some atom's fraction > k).
        let mut body_atoms: Vec<Rc<Bindings>> = Vec::with_capacity(setup.mq.body.len());
        for bi in 0..setup.mq.body.len() {
            body_atoms.push(self.eval_body_atom(bi));
        }
        if let Some(ksup) = setup.thresholds.sup {
            let mut enough = false;
            for (bi, ra) in body_atoms.iter().enumerate() {
                if ra.is_empty() {
                    continue;
                }
                let s_home = &s[setup.pos_of[setup.ht.atom_home[bi]]];
                // When s[home] ranges over exactly the atom's variables it
                // is itself the reduced atom (every s-row is an ra-row and
                // reduction only drops rows), so |ra ⋉ s| = |s|. (Engine
                // shortcut: disabled in baseline mode so A/B timings
                // reproduce the pre-optimization engine.)
                let reduced = if !mq_relation::baseline_mode() && s_home.vars() == ra.vars() {
                    s_home.len()
                } else {
                    ra.semijoin_count(s_home)
                };
                if Frac::ratio_or_zero(reduced as u64, ra.len() as u64) > ksup {
                    enough = true;
                    break;
                }
            }
            if !enough {
                return ControlFlow::Continue(());
            }
        }

        // b := J(σb(body(MQ))), assembled from the reduced atoms (joining
        // reduced relations is exact: reduction only removes dangling
        // tuples). Join in postorder of homes for join-tree locality.
        let mut order: Vec<usize> = (0..setup.mq.body.len()).collect();
        order.sort_by_key(|&bi| setup.pos_of[setup.ht.atom_home[bi]]);
        let mut b = Bindings::unit();
        for &bi in &order {
            let s_home = &s[setup.pos_of[setup.ht.atom_home[bi]]];
            // Same identity as in enoughSupport: a vertex relation over
            // exactly the atom's variables is the reduced atom already.
            let reduced = if !mq_relation::baseline_mode() && s_home.vars() == body_atoms[bi].vars()
            {
                s_home.clone()
            } else {
                body_atoms[bi].semijoin(s_home)
            };
            // An atom contributing no new variable is a pure filter:
            // `b ⋈ reduced = b ⋉ reduced` (set semantics), and the
            // semijoin never re-materializes surviving rows. Cyclic
            // bodies always close with such an atom.
            let filter_only = !mq_relation::baseline_mode()
                && !b.vars().is_empty()
                && reduced.vars().iter().all(|v| b.position(*v).is_some());
            b = if filter_only {
                b.semijoin(&reduced)
            } else {
                b.join(&reduced)
            };
            if b.is_empty() && !setup.zero_ok {
                return ControlFlow::Continue(());
            }
        }

        // With no negated literals, the exact support is available from
        // the reduced vertex relations: after both reducer halves the
        // tree is fully reduced, so `s[j] = π_χ(j)(b)` (Yannakakis).
        // For an atom whose instantiated variables all occur in χ(home),
        // projection composes — `π_vars(b) = π_vars(s[home])` — so the
        // support count runs over the (small) vertex relation, never the
        // assembled join; when the variables are *exactly* the vertex's,
        // the count is just `|s[home]|`.
        let sup_hint: Option<Frac> =
            if setup.mq.neg_body.is_empty() && !mq_relation::baseline_mode() {
                let mut sup = Some(Frac::ZERO);
                for (bi, ra) in body_atoms.iter().enumerate() {
                    if ra.is_empty() {
                        continue;
                    }
                    let s_home = &s[setup.pos_of[setup.ht.atom_home[bi]]];
                    let vars = self.mq_body_atom_vars(bi);
                    if vars.iter().all(|v| s_home.position(*v).is_some()) {
                        let num = if s_home.vars() == vars.as_slice() {
                            s_home.len()
                        } else {
                            s_home.count_distinct(&vars)
                        };
                        let f = Frac::ratio_or_zero(num as u64, ra.len() as u64);
                        if let Some(cur) = sup {
                            if f > cur {
                                sup = Some(f);
                            }
                        }
                    } else {
                        // Atom variables outside the decomposition (type-2
                        // padding): fall back to counting over the
                        // assembled join.
                        sup = None;
                        break;
                    }
                }
                sup
            } else {
                None
            };

        self.enum_neg(0, b, &body_atoms, sup_hint)
    }

    /// Assign negated patterns (agreeing with σb) and apply their
    /// antijoins to the body join, then compute the exact support and
    /// proceed to `findHeads`. Negated atoms only ever shrink the body
    /// join, so the earlier `enoughSupport` prune (an upper bound) stays
    /// sound.
    fn enum_neg(
        &mut self,
        ni: usize,
        b: Bindings,
        body_atoms: &[Rc<Bindings>],
        sup_hint: Option<Frac>,
    ) -> ControlFlow<()> {
        let setup = self.setup;
        if ni == setup.mq.neg_body.len() {
            // Exact support values for reporting, on the filtered join
            // (or precomputed from the reduced tree when no negated atom
            // filtered it — see `second_half_and_heads`).
            let sup = sup_hint.unwrap_or_else(|| {
                let mut sup = Frac::ZERO;
                for (bi, ra) in body_atoms.iter().enumerate() {
                    if ra.is_empty() {
                        continue;
                    }
                    let vars = self.mq_body_atom_vars(bi);
                    let num = b.count_distinct(&vars) as u64;
                    let f = Frac::ratio_or_zero(num, ra.len() as u64);
                    if f > sup {
                        sup = f;
                    }
                }
                sup
            });
            if let Some(ksup) = setup.thresholds.sup {
                if sup <= ksup {
                    return ControlFlow::Continue(());
                }
            }
            return self.find_heads(&b, sup);
        }
        match setup.neg_pattern[ni].filter(|&pidx| self.assign[pidx].is_none()) {
            None => {
                // Fixed atom or already-assigned pattern: filter and go on.
                let (rel, terms) = self.neg_atom_terms(ni);
                let jn = self.eval_atom(rel, terms);
                let filtered = b.antijoin(&jn);
                if filtered.is_empty() && !setup.zero_ok {
                    return ControlFlow::Continue(());
                }
                self.enum_neg(ni + 1, filtered, body_atoms, sup_hint)
            }
            Some(pidx) => {
                let pv = setup.pattern_pv[pidx];
                let locked = self.pv_rel.get(&pv).map(|&(r, _)| r);
                let rels: Vec<RelId> = match locked {
                    Some(r) if setup.candidates[pidx].contains_key(&r) => vec![r],
                    Some(_) => Vec::new(),
                    None => {
                        let mut rels: Vec<RelId> = setup.candidates[pidx].keys().copied().collect();
                        rels.sort();
                        rels
                    }
                };
                for rel in rels {
                    self.pv_rel
                        .entry(pv)
                        .and_modify(|e| e.1 += 1)
                        .or_insert((rel, 1));
                    let slot_sets = setup.candidates[pidx][&rel].clone();
                    for slots in slot_sets {
                        self.assign[pidx] = Some(PatternMap { rel, slots });
                        let (nrel, terms) = self.neg_atom_terms(ni);
                        let jn = self.eval_atom(nrel, terms);
                        let filtered = b.antijoin(&jn);
                        let flow = if filtered.is_empty() && !setup.zero_ok {
                            ControlFlow::Continue(())
                        } else {
                            self.enum_neg(ni + 1, filtered, body_atoms, sup_hint)
                        };
                        self.assign[pidx] = None;
                        if flow.is_break() {
                            self.unpin(pv);
                            return ControlFlow::Break(());
                        }
                    }
                    self.unpin(pv);
                }
                ControlFlow::Continue(())
            }
        }
    }

    /// Distinct variables of instantiated body atom `bi` (including
    /// padding).
    fn mq_body_atom_vars(&self, bi: usize) -> Vec<VarId> {
        let (_, terms) = self.body_atom_terms(bi);
        mq_relation::distinct_vars(&terms)
    }

    /// The paper's `findHeads(σb)`: enumerate head instantiations agreeing
    /// with the body instantiation and test cover/confidence by semijoin.
    fn find_heads(&mut self, b: &Bindings, sup: Frac) -> ControlFlow<()> {
        let setup = self.setup;
        if !setup.head_is_pattern {
            let name = match &setup.mq.head.pred {
                Pred::Rel(n) => n,
                Pred::Var(_) => unreachable!(),
            };
            let rel = setup.db.rel_id(name).expect("checked in setup");
            let terms: Vec<Term> = setup.mq.head.args.iter().map(|&v| Term::Var(v)).collect();
            return self.check_head(b, sup, None, rel, terms);
        }
        // Head pattern has global index 0.
        let pv = setup.pattern_pv[0];
        let locked = self.pv_rel.get(&pv).map(|&(r, _)| r);
        let rels: Vec<RelId> = match locked {
            Some(r) if setup.candidates[0].contains_key(&r) => vec![r],
            Some(_) => Vec::new(),
            None => {
                let mut rels: Vec<RelId> = setup.candidates[0].keys().copied().collect();
                rels.sort();
                rels
            }
        };
        for rel in rels {
            let slot_sets = setup.candidates[0][&rel].clone();
            for slots in slot_sets {
                let terms: Vec<Term> = slots
                    .iter()
                    .enumerate()
                    .map(|(j, slot)| match slot {
                        Some(i) => Term::Var(setup.mq.head.args[*i]),
                        None => Term::Var(setup.fresh_slots[0][j]),
                    })
                    .collect();
                let map = PatternMap {
                    rel,
                    slots: slots.clone(),
                };
                if self.check_head(b, sup, Some(map), rel, terms).is_break() {
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::Continue(())
    }

    fn check_head(
        &mut self,
        b: &Bindings,
        sup: Frac,
        head_map: Option<PatternMap>,
        head_rel: RelId,
        head_terms: Vec<Term>,
    ) -> ControlFlow<()> {
        let h = self.eval_atom(head_rel, head_terms);
        // cvr = |h ⋉ b| / |h| — a pure count, no rows materialized.
        let cvr = Frac::ratio_or_zero(h.semijoin_count(b) as u64, h.len() as u64);
        if let Some(k) = self.setup.thresholds.cvr {
            if cvr <= k {
                return ControlFlow::Continue(());
            }
        }
        // cnf = |b ⋉ h| / |b| (equivalently b ⋉ h': every h-row whose key
        // occurs in b is itself in h', so the key sets agree). Probing `h`
        // reuses its cached index across every body instantiation.
        let cnf = Frac::ratio_or_zero(b.semijoin_count(&h) as u64, b.len() as u64);
        if let Some(k) = self.setup.thresholds.cnf {
            if cnf <= k {
                return ControlFlow::Continue(());
            }
        }
        let iv = IndexValues { sup, cnf, cvr };
        if !self.setup.thresholds.accepts(&iv) {
            return ControlFlow::Continue(());
        }
        // Assemble the full instantiation in rep(MQ) order.
        let mut maps = Vec::new();
        if let Some(hm) = head_map {
            maps.push(hm);
        }
        for bi in 0..self.setup.mq.body.len() {
            if let Some(pidx) = self.setup.body_pattern[bi] {
                maps.push(self.assign[pidx].clone().expect("assigned"));
            }
        }
        for ni in 0..self.setup.mq.neg_body.len() {
            if let Some(pidx) = self.setup.neg_pattern[ni] {
                maps.push(self.assign[pidx].clone().expect("assigned"));
            }
        }
        (self.f)(&MqAnswer {
            inst: Instantiation { maps },
            indices: iv,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::naive;
    use crate::index::IndexKind;
    use crate::parse::parse_metaquery;

    use rand::prelude::*;

    fn random_db(rng: &mut StdRng, rels: &[(&str, usize)], rows: usize, dom: i64) -> Database {
        let mut db = Database::new();
        for &(name, ar) in rels {
            let id = db.add_relation(name, ar);
            for _ in 0..rows {
                let row: Vec<_> = (0..ar)
                    .map(|_| mq_relation::Value::Int(rng.gen_range(0..dom)))
                    .collect();
                db.insert(id, row.into_boxed_slice());
            }
        }
        db
    }

    fn agree(db: &Database, mq_text: &str, ty: InstType, th: Thresholds) {
        let mq = parse_metaquery(mq_text).unwrap();
        let a = naive::find_all(db, &mq, ty, th).unwrap();
        let b = find_rules(db, &mq, ty, th).unwrap();
        assert_eq!(
            a, b,
            "engines disagree on {mq_text} ({ty}, {th:?}):\nnaive={a:#?}\nfindRules={b:#?}"
        );
    }

    #[test]
    fn engines_agree_type0_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2), ("r", 2)], 12, 5);
            for th in [
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
                Thresholds::all(Frac::new(1, 2), Frac::new(1, 4), Frac::new(1, 4)),
                Thresholds::single(IndexKind::Cnf, Frac::new(1, 3)),
                Thresholds::none(),
            ] {
                agree(&db, "R(X,Z) <- P(X,Y), Q(Y,Z)", InstType::Zero, th);
            }
        }
    }

    #[test]
    fn engines_agree_type1() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 10, 4);
            agree(
                &db,
                "R(X,Z) <- P(X,Y), Q(Y,Z)",
                InstType::One,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_type2_mixed_arities() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let db = random_db(&mut rng, &[("p", 2), ("t", 3)], 8, 4);
            agree(
                &db,
                "R(X,Z) <- P(X,Y), Q(Y,Z)",
                InstType::Two,
                Thresholds::all(Frac::new(1, 10), Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_cyclic_body() {
        // body is a triangle: hypertree width 2 path of the engine.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("e", 2), ("f", 2)], 12, 4);
            agree(
                &db,
                "H(X,Y) <- P(X,Y), Q(Y,Z), R(Z,X)",
                InstType::Zero,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_shared_predvars() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 10, 4);
            agree(
                &db,
                "P(X,Y) <- P(Y,Z), Q(Z,W)",
                InstType::Zero,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn engines_agree_fixed_body_atom() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("e", 2), ("p", 1), ("q", 1)], 10, 4);
            agree(
                &db,
                "N(X) <- N(Y), e(X,Y)",
                InstType::Zero,
                Thresholds::all(Frac::ZERO, Frac::ZERO, Frac::ZERO),
            );
        }
    }

    #[test]
    fn decide_matches_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2)], 10, 4);
            let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
            for kind in IndexKind::ALL {
                for k in [Frac::ZERO, Frac::new(1, 2), Frac::new(9, 10)] {
                    let p = MqProblem {
                        index: kind,
                        threshold: k,
                        ty: InstType::Zero,
                    };
                    assert_eq!(
                        naive::decide(&db, &mq, p).unwrap(),
                        decide(&db, &mq, p).unwrap(),
                        "decide disagrees for {kind} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_order() {
        // The parallel driver must return byte-identical, identically
        // ordered answers to the sequential engine. Force a multi-worker
        // pool even on single-core machines so the fan-out actually runs
        // (an atomic override — env mutation is unsound under concurrent
        // reads).
        rayon::set_thread_override(Some(3));
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..6 {
            let db = random_db(&mut rng, &[("p", 2), ("q", 2), ("r", 2)], 14, 5);
            let mq = parse_metaquery("R(X,Z) <- P(X,Y), Q(Y,Z)").unwrap();
            for th in [
                Thresholds::none(),
                Thresholds::all(Frac::new(1, 10), Frac::new(1, 10), Frac::new(1, 10)),
            ] {
                let par = find_rules(&db, &mq, InstType::Zero, th).unwrap();
                let seq = find_rules_seq(&db, &mq, InstType::Zero, th).unwrap();
                assert_eq!(par, seq, "parallel and sequential answers must match");
            }
        }
        rayon::set_thread_override(None);
    }

    #[test]
    fn body_decomposition_widths() {
        let chain = parse_metaquery("R(X,W) <- P(X,Y), Q(Y,Z), S(Z,W)").unwrap();
        assert_eq!(body_decomposition(&chain).width, 1);
        let triangle = parse_metaquery("R(X,Y) <- P(X,Y), Q(Y,Z), S(Z,X)").unwrap();
        assert_eq!(body_decomposition(&triangle).width, 2);
    }
}
