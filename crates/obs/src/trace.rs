//! Lock-free per-thread span rings and the tracing gates.
//!
//! ## Recording model
//!
//! Every span is one fixed-size event — `(request id, name, depth,
//! start ns, duration ns)` — written into a per-thread ring buffer on
//! guard drop. Writers never lock and never allocate (the ring itself is
//! leaked once per thread slot on first use); readers (`trace <req-id>`)
//! scan every ring with a per-entry sequence check, so a reply assembled
//! mid-write is discarded rather than surfaced torn. Rings overwrite
//! oldest-first: a trace survives as long as its thread has recorded
//! fewer than [`RING_CAP`] newer events — plenty for "the request that
//! just finished", which is what the `trace` command serves.
//!
//! The rings are deliberately **process-global** (unlike metric
//! registries): span events carry process-unique request ids (see
//! [`next_request_id`]), so traces from two servers in one process stay
//! distinguishable, and a global buffer is what makes cross-thread span
//! assembly (session thread + scheduler workers) possible at all.
//!
//! ## Gates
//!
//! `MQ_TRACE=1` turns the hot-path spans ([`span!`] sites: scheduler
//! tasks, detailed node profiling) on; default off. Request-granularity
//! spans ([`SpanGuard::start_always`]) record regardless — a handful per
//! request, nanoseconds each. `MQ_SLOW_MS=<ms>` arms the serving layer's
//! slow-query log. Both are read once from the environment and
//! overridable through process-wide atomics
//! ([`set_trace_override`]/[`set_slow_ms_override`]) — never by mutating
//! the environment, which is unsound under concurrent reads (the same
//! pattern as `MQ_SHARED_MEMO`).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The span taxonomy: every span name the workspace records, in one
/// place (ARCHITECTURE.md's Observability section documents each).
/// Names are interned as indices so ring events stay fixed-size and the
/// reader can never reconstruct a torn string.
pub const SPAN_NAMES: &[&str] = &[
    "req.serve",
    "req.read",
    "req.write",
    "req.admission",
    "req.dedup.wait",
    "search.run",
    "sched.task",
    "catalog.update",
    "catalog.freeze",
];

/// An interned span name: an index into [`SPAN_NAMES`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanName(pub u16);

/// Whole `serve_line` request handling (net layer).
pub const REQ_SERVE: SpanName = SpanName(0);
/// Blocking read of one request line (includes client think time).
pub const REQ_READ: SpanName = SpanName(1);
/// Writing one reply to the socket (writer thread).
pub const REQ_WRITE: SpanName = SpanName(2);
/// Waiting on the admission-control semaphore.
pub const REQ_ADMISSION: SpanName = SpanName(3);
/// A dedup follower blocked on the owner's in-flight search.
pub const REQ_DEDUP_WAIT: SpanName = SpanName(4);
/// One owned search execution (session layer).
pub const SEARCH_RUN: SpanName = SpanName(5);
/// One scheduler prefix task (gated on `MQ_TRACE`).
pub const SCHED_TASK: SpanName = SpanName(6);
/// One copy-on-write catalog update.
pub const CATALOG_UPDATE: SpanName = SpanName(7);
/// Freezing a database snapshot (index pre-warm + arena freeze).
pub const CATALOG_FREEZE: SpanName = SpanName(8);

// ── Gates ───────────────────────────────────────────────────────────

const GATE_UNSET: u8 = 0;
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

/// Lazily cached `MQ_TRACE` (0 = not yet read).
static TRACE_ENV: AtomicU8 = AtomicU8::new(GATE_UNSET);
/// Test/bench override: 0 = none, 1 = force off, 2 = force on.
static TRACE_OVERRIDE: AtomicU8 = AtomicU8::new(GATE_UNSET);

/// Whether hot-path tracing is on. Disabled, this is the whole cost of
/// a [`span!`] site: two relaxed loads and a branch.
pub fn trace_enabled() -> bool {
    match TRACE_OVERRIDE.load(Ordering::Relaxed) {
        GATE_OFF => return false,
        GATE_ON => return true,
        _ => {}
    }
    match TRACE_ENV.load(Ordering::Relaxed) {
        GATE_OFF => false,
        GATE_ON => true,
        _ => {
            let on = std::env::var("MQ_TRACE").map(|v| v != "0").unwrap_or(false);
            TRACE_ENV.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Force tracing on/off (`Some`) or back to the `MQ_TRACE` environment
/// default (`None`). An atomic override — mutating the environment is
/// unsound under concurrent readers.
pub fn set_trace_override(on: Option<bool>) {
    let v = match on {
        None => GATE_UNSET,
        Some(false) => GATE_OFF,
        Some(true) => GATE_ON,
    };
    TRACE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Lazily cached `MQ_SLOW_MS` (+1 so 0 can mean "not yet read";
/// u64::MAX = read, unset/disabled).
static SLOW_ENV: AtomicU64 = AtomicU64::new(0);
/// Override: 0 = none, u64::MAX = force off, v+1 = force threshold v.
static SLOW_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// The slow-query threshold in milliseconds, or `None` when the log is
/// disarmed (`MQ_SLOW_MS` unset or `0`, the default).
pub fn slow_ms() -> Option<u64> {
    match SLOW_OVERRIDE.load(Ordering::Relaxed) {
        0 => {}
        u64::MAX => return None,
        v => return Some(v - 1),
    }
    match SLOW_ENV.load(Ordering::Relaxed) {
        0 => {
            let ms = std::env::var("MQ_SLOW_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&v| v > 0);
            SLOW_ENV.store(ms.map_or(u64::MAX, |v| v + 1), Ordering::Relaxed);
            ms
        }
        u64::MAX => None,
        v => Some(v - 1),
    }
}

/// Force the slow-query threshold (`Some(ms)`), force it off
/// (`Some(None)` ≡ `None` threshold… pass `Some(0)`), or return to the
/// `MQ_SLOW_MS` default (`None`). `Some(0)` disarms the log.
pub fn set_slow_ms_override(ms: Option<u64>) {
    let v = match ms {
        None => 0,
        Some(0) => u64::MAX,
        Some(v) => v + 1,
    };
    SLOW_OVERRIDE.store(v, Ordering::Relaxed);
}

// ── Clock and request ids ───────────────────────────────────────────

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process's first trace-clock read (monotonic).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_REQ: AtomicU64 = AtomicU64::new(1);

/// Mint a process-unique request id (monotonic from 1). Process-global
/// so two servers in one process never hand out colliding ids.
pub fn next_request_id() -> u64 {
    NEXT_REQ.fetch_add(1, Ordering::Relaxed)
}

// ── Rings ───────────────────────────────────────────────────────────

/// Thread slots: threads hash onto these on first span. More threads
/// than slots share rings (position claims are atomic, so interleaved
/// writers stay individually consistent).
const RING_SLOTS: usize = 32;
/// Events per ring; oldest overwritten first.
pub const RING_CAP: usize = 1024;

#[derive(Default)]
struct Event {
    /// 0 = never written; odd = mid-write; even = position*2+2 when
    /// complete. Readers discard entries whose seq changes under them.
    seq: AtomicU64,
    req: AtomicU64,
    name: AtomicU64,
    depth: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

struct ThreadRing {
    head: AtomicU64,
    events: Vec<Event>,
}

impl ThreadRing {
    fn new() -> Self {
        ThreadRing {
            head: AtomicU64::new(0),
            events: (0..RING_CAP).map(|_| Event::default()).collect(),
        }
    }

    fn record(&self, req: u64, name: u16, depth: u64, start_ns: u64, dur_ns: u64) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let e = &self.events[(pos as usize) % RING_CAP];
        e.seq.store(pos * 2 + 1, Ordering::SeqCst);
        e.req.store(req, Ordering::Relaxed);
        e.name.store(name as u64, Ordering::Relaxed);
        e.depth.store(depth, Ordering::Relaxed);
        e.start_ns.store(start_ns, Ordering::Relaxed);
        e.dur_ns.store(dur_ns, Ordering::Relaxed);
        e.seq.store(pos * 2 + 2, Ordering::SeqCst);
    }
}

const RING_INIT: OnceLock<&'static ThreadRing> = OnceLock::new();
static RINGS: [OnceLock<&'static ThreadRing>; RING_SLOTS] = [RING_INIT; RING_SLOTS];
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    static DEPTH: Cell<u64> = const { Cell::new(0) };
    static CUR_REQ: Cell<u64> = const { Cell::new(0) };
}

fn my_ring() -> &'static ThreadRing {
    let idx = MY_SLOT.with(|s| {
        if s.get() == usize::MAX {
            s.set(NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % RING_SLOTS);
        }
        s.get()
    });
    RINGS[idx].get_or_init(|| Box::leak(Box::new(ThreadRing::new())))
}

/// The request id the current thread is working under (0 = none).
pub fn current_request() -> u64 {
    CUR_REQ.with(|r| r.get())
}

/// Pins `req` as the current thread's request id for the guard's
/// lifetime; restores the previous id on drop (scopes nest — a service
/// call inside an already-scoped net request keeps the outer id).
pub struct RequestScope {
    prev: u64,
}

/// Enter a request scope. Every span the thread records until the guard
/// drops is attributed to `req`.
pub fn request_scope(req: u64) -> RequestScope {
    let prev = CUR_REQ.with(|r| {
        let p = r.get();
        r.set(req);
        p
    });
    RequestScope { prev }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CUR_REQ.with(|r| r.set(prev));
    }
}

/// An open span: records one ring event (start, duration, nesting
/// depth, current request id) when dropped.
pub struct SpanGuard {
    name: u16,
    req: u64,
    depth: u64,
    start_ns: u64,
}

impl SpanGuard {
    /// Open a span unconditionally — request-granularity sites (a
    /// handful per request). Hot-path sites go through [`crate::span!`],
    /// which checks [`trace_enabled`] first.
    pub fn start_always(name: SpanName) -> SpanGuard {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            name: name.0,
            req: current_request(),
            depth,
            start_ns: now_ns(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur = now_ns().saturating_sub(self.start_ns);
        my_ring().record(self.req, self.name, self.depth, self.start_ns, dur);
    }
}

/// Record a completed span directly, with an explicit start time.
/// For boundaries that only learn a span's request id after the fact —
/// the net reader measures the blocking line read, then attributes it
/// to the request id minted *for* that line. Depth 0 (these are
/// top-of-request spans).
pub fn record_span(name: SpanName, req: u64, start_ns: u64, dur_ns: u64) {
    my_ring().record(req, name.0, 0, start_ns, dur_ns);
}

/// Open a span if hot-path tracing is enabled; `None` (a single branch
/// on a relaxed atomic, no allocation) otherwise. Bind the result:
/// `let _span = mq_obs::span!(mq_obs::trace::SCHED_TASK);`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::trace_enabled() {
            Some($crate::trace::SpanGuard::start_always($name))
        } else {
            None
        }
    };
}

// ── Reading ─────────────────────────────────────────────────────────

/// One completed span read back out of the rings.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Request id the span was recorded under (0 = unattributed).
    pub req: u64,
    /// Span name (from [`SPAN_NAMES`]).
    pub name: &'static str,
    /// Nesting depth within its thread at record time.
    pub depth: u64,
    /// Ring slot (≈ thread) the span was recorded on.
    pub slot: usize,
    /// Start, nanoseconds on the process trace clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

fn scan(mut keep: impl FnMut(&SpanEvent)) {
    for (slot, ring) in RINGS.iter().enumerate() {
        let Some(ring) = ring.get() else { continue };
        for e in &ring.events {
            let s1 = e.seq.load(Ordering::SeqCst);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let req = e.req.load(Ordering::Relaxed);
            let name = e.name.load(Ordering::Relaxed);
            let depth = e.depth.load(Ordering::Relaxed);
            let start_ns = e.start_ns.load(Ordering::Relaxed);
            let dur_ns = e.dur_ns.load(Ordering::Relaxed);
            if e.seq.load(Ordering::SeqCst) != s1 {
                continue; // overwritten mid-read — discard
            }
            let Some(&name) = SPAN_NAMES.get(name as usize) else {
                continue;
            };
            keep(&SpanEvent {
                req,
                name,
                depth,
                slot,
                start_ns,
                dur_ns,
            });
        }
    }
}

/// Every still-buffered span of request `req`, sorted by start time.
pub fn collect_request(req: u64) -> Vec<SpanEvent> {
    let mut out = Vec::new();
    scan(|e| {
        if e.req == req {
            out.push(e.clone());
        }
    });
    out.sort_by_key(|e| (e.start_ns, e.depth));
    out
}

/// The highest request id with buffered spans, excluding `exclude`
/// (pass the in-flight request's own id so `trace last` doesn't return
/// itself). `None` when the rings hold no attributed spans.
pub fn latest_request(exclude: u64) -> Option<u64> {
    let mut best = None;
    scan(|e| {
        if e.req != 0 && e.req != exclude && Some(e.req) > best {
            best = Some(e.req);
        }
    });
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_read_back() {
        let req = next_request_id();
        {
            let _scope = request_scope(req);
            let _outer = SpanGuard::start_always(SEARCH_RUN);
            let _inner = SpanGuard::start_always(SCHED_TASK);
        }
        let got = collect_request(req);
        assert_eq!(got.len(), 2);
        // Inner drops (and records) first but starts later; sorted by
        // start time the outer span leads.
        assert_eq!(got[0].name, "search.run");
        assert_eq!(got[0].depth, 0);
        assert_eq!(got[1].name, "sched.task");
        assert_eq!(got[1].depth, 1);
        assert!(got[0].dur_ns >= got[1].dur_ns);
        assert!(latest_request(0) >= Some(req));
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        assert_eq!(current_request(), 0);
        let outer = request_scope(7);
        assert_eq!(current_request(), 7);
        {
            let _inner = request_scope(9);
            assert_eq!(current_request(), 9);
        }
        assert_eq!(current_request(), 7);
        drop(outer);
        assert_eq!(current_request(), 0);
    }

    #[test]
    fn overrides_win_over_env() {
        set_trace_override(Some(true));
        assert!(trace_enabled());
        set_trace_override(Some(false));
        assert!(!trace_enabled());
        set_trace_override(None);

        set_slow_ms_override(Some(25));
        assert_eq!(slow_ms(), Some(25));
        set_slow_ms_override(Some(0));
        assert_eq!(slow_ms(), None);
        set_slow_ms_override(None);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let req = next_request_id();
        {
            let _scope = request_scope(req);
            for _ in 0..(RING_CAP + 50) {
                let _s = SpanGuard::start_always(SCHED_TASK);
            }
        }
        let got = collect_request(req);
        assert!(!got.is_empty());
        assert!(got.len() <= RING_CAP);
    }
}
