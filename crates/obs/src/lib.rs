//! # mq-obs — observability substrate for the metaquery workspace
//!
//! The crate every layer records into, sitting **below** `mq-store`
//! (mirroring the `mq-lint` bring-up: dependency-free, buildable before
//! anything else). Three pieces:
//!
//! * [`metrics`] — a central [`Registry`] of monotonic counters, gauges,
//!   and fixed-bucket latency histograms (p50/p95/p99 derivable without
//!   allocation), rendered in Prometheus text format by
//!   [`Registry::render_prometheus`]. Registries are **per-instance**
//!   (one per `MqService`/`NetServer`), never process-global, so
//!   concurrent servers in one process keep attribution separate — the
//!   same doctrine the engine's memo counters follow.
//! * [`trace`] — lock-free per-thread span ring buffers with nanosecond
//!   timestamps behind the [`span!`] macro. Disabled (`MQ_TRACE=0`, the
//!   default) the macro compiles to a branch on a relaxed atomic and
//!   allocates nothing; request-granularity spans
//!   ([`trace::SpanGuard::start_always`]) are always recorded so
//!   `trace <req-id>` works without turning the hot-kernel spans on.
//! * [`profile`] — a per-search [`SearchProfile`] attributing wall time,
//!   rows in/out, and memo hits to each hash-consed plan-node id, plus
//!   always-on cheap totals (scheduler tasks, node evals) that feed the
//!   scheduler/executor metric families.
//!
//! On top of the live instruments sits the **flight recorder** — the
//! time dimension:
//!
//! * [`history`] — a fixed-memory ring time-series store filled by a
//!   background [`Scraper`] (`MQ_SCRAPE_MS`, default 1 s; `0` disables
//!   the recorder entirely), deriving windowed counter rates, gauge
//!   min/max, and histogram-delta percentiles over 10 s/1 m/5 m.
//! * [`health`] — a declarative SLO rule table evaluated each scrape
//!   into Healthy/Degraded/Unhealthy verdicts, plus an anomaly
//!   watchdog (rolling mean + k·MAD) appending debounced, structured
//!   [`Incident`] records to a bounded log. One [`FlightRecorder`] per
//!   server instance ties both together.
//!
//! [`expo::parse_prometheus`] is the simple in-tree checker CI uses to
//! assert the `metrics` dump stays well-formed.
//!
//! [`Registry`]: metrics::Registry
//! [`Registry::render_prometheus`]: metrics::Registry::render_prometheus
//! [`SearchProfile`]: profile::SearchProfile
//! [`Scraper`]: history::Scraper
//! [`Incident`]: health::Incident
//! [`FlightRecorder`]: health::FlightRecorder

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod health;
pub mod history;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use expo::parse_prometheus;
pub use health::{
    evaluate, FlightRecorder, HealthReport, Incident, RuleOutcome, Verdict, RULE_NAMES,
};
pub use history::{
    parse_window, scrape_ms, set_scrape_ms_override, History, Scraper, SeriesKind, SeriesPoint,
    SeriesRing, WINDOWS_MS,
};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, SampleValue, SeriesSample,
};
pub use profile::{NodeStat, SearchProfile};
pub use trace::{
    next_request_id, set_slow_ms_override, set_trace_override, slow_ms, trace_enabled, SpanEvent,
    SpanName,
};
