//! # mq-obs — observability substrate for the metaquery workspace
//!
//! The crate every layer records into, sitting **below** `mq-store`
//! (mirroring the `mq-lint` bring-up: dependency-free, buildable before
//! anything else). Three pieces:
//!
//! * [`metrics`] — a central [`Registry`] of monotonic counters, gauges,
//!   and fixed-bucket latency histograms (p50/p95/p99 derivable without
//!   allocation), rendered in Prometheus text format by
//!   [`Registry::render_prometheus`]. Registries are **per-instance**
//!   (one per `MqService`/`NetServer`), never process-global, so
//!   concurrent servers in one process keep attribution separate — the
//!   same doctrine the engine's memo counters follow.
//! * [`trace`] — lock-free per-thread span ring buffers with nanosecond
//!   timestamps behind the [`span!`] macro. Disabled (`MQ_TRACE=0`, the
//!   default) the macro compiles to a branch on a relaxed atomic and
//!   allocates nothing; request-granularity spans
//!   ([`trace::SpanGuard::start_always`]) are always recorded so
//!   `trace <req-id>` works without turning the hot-kernel spans on.
//! * [`profile`] — a per-search [`SearchProfile`] attributing wall time,
//!   rows in/out, and memo hits to each hash-consed plan-node id, plus
//!   always-on cheap totals (scheduler tasks, node evals) that feed the
//!   scheduler/executor metric families.
//!
//! [`expo::parse_prometheus`] is the simple in-tree checker CI uses to
//! assert the `metrics` dump stays well-formed.
//!
//! [`Registry`]: metrics::Registry
//! [`Registry::render_prometheus`]: metrics::Registry::render_prometheus
//! [`SearchProfile`]: profile::SearchProfile

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use expo::parse_prometheus;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use profile::{NodeStat, SearchProfile};
pub use trace::{
    next_request_id, set_slow_ms_override, set_trace_override, slow_ms, trace_enabled, SpanEvent,
    SpanName,
};
