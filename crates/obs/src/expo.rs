//! A small Prometheus-text-format checker.
//!
//! CI's `obs-invariants` job (and the observability integration tests)
//! feed the live `metrics` reply through [`parse_prometheus`] to assert
//! the dump stays machine-readable: every sample line names a declared
//! metric, values parse, and histogram `_bucket` series are cumulative.
//! This is a validator for our own exposition, not a general Prometheus
//! parser.

use std::collections::BTreeMap;

/// One parsed sample: metric name (with any `{label="value"}` suffix
//  stripped into `labels`) and its numeric value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name without labels.
    pub name: String,
    /// Raw label block between `{` and `}`, empty when unlabeled.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Parse a Prometheus text-format dump, validating as it goes.
///
/// Checks:
/// * every non-comment line is `name[{labels}] value`;
/// * every sample's base name was declared by a preceding `# TYPE`
///   (histogram samples may use the `_bucket`/`_sum`/`_count` suffixes);
/// * `# TYPE` values are `counter`, `gauge`, or `histogram`;
/// * histogram bucket counts are cumulative (non-decreasing as `le`
///   grows) and end with an `le="+Inf"` bucket equal to `_count`.
///
/// Returns the samples in file order, or a message describing the first
/// violation.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = Vec::new();
    // (metric, labels-minus-le) → (buckets in order, count sample)
    let mut hist_buckets: BTreeMap<(String, String), Vec<(String, f64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), f64> = BTreeMap::new();

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                    return Err(format!("line {}: malformed TYPE comment", ln + 1));
                };
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return Err(format!("line {}: unknown metric type `{kind}`", ln + 1));
                }
                types.insert(name.to_string(), kind.to_string());
            }
            continue; // HELP and other comments: free-form
        }

        let (name_part, value_part) = match line.rsplit_once(char::is_whitespace) {
            Some(split) => split,
            None => return Err(format!("line {}: no value on sample line", ln + 1)),
        };
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {}: unparsable value `{value_part}`", ln + 1))?;
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => {
                let Some(labels) = rest.strip_suffix('}') else {
                    return Err(format!("line {}: unterminated label block", ln + 1));
                };
                (n.trim(), labels)
            }
            None => (name_part.trim(), ""),
        };
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {}: bad metric name `{name}`", ln + 1));
        }

        // Resolve the declared base name: exact, or histogram suffixes.
        let declared = if types.contains_key(name) {
            Some(name.to_string())
        } else {
            ["_bucket", "_sum", "_count"].iter().find_map(|suf| {
                let base = name.strip_suffix(suf)?;
                (types.get(base).map(String::as_str) == Some("histogram")).then(|| base.to_string())
            })
        };
        let Some(base) = declared else {
            return Err(format!(
                "line {}: sample `{name}` has no TYPE declaration",
                ln + 1
            ));
        };

        if types.get(&base).map(String::as_str) == Some("histogram") {
            if let Some(rest) = name.strip_suffix("_bucket") {
                // Split the `le` label out; remaining labels key the series.
                let mut le = None;
                let others: Vec<&str> = labels
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .filter(|p| {
                        if let Some(v) = p.trim().strip_prefix("le=") {
                            le = Some(v.trim_matches('"').to_string());
                            false
                        } else {
                            true
                        }
                    })
                    .collect();
                let Some(le) = le else {
                    return Err(format!("line {}: bucket sample without le label", ln + 1));
                };
                hist_buckets
                    .entry((rest.to_string(), others.join(",")))
                    .or_default()
                    .push((le, value));
            } else if let Some(rest) = name.strip_suffix("_count") {
                hist_counts.insert((rest.to_string(), labels.to_string()), value);
            }
        }

        samples.push(Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }

    for ((metric, series), buckets) in &hist_buckets {
        let mut prev = 0.0;
        for (le, v) in buckets {
            if *v < prev {
                return Err(format!(
                    "histogram `{metric}` bucket le=\"{le}\" decreases ({v} < {prev})"
                ));
            }
            prev = *v;
        }
        match buckets.last() {
            Some((le, last)) if le == "+Inf" => {
                if let Some(count) = hist_counts.get(&(metric.clone(), series.clone())) {
                    if (last - count).abs() > f64::EPSILON {
                        return Err(format!(
                            "histogram `{metric}` +Inf bucket {last} != _count {count}"
                        ));
                    }
                }
            }
            _ => {
                return Err(format!("histogram `{metric}` missing le=\"+Inf\" bucket"));
            }
        }
    }

    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_dump() {
        let text = "\
# HELP mq_net_requests_total Requests served.
# TYPE mq_net_requests_total counter
mq_net_requests_total 12
# TYPE mq_net_active_connections gauge
mq_net_active_connections 3
# TYPE mq_net_request_ns histogram
mq_net_request_ns_bucket{le=\"1000\"} 4
mq_net_request_ns_bucket{le=\"+Inf\"} 12
mq_net_request_ns_sum 52000
mq_net_request_ns_count 12
";
        let samples = parse_prometheus(text).expect("dump should parse");
        assert_eq!(samples.len(), 6);
        assert_eq!(samples[0].name, "mq_net_requests_total");
        assert_eq!(samples[2].labels, "le=\"1000\"");
    }

    #[test]
    fn rejects_undeclared_sample() {
        let err = parse_prometheus("mq_mystery_total 1\n").unwrap_err();
        assert!(err.contains("no TYPE declaration"), "{err}");
    }

    #[test]
    fn rejects_non_cumulative_buckets() {
        let text = "\
# TYPE mq_x_ns histogram
mq_x_ns_bucket{le=\"1000\"} 5
mq_x_ns_bucket{le=\"+Inf\"} 3
mq_x_ns_sum 1
mq_x_ns_count 3
";
        let err = parse_prometheus(text).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
    }

    #[test]
    fn rejects_missing_inf_bucket() {
        let text = "\
# TYPE mq_x_ns histogram
mq_x_ns_bucket{le=\"1000\"} 5
mq_x_ns_sum 1
mq_x_ns_count 5
";
        let err = parse_prometheus(text).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn labeled_counters_parse() {
        let text = "\
# TYPE mq_faults_fired_total counter
mq_faults_fired_total{site=\"read.err\"} 2
mq_faults_fired_total{site=\"write.delay\"} 7
";
        let samples = parse_prometheus(text).expect("parse");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].labels, "site=\"write.delay\"");
    }

    #[test]
    fn rejects_garbage_value() {
        let text = "# TYPE mq_a_total counter\nmq_a_total banana\n";
        assert!(parse_prometheus(text).is_err());
    }
}
