//! The SLO health engine and anomaly watchdog: the flight recorder's
//! judgement layer.
//!
//! Each scrape, the [`FlightRecorder`] re-evaluates a declarative rule
//! table ([`RULE_NAMES`]) over the windowed views [`History`] derives:
//!
//! * **error-rate** — structured `err` replies as a fraction of served
//!   requests over 10 s, against the `MQ_HEALTH_MAX_ERR_RATE` ceiling
//!   (4× the ceiling is `Unhealthy`).
//! * **p99-burn** — multiwindow burn-rate math on the request-latency
//!   objective (`MQ_HEALTH_P99_MS`): the fraction of requests over the
//!   objective, divided by the 1% budget a p99 objective grants, over a
//!   fast (10 s) and a slow (1 m) window. Both windows burning ≥ 14×
//!   is `Unhealthy` (the budget disappears in hours); both ≥ 3× is
//!   `Degraded` — the classic two-window alerting shape, resistant to
//!   one spiky scrape.
//! * **dedup-starvation** — followers re-joining abandoned dedup slots
//!   faster than dedup shares results.
//! * **memo-hit-rate** — the cross-search memo floor under real load.
//! * **writer-queue** — slow-client writer-deadline disconnects, the
//!   symptom of write-queue growth.
//!
//! Verdicts aggregate worst-wins into one [`HealthReport`] the `health`
//! verb serves, each rule carrying its numeric evidence.
//!
//! Independently, the **watchdog** compares every counter series' fast-
//! window rate against a trailing baseline (rolling mean + `k`·MAD,
//! `MQ_HEALTH_ANOMALY_K`) and appends a structured [`Incident`] —
//! trigger series, observed vs baseline rate, the hottest plan nodes
//! and slowest live request spans at detection time — into a bounded
//! log, debounced per series so one burst is captured exactly once.

use crate::history::{History, Scraper, SeriesKind};
use crate::metrics::{Counter, Registry};
use crate::trace;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fast SLO window (ms) — also the watchdog's rate window.
pub const FAST_WINDOW_MS: u64 = 10_000;
/// Slow SLO window (ms).
pub const SLOW_WINDOW_MS: u64 = 60_000;
/// Incidents retained (oldest dropped first).
pub const INCIDENT_CAP: usize = 32;
/// Per-series incident debounce: one incident per series per cooldown.
pub const INCIDENT_COOLDOWN_MS: u64 = 60_000;
/// Baseline samples required before the watchdog judges a series.
const BASELINE_WARMUP: usize = 5;
/// Trailing baseline rates kept per series.
const BASELINE_CAP: usize = 30;
/// MAD floor (per-second rate) so a perfectly flat baseline still
/// tolerates jitter of a few events per second.
const MAD_FLOOR: f64 = 0.5;
/// Absolute rate floor below which no anomaly fires (events/s).
const MIN_ANOMALY_RATE: f64 = 1.0;
/// Memo hit-rate floor under real load (rule `memo-hit-rate`).
const MEMO_HIT_FLOOR: f64 = 0.2;
/// Request rate below which ratio rules report "insufficient traffic".
const MIN_TRAFFIC_RATE: f64 = 0.5;

/// Every health rule, in evaluation (and report) order.
pub const RULE_NAMES: [&str; 5] = [
    "error-rate",
    "p99-burn",
    "dedup-starvation",
    "memo-hit-rate",
    "writer-queue",
];

/// A health verdict; worst-wins aggregation relies on the ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within every objective.
    Healthy,
    /// An objective is at risk — investigate.
    Degraded,
    /// An objective is being burned through — act.
    Unhealthy,
}

impl Verdict {
    /// The lowercase token the protocol serves.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Healthy => "healthy",
            Verdict::Degraded => "degraded",
            Verdict::Unhealthy => "unhealthy",
        }
    }
}

/// One rule's evaluation: verdict plus the numbers that produced it.
#[derive(Clone, Debug)]
pub struct RuleOutcome {
    /// Rule name (from [`RULE_NAMES`]).
    pub rule: &'static str,
    /// This rule's verdict.
    pub verdict: Verdict,
    /// Key=value evidence string (stable, machine-parsable).
    pub evidence: String,
}

/// The aggregated judgement of one scrape.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Worst verdict across the rules.
    pub verdict: Verdict,
    /// Scrape instant, trace-clock ms.
    pub t_ms: u64,
    /// Per-rule outcomes, in [`RULE_NAMES`] order.
    pub rules: Vec<RuleOutcome>,
}

impl Default for HealthReport {
    fn default() -> Self {
        HealthReport {
            verdict: Verdict::Healthy,
            t_ms: 0,
            rules: Vec::new(),
        }
    }
}

/// One watchdog detection: a counter series running hot against its
/// own trailing baseline, with the execution context captured at
/// detection time.
#[derive(Clone, Debug)]
pub struct Incident {
    /// Detection instant, trace-clock ms.
    pub t_ms: u64,
    /// The triggering series.
    pub series: String,
    /// Observed fast-window rate (events/s).
    pub rate: f64,
    /// Baseline mean rate at detection.
    pub baseline_mean: f64,
    /// Baseline MAD at detection (before flooring).
    pub baseline_mad: f64,
    /// Hottest plan nodes at detection (service-formatted lines).
    pub nodes: Vec<String>,
    /// Slowest spans of the latest live request at detection.
    pub slow_spans: Vec<String>,
}

// ── MQ_HEALTH_* gates ───────────────────────────────────────────────

/// An env-once f64 knob with an atomic override, storing `f64::to_bits`
/// (zero values are canonicalized to `-0.0`'s bits so `0` can mean
/// "unset") — same doctrine as the other gates: never mutate the
/// environment.
struct F64Gate {
    env: AtomicU64,
    forced: AtomicU64,
}

impl F64Gate {
    const fn new() -> F64Gate {
        F64Gate {
            env: AtomicU64::new(0),
            forced: AtomicU64::new(0),
        }
    }

    fn encode(v: f64) -> u64 {
        if v == 0.0 {
            (-0.0f64).to_bits()
        } else {
            v.to_bits()
        }
    }

    fn get(&self, name: &str, default: f64) -> f64 {
        match self.forced.load(Ordering::Relaxed) {
            0 => {}
            bits => return f64::from_bits(bits),
        }
        match self.env.load(Ordering::Relaxed) {
            0 => {
                let v = std::env::var(name)
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .unwrap_or(default);
                self.env.store(Self::encode(v), Ordering::Relaxed);
                v
            }
            bits => f64::from_bits(bits),
        }
    }

    fn set_override(&self, v: Option<f64>) {
        self.forced
            .store(v.map_or(0, Self::encode), Ordering::Relaxed);
    }
}

static ERR_RATE_GATE: F64Gate = F64Gate::new();
static ANOMALY_K_GATE: F64Gate = F64Gate::new();
/// Lazily cached `MQ_HEALTH_P99_MS` (+1; never "off" — 0 falls back to
/// the default).
static P99_ENV: AtomicU64 = AtomicU64::new(0);
static P99_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// The structured-error-rate ceiling (`MQ_HEALTH_MAX_ERR_RATE`,
/// default 0.05 — 5% of requests).
pub fn max_err_rate() -> f64 {
    ERR_RATE_GATE.get("MQ_HEALTH_MAX_ERR_RATE", 0.05)
}

/// Force the error-rate ceiling (`None` returns to the environment).
pub fn set_max_err_rate_override(v: Option<f64>) {
    ERR_RATE_GATE.set_override(v);
}

/// The watchdog's baseline multiplier `k` (`MQ_HEALTH_ANOMALY_K`,
/// default 4): anomaly ⇔ rate > mean + k·MAD.
pub fn anomaly_k() -> f64 {
    ANOMALY_K_GATE.get("MQ_HEALTH_ANOMALY_K", 4.0)
}

/// Force the anomaly multiplier (`None` returns to the environment).
pub fn set_anomaly_k_override(v: Option<f64>) {
    ANOMALY_K_GATE.set_override(v);
}

/// The p99 latency objective in ms (`MQ_HEALTH_P99_MS`, default 1000).
pub fn p99_objective_ms() -> u64 {
    match P99_OVERRIDE.load(Ordering::Relaxed) {
        0 => {}
        v => return v - 1,
    }
    match P99_ENV.load(Ordering::Relaxed) {
        0 => {
            let ms = std::env::var("MQ_HEALTH_P99_MS")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(1_000);
            P99_ENV.store(ms + 1, Ordering::Relaxed);
            ms
        }
        v => v - 1,
    }
}

/// Force the p99 objective (`None` returns to the environment).
pub fn set_p99_objective_ms_override(ms: Option<u64>) {
    P99_OVERRIDE.store(ms.map_or(0, |v| v.max(1) + 1), Ordering::Relaxed);
}

// ── Rule evaluation ─────────────────────────────────────────────────

fn healthy(rule: &'static str, evidence: String) -> RuleOutcome {
    RuleOutcome {
        rule,
        verdict: Verdict::Healthy,
        evidence,
    }
}

fn rule_error_rate(h: &History, now_ms: u64) -> RuleOutcome {
    let rule = "error-rate";
    let req = h.counter_rate("mq_net_requests_total", FAST_WINDOW_MS, now_ms);
    let err = h
        .counter_rate("mq_net_err_replies_total", FAST_WINDOW_MS, now_ms)
        .unwrap_or(0.0);
    let Some(req) = req.filter(|r| *r >= MIN_TRAFFIC_RATE) else {
        return healthy(
            rule,
            format!("insufficient-traffic window=10s err_per_s={err:.3}"),
        );
    };
    let ratio = err / req;
    let ceiling = max_err_rate();
    let verdict = if ratio > 4.0 * ceiling {
        Verdict::Unhealthy
    } else if ratio > ceiling {
        Verdict::Degraded
    } else {
        Verdict::Healthy
    };
    RuleOutcome {
        rule,
        verdict,
        evidence: format!("err_rate={ratio:.3} ceiling={ceiling:.3} window=10s"),
    }
}

/// Fraction of a windowed histogram delta's observations above
/// `objective_ns`, at bucket granularity (the first bound ≥ the
/// objective counts as within it).
fn frac_over(delta: &crate::metrics::HistogramSnapshot, objective_ns: u64) -> f64 {
    if delta.count == 0 {
        return 0.0;
    }
    let within: u64 = crate::metrics::BUCKET_BOUNDS_NS
        .iter()
        .enumerate()
        .take_while(|(_, b)| **b <= objective_ns)
        .map(|(i, _)| delta.buckets[i])
        .sum();
    1.0 - (within.min(delta.count) as f64 / delta.count as f64)
}

fn rule_p99_burn(h: &History, now_ms: u64) -> RuleOutcome {
    let rule = "p99-burn";
    let objective_ms = p99_objective_ms();
    let objective_ns = objective_ms.saturating_mul(1_000_000);
    let fast = h.hist_delta("mq_net_request_ns", FAST_WINDOW_MS, now_ms);
    let slow = h.hist_delta("mq_net_request_ns", SLOW_WINDOW_MS, now_ms);
    let (Some(fast), Some(slow)) = (fast, slow) else {
        return healthy(
            rule,
            format!("insufficient-samples objective_ms={objective_ms}"),
        );
    };
    if fast.count == 0 || slow.count == 0 {
        return healthy(rule, format!("no-requests objective_ms={objective_ms}"));
    }
    // A p99 objective grants a 1% error budget; burn = consumption rate.
    let budget = 0.01;
    let burn_fast = frac_over(&fast, objective_ns) / budget;
    let burn_slow = frac_over(&slow, objective_ns) / budget;
    let verdict = if burn_fast >= 14.0 && burn_slow >= 14.0 {
        Verdict::Unhealthy
    } else if burn_fast >= 3.0 && burn_slow >= 3.0 {
        Verdict::Degraded
    } else {
        Verdict::Healthy
    };
    let p99_ms = fast.quantile_ns(0.99) as f64 / 1e6;
    RuleOutcome {
        rule,
        verdict,
        evidence: format!(
            "burn_10s={burn_fast:.1} burn_1m={burn_slow:.1} p99_ms={p99_ms:.1} objective_ms={objective_ms}"
        ),
    }
}

fn rule_dedup_starvation(h: &History, now_ms: u64) -> RuleOutcome {
    let rule = "dedup-starvation";
    let retries = h
        .counter_rate("mq_dedup_retries_total", SLOW_WINDOW_MS, now_ms)
        .unwrap_or(0.0);
    let shared = h
        .counter_rate("mq_dedup_shared_total", SLOW_WINDOW_MS, now_ms)
        .unwrap_or(0.0);
    let verdict = if retries > MIN_TRAFFIC_RATE && retries > shared {
        Verdict::Degraded
    } else {
        Verdict::Healthy
    };
    RuleOutcome {
        rule,
        verdict,
        evidence: format!("retries_per_s={retries:.3} shared_per_s={shared:.3} window=1m"),
    }
}

fn rule_memo_hit_rate(h: &History, now_ms: u64) -> RuleOutcome {
    let rule = "memo-hit-rate";
    let hits = h
        .counter_rate("mq_memo_hits_total", SLOW_WINDOW_MS, now_ms)
        .unwrap_or(0.0);
    let misses = h
        .counter_rate("mq_memo_misses_total", SLOW_WINDOW_MS, now_ms)
        .unwrap_or(0.0);
    let total = hits + misses;
    if total < 10.0 {
        return healthy(rule, format!("insufficient-load lookups_per_s={total:.1}"));
    }
    let ratio = hits / total;
    let verdict = if ratio < MEMO_HIT_FLOOR {
        Verdict::Degraded
    } else {
        Verdict::Healthy
    };
    RuleOutcome {
        rule,
        verdict,
        evidence: format!("hit_rate={ratio:.3} floor={MEMO_HIT_FLOOR:.3} window=1m"),
    }
}

fn rule_writer_queue(h: &History, now_ms: u64) -> RuleOutcome {
    let rule = "writer-queue";
    let slow = h
        .counter_rate("mq_net_disconnects_slow_total", SLOW_WINDOW_MS, now_ms)
        .unwrap_or(0.0);
    let conns = h
        .gauge_minmax("mq_net_active_connections", SLOW_WINDOW_MS, now_ms)
        .unwrap_or((0, 0));
    let verdict = if slow > 0.0 {
        Verdict::Degraded
    } else {
        Verdict::Healthy
    };
    RuleOutcome {
        rule,
        verdict,
        evidence: format!(
            "slow_disconnects_per_s={slow:.3} conns_min={} conns_max={} window=1m",
            conns.0, conns.1
        ),
    }
}

/// Evaluate the full rule table over `history` at instant `now_ms`.
pub fn evaluate(history: &History, now_ms: u64) -> HealthReport {
    let rules = vec![
        rule_error_rate(history, now_ms),
        rule_p99_burn(history, now_ms),
        rule_dedup_starvation(history, now_ms),
        rule_memo_hit_rate(history, now_ms),
        rule_writer_queue(history, now_ms),
    ];
    let verdict = rules
        .iter()
        .map(|r| r.verdict)
        .max()
        .unwrap_or(Verdict::Healthy);
    HealthReport {
        verdict,
        t_ms: now_ms,
        rules,
    }
}

// ── Watchdog ────────────────────────────────────────────────────────

#[derive(Default)]
struct Baseline {
    rates: VecDeque<f64>,
    last_incident_ms: Option<u64>,
}

fn mean(xs: &VecDeque<f64>) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[xs.len() / 2]
}

/// Median absolute deviation about the median.
fn mad(xs: &VecDeque<f64>) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().collect();
    let med = median(&mut v);
    let mut dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&mut dev)
}

// ── FlightRecorder ──────────────────────────────────────────────────

/// Callback producing the hottest-plan-node lines for incident context
/// (the service wires this to its slow-query log).
pub type NodeSource = Box<dyn Fn() -> Vec<String> + Send + Sync>;

/// The flight recorder: one per server instance, owning the metric
/// [`History`], the latest [`HealthReport`], the watchdog baselines,
/// and the bounded incident log. [`FlightRecorder::tick`] is the whole
/// per-scrape pipeline; the [`Scraper`] thread (started by the net
/// layer when `MQ_SCRAPE_MS` > 0) is just a cadence for it.
pub struct FlightRecorder {
    history: History,
    scrapes: Counter,
    latest: Mutex<HealthReport>,
    baselines: Mutex<HashMap<String, Baseline>>,
    incidents: Mutex<VecDeque<Incident>>,
    node_source: Mutex<Option<NodeSource>>,
}

impl FlightRecorder {
    /// A recorder for `registry`'s server instance (registers the
    /// `mq_scrape_runs_total` counter there).
    pub fn new(registry: &Registry) -> FlightRecorder {
        FlightRecorder {
            history: History::new(),
            scrapes: registry.counter("mq_scrape_runs_total", "Flight-recorder scrape ticks."),
            latest: Mutex::new(HealthReport::default()),
            baselines: Mutex::new(HashMap::new()),
            incidents: Mutex::new(VecDeque::new()),
            node_source: Mutex::new(None),
        }
    }

    /// The recorded time-series store.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Install the hottest-plan-nodes provider for incident context.
    pub fn set_node_source(&self, source: NodeSource) {
        *self.node_source.lock().unwrap_or_else(|e| e.into_inner()) = Some(source);
    }

    /// Scrape ticks so far (mirrors `mq_scrape_runs_total`).
    pub fn scrapes(&self) -> u64 {
        self.scrapes.get()
    }

    /// One full scrape at the live trace clock.
    pub fn tick(&self, registry: &Registry) {
        self.tick_at(registry, trace::now_ns() / 1_000_000);
    }

    /// One full scrape at an injected instant (deterministic tests):
    /// sample the registry into the history, re-evaluate the SLO rules,
    /// and run the watchdog.
    pub fn tick_at(&self, registry: &Registry, t_ms: u64) {
        self.scrapes.inc();
        self.history.record(registry, t_ms);
        let report = evaluate(&self.history, t_ms);
        *self.latest.lock().unwrap_or_else(|e| e.into_inner()) = report;
        self.watchdog(t_ms);
    }

    /// The latest health report (default-Healthy before any scrape).
    pub fn health(&self) -> HealthReport {
        self.latest
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The buffered incident log, oldest first.
    pub fn incidents(&self) -> Vec<Incident> {
        self.incidents
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Incident context: the latest live request's slowest spans.
    fn slow_spans() -> Vec<String> {
        let Some(req) = trace::latest_request(0) else {
            return Vec::new();
        };
        let mut spans = trace::collect_request(req);
        spans.sort_by_key(|s| std::cmp::Reverse(s.dur_ns));
        spans.truncate(3);
        spans
            .iter()
            .map(|s| format!("req={} {} dur_us={}", s.req, s.name, s.dur_ns / 1_000))
            .collect()
    }

    /// Compare every counter series' fast-window rate against its
    /// trailing baseline; record debounced incidents for outliers.
    fn watchdog(&self, now_ms: u64) {
        let k = anomaly_k();
        let names: Vec<String> = self
            .history
            .series_names()
            .into_iter()
            .filter(|n| {
                self.history
                    .ring(n)
                    .is_some_and(|r| r.kind() == SeriesKind::Counter)
            })
            .collect();
        for name in names {
            let Some(rate) = self.history.counter_rate(&name, FAST_WINDOW_MS, now_ms) else {
                continue;
            };
            let mut baselines = self.baselines.lock().unwrap_or_else(|e| e.into_inner());
            let base = baselines.entry(name.clone()).or_default();
            let warmed = base.rates.len() >= BASELINE_WARMUP;
            let (base_mean, base_mad) = if warmed {
                (mean(&base.rates), mad(&base.rates))
            } else {
                (0.0, 0.0)
            };
            let threshold = base_mean + k * base_mad.max(MAD_FLOOR);
            let anomalous = warmed && rate > threshold && rate >= MIN_ANOMALY_RATE;
            if anomalous {
                let debounced = base
                    .last_incident_ms
                    .is_some_and(|t| now_ms.saturating_sub(t) < INCIDENT_COOLDOWN_MS);
                if !debounced {
                    base.last_incident_ms = Some(now_ms);
                    drop(baselines);
                    let nodes = self
                        .node_source
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .as_ref()
                        .map(|f| f())
                        .unwrap_or_default();
                    let mut log = self.incidents.lock().unwrap_or_else(|e| e.into_inner());
                    if log.len() == INCIDENT_CAP {
                        log.pop_front();
                    }
                    log.push_back(Incident {
                        t_ms: now_ms,
                        series: name,
                        rate,
                        baseline_mean: base_mean,
                        baseline_mad: base_mad,
                        nodes,
                        slow_spans: Self::slow_spans(),
                    });
                }
                // Anomalous samples never enter the baseline, so a
                // sustained burst stays flagged instead of becoming
                // the new normal.
                continue;
            }
            if base.rates.len() == BASELINE_CAP {
                base.rates.pop_front();
            }
            base.rates.push_back(rate);
        }
    }

    /// Spawn the background scrape thread for this recorder if the
    /// `MQ_SCRAPE_MS` gate is on. `registry` must be the instance the
    /// recorder was built for; the closure is the only thing keeping
    /// the cadence — [`tick_at`] stays directly drivable by tests.
    ///
    /// [`tick_at`]: FlightRecorder::tick_at
    pub fn start_scraper(
        self: &std::sync::Arc<Self>,
        registry: std::sync::Arc<Registry>,
    ) -> Option<Scraper> {
        let period = crate::history::scrape_ms()?;
        let rec = self.clone();
        Some(Scraper::spawn(period, move || rec.tick(&registry)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `n` scrapes 1 s apart, bumping counters via `step`.
    fn drive(
        rec: &FlightRecorder,
        reg: &Registry,
        start_ms: u64,
        n: u64,
        mut step: impl FnMut(u64),
    ) -> u64 {
        let mut t = start_ms;
        for i in 0..n {
            step(i);
            rec.tick_at(reg, t);
            t += 1_000;
        }
        t - 1_000
    }

    #[test]
    fn idle_system_is_healthy() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(&reg);
        reg.counter("mq_net_requests_total", "t");
        let end = drive(&rec, &reg, 0, 5, |_| {});
        let report = rec.health();
        assert_eq!(report.verdict, Verdict::Healthy);
        assert_eq!(report.t_ms, end);
        assert_eq!(report.rules.len(), RULE_NAMES.len());
        for (r, want) in report.rules.iter().zip(RULE_NAMES) {
            assert_eq!(r.rule, want);
            assert_eq!(r.verdict, Verdict::Healthy, "{}: {}", r.rule, r.evidence);
        }
        assert_eq!(rec.scrapes(), 5);
    }

    #[test]
    fn error_burst_degrades_and_recovers_names_rule() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(&reg);
        let req = reg.counter("mq_net_requests_total", "t");
        let err = reg.counter("mq_net_err_replies_total", "t");
        // Clean traffic: 100 req/s, no errors.
        let end = drive(&rec, &reg, 0, 8, |_| req.add(100));
        assert_eq!(rec.health().verdict, Verdict::Healthy);
        // Burst: a third of replies error out.
        drive(&rec, &reg, end + 1_000, 4, |_| {
            req.add(100);
            err.add(33);
        });
        let report = rec.health();
        assert!(report.verdict >= Verdict::Degraded, "{report:?}");
        let rule = report
            .rules
            .iter()
            .find(|r| r.rule == "error-rate")
            .expect("error-rate rule present");
        assert!(rule.verdict >= Verdict::Degraded, "{}", rule.evidence);
        assert!(rule.evidence.contains("ceiling=0.050"), "{}", rule.evidence);
    }

    #[test]
    fn p99_burn_trips_on_sustained_slow_tail() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(&reg);
        set_p99_objective_ms_override(Some(1));
        let req = reg.counter("mq_net_requests_total", "t");
        let lat = reg.histogram("mq_net_request_ns", "t");
        // Every fifth request blows the 1 ms objective (20% ≫ 1% budget)
        // across both windows.
        drive(&rec, &reg, 0, 12, |_| {
            req.add(10);
            for i in 0..10u64 {
                lat.observe_ns(if i % 5 == 0 { 50_000_000 } else { 10_000 });
            }
        });
        let report = rec.health();
        set_p99_objective_ms_override(None);
        let rule = report
            .rules
            .iter()
            .find(|r| r.rule == "p99-burn")
            .expect("p99-burn rule present");
        assert_eq!(rule.verdict, Verdict::Unhealthy, "{}", rule.evidence);
        assert!(
            rule.evidence.contains("objective_ms=1"),
            "{}",
            rule.evidence
        );
    }

    #[test]
    fn watchdog_flags_burst_exactly_once() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(&reg);
        let c = reg.counter("mq_session_panics_caught_total", "t");
        // Quiet baseline.
        let end = drive(&rec, &reg, 0, 10, |_| {});
        assert!(rec.incidents().is_empty());
        // Sustained burst: 50 events/s for 5 scrapes.
        drive(&rec, &reg, end + 1_000, 5, |_| c.add(50));
        let incidents = rec.incidents();
        let hits: Vec<_> = incidents
            .iter()
            .filter(|i| i.series == "mq_session_panics_caught_total")
            .collect();
        assert_eq!(
            hits.len(),
            1,
            "debounce must capture the burst once: {incidents:?}"
        );
        let hit = hits[0];
        assert!(hit.rate >= 1.0, "{hit:?}");
        assert!(hit.rate > hit.baseline_mean, "{hit:?}");
    }

    #[test]
    fn watchdog_tolerates_steady_traffic() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(&reg);
        let c = reg.counter("mq_net_requests_total", "t");
        drive(&rec, &reg, 0, 30, |_| c.add(200));
        assert!(
            rec.incidents().is_empty(),
            "steady load is the baseline, not an anomaly: {:?}",
            rec.incidents()
        );
    }

    #[test]
    fn incident_log_is_bounded() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(&reg);
        {
            let mut log = rec.incidents.lock().unwrap();
            for i in 0..(INCIDENT_CAP + 10) {
                if log.len() == INCIDENT_CAP {
                    log.pop_front();
                }
                log.push_back(Incident {
                    t_ms: i as u64,
                    series: format!("s{i}"),
                    rate: 1.0,
                    baseline_mean: 0.0,
                    baseline_mad: 0.0,
                    nodes: Vec::new(),
                    slow_spans: Vec::new(),
                });
            }
        }
        let log = rec.incidents();
        assert_eq!(log.len(), INCIDENT_CAP);
        assert_eq!(log[0].t_ms, 10);
    }

    #[test]
    fn node_source_enriches_incidents() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(&reg);
        rec.set_node_source(Box::new(|| vec!["node #3 wall_ms=12".into()]));
        let c = reg.counter("mq_exec_nodes_total", "t");
        let end = drive(&rec, &reg, 0, 10, |_| {});
        drive(&rec, &reg, end + 1_000, 3, |_| c.add(500));
        let incidents = rec.incidents();
        assert!(!incidents.is_empty());
        assert_eq!(incidents[0].nodes, vec!["node #3 wall_ms=12".to_string()]);
    }

    #[test]
    fn health_knob_overrides() {
        set_max_err_rate_override(Some(0.5));
        assert_eq!(max_err_rate(), 0.5);
        set_max_err_rate_override(None);
        set_anomaly_k_override(Some(2.5));
        assert_eq!(anomaly_k(), 2.5);
        set_anomaly_k_override(None);
        set_p99_objective_ms_override(Some(123));
        assert_eq!(p99_objective_ms(), 123);
        set_p99_objective_ms_override(None);
    }
}
