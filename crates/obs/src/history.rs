//! Fixed-memory time-series history: the flight recorder's storage.
//!
//! A [`History`] keeps the last [`RING_SAMPLES`] scrapes of every
//! registry series in per-series seqlock rings ([`SeriesRing`]): the
//! background [`Scraper`] (single writer) stores each sample with the
//! same odd/even sequence protocol the span rings use, so readers —
//! the `history`/`top`/`health` protocol verbs — never lock against
//! the writer and discard any sample they raced mid-write. Memory is
//! fixed at allocation: a scalar series ring is `RING_SAMPLES × 2`
//! words (~8 KiB), a histogram ring `RING_SAMPLES × 16` words
//! (~64 KiB); with the workspace's ~45 series the whole recorder stays
//! under ~1 MiB regardless of uptime.
//!
//! On top of the raw samples, `History` derives the windowed views the
//! SLO engine consumes: per-window counter **rates** (Prometheus-style
//! reset handling — a decreasing counter is treated as restarted from
//! zero, so rates are never negative), gauge **min/max**, and
//! histogram-**delta** percentiles (bucket-wise `last − first` over the
//! window, fed to [`HistogramSnapshot::quantile_ns`]).
//!
//! The scrape cadence is `MQ_SCRAPE_MS` (default 1000; `0` disables the
//! recorder entirely — no thread, no rings, no cost), read once and
//! overridable via [`set_scrape_ms_override`] like every other gate.

use crate::metrics::{HistogramSnapshot, Registry, SampleValue, BUCKET_BOUNDS_NS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Samples retained per series (power of two). At the default 1 s
/// cadence this is ~8.5 minutes of history — comfortably covering the
/// longest (5 m) SLO window.
pub const RING_SAMPLES: usize = 512;

/// Histogram bucket count (bounds + overflow), mirrored from
/// [`BUCKET_BOUNDS_NS`].
const HB: usize = BUCKET_BOUNDS_NS.len() + 1;

/// Words per scalar sample: `[t_ms, value]`.
const SCALAR_WORDS: usize = 2;
/// Words per histogram sample: `[t_ms, buckets…, sum_ns, count]`.
const HIST_WORDS: usize = 1 + HB + 2;

/// What instrument a recorded series is — drives which windowed views
/// apply (rates for counters, min/max for gauges, percentile deltas
/// for histograms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic counter (modulo resets).
    Counter,
    /// Free-moving gauge.
    Gauge,
    /// Fixed-bucket latency histogram.
    Histogram,
}

/// One sample read back out of a ring.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// Scrape instant, trace-clock milliseconds.
    pub t_ms: u64,
    /// Sampled value.
    pub value: PointValue,
}

/// A [`SeriesPoint`]'s payload.
#[derive(Clone, Debug)]
pub enum PointValue {
    /// Counter or gauge value.
    Scalar(u64),
    /// Full histogram state at scrape time.
    Hist(HistogramSnapshot),
}

impl PointValue {
    /// The scalar view every consumer can fall back to (histograms
    /// contribute their cumulative count — same convention as
    /// `Registry::snapshot`).
    pub fn as_scalar(&self) -> u64 {
        match self {
            PointValue::Scalar(v) => *v,
            PointValue::Hist(h) => h.count,
        }
    }
}

/// A fixed-capacity seqlock ring holding one series' trailing samples.
///
/// Single-writer (the scraper), many torn-free readers: each slot
/// carries a sequence word set to `pos*2+1` before the payload stores
/// and `pos*2+2` after, so a reader that observes an odd or changed
/// sequence discards the slot instead of surfacing a torn sample —
/// the same protocol as the span rings in [`crate::trace`].
pub struct SeriesRing {
    kind: SeriesKind,
    width: usize,
    /// Published samples (monotonic logical position).
    head: AtomicU64,
    /// Per-slot sequence words.
    seq: Vec<AtomicU64>,
    /// `RING_SAMPLES × width` payload words.
    words: Vec<AtomicU64>,
}

impl SeriesRing {
    fn new(kind: SeriesKind) -> SeriesRing {
        let width = match kind {
            SeriesKind::Histogram => HIST_WORDS,
            _ => SCALAR_WORDS,
        };
        SeriesRing {
            kind,
            width,
            head: AtomicU64::new(0),
            seq: (0..RING_SAMPLES).map(|_| AtomicU64::new(0)).collect(),
            words: (0..RING_SAMPLES * width)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// The series' instrument kind.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// Samples ever pushed (reads back at most [`RING_SAMPLES`]).
    pub fn len(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Whether no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push one sample (single writer — the scraper).
    fn push(&self, t_ms: u64, value: &SampleValue) {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = (pos as usize) % RING_SAMPLES;
        let base = slot * self.width;
        self.seq[slot].store(pos * 2 + 1, Ordering::SeqCst);
        self.words[base].store(t_ms, Ordering::Relaxed);
        match value {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                self.words[base + 1].store(*v, Ordering::Relaxed);
            }
            SampleValue::Histogram(h) => {
                for (i, b) in h.buckets.iter().enumerate() {
                    self.words[base + 1 + i].store(*b, Ordering::Relaxed);
                }
                self.words[base + 1 + HB].store(h.sum_ns, Ordering::Relaxed);
                self.words[base + 2 + HB].store(h.count, Ordering::Relaxed);
            }
        }
        self.seq[slot].store(pos * 2 + 2, Ordering::SeqCst);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// One slot's sample, `None` if the writer overwrote it mid-read
    /// (odd or advanced sequence word — discard, never surface torn).
    fn read_pos(&self, pos: u64) -> Option<SeriesPoint> {
        let slot = (pos as usize) % RING_SAMPLES;
        let base = slot * self.width;
        let want = pos * 2 + 2;
        if self.seq[slot].load(Ordering::SeqCst) != want {
            return None;
        }
        let t_ms = self.words[base].load(Ordering::Relaxed);
        let value = match self.kind {
            SeriesKind::Histogram => {
                let mut h = HistogramSnapshot::default();
                for (i, b) in h.buckets.iter_mut().enumerate() {
                    *b = self.words[base + 1 + i].load(Ordering::Relaxed);
                }
                h.sum_ns = self.words[base + 1 + HB].load(Ordering::Relaxed);
                h.count = self.words[base + 2 + HB].load(Ordering::Relaxed);
                PointValue::Hist(h)
            }
            _ => PointValue::Scalar(self.words[base + 1].load(Ordering::Relaxed)),
        };
        if self.seq[slot].load(Ordering::SeqCst) != want {
            return None; // overwritten mid-read — discard
        }
        Some(SeriesPoint { t_ms, value })
    }

    /// Every still-valid buffered sample, oldest first. Samples the
    /// writer overwrote mid-read are skipped, so timestamps are
    /// monotone but gaps are possible under heavy lag.
    pub fn read_all(&self) -> Vec<SeriesPoint> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(RING_SAMPLES as u64);
        (start..head).filter_map(|pos| self.read_pos(pos)).collect()
    }

    /// Buffered samples with `min_t_ms <= t_ms <= max_t_ms`, oldest
    /// first. Walks **backwards** from the head and stops at the first
    /// valid sample older than the window (timestamps are monotone), so
    /// the per-scrape SLO evaluation reads ~window-many slots rather
    /// than the full ring — the difference between a tick costing
    /// microseconds and one that bumps serving tail latency.
    pub fn read_range(&self, min_t_ms: u64, max_t_ms: u64) -> Vec<SeriesPoint> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(RING_SAMPLES as u64);
        let mut out = Vec::new();
        for pos in (start..head).rev() {
            // A torn slot can't tell us we're past the window, so keep
            // scanning; only a *valid* too-old sample terminates.
            let Some(p) = self.read_pos(pos) else {
                continue;
            };
            if p.t_ms < min_t_ms {
                break;
            }
            if p.t_ms <= max_t_ms {
                out.push(p);
            }
        }
        out.reverse();
        out
    }
}

/// The named SLO windows (`token`, width in ms): 10 s, 1 m, 5 m.
pub const WINDOWS_MS: [(&str, u64); 3] = [("10s", 10_000), ("1m", 60_000), ("5m", 300_000)];

/// Parse a window token — one of [`WINDOWS_MS`]'s names or a generic
/// `<n>ms` / `<n>s` / `<n>m` duration. Zero-width windows are rejected.
pub fn parse_window(token: &str) -> Option<u64> {
    let (digits, scale) = if let Some(d) = token.strip_suffix("ms") {
        (d, 1)
    } else if let Some(d) = token.strip_suffix('s') {
        (d, 1_000)
    } else if let Some(d) = token.strip_suffix('m') {
        (d, 60_000)
    } else {
        return None;
    };
    let n: u64 = digits.parse().ok().filter(|&n| n > 0)?;
    n.checked_mul(scale)
}

/// The time-series store: one [`SeriesRing`] per registry series,
/// created lazily at first scrape (so its memory tracks the number of
/// distinct series, never uptime).
#[derive(Default)]
pub struct History {
    series: Mutex<Vec<(String, Arc<SeriesRing>)>>,
}

impl History {
    /// An empty history.
    pub fn new() -> History {
        History::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(String, Arc<SeriesRing>)>> {
        // Held only to resolve name → ring (scraper batch start,
        // verb lookups) — the sample writes/reads themselves are
        // lock-free. Pushes are single-step, so a poisoned map is
        // still consistent.
        self.series.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record one full registry sample at trace-clock ms `t_ms` — the
    /// deterministic scrape entry point (tests inject timestamps; the
    /// scraper thread passes the live clock).
    pub fn record(&self, registry: &Registry, t_ms: u64) {
        let samples = registry.sample();
        let mut map = self.lock();
        for s in &samples {
            let ring = match map.iter().find(|(name, _)| *name == s.series) {
                Some((_, ring)) => ring.clone(),
                None => {
                    let kind = match s.value {
                        SampleValue::Counter(_) => SeriesKind::Counter,
                        SampleValue::Gauge(_) => SeriesKind::Gauge,
                        SampleValue::Histogram(_) => SeriesKind::Histogram,
                    };
                    let ring = Arc::new(SeriesRing::new(kind));
                    map.push((s.series.clone(), ring.clone()));
                    ring
                }
            };
            ring.push(t_ms, &s.value);
        }
        registry.note_scrape(t_ms);
    }

    /// The ring for `series`, if it has ever been scraped.
    pub fn ring(&self, series: &str) -> Option<Arc<SeriesRing>> {
        self.lock()
            .iter()
            .find(|(name, _)| name == series)
            .map(|(_, r)| r.clone())
    }

    /// Every recorded series name, in first-scrape order.
    pub fn series_names(&self) -> Vec<String> {
        self.lock().iter().map(|(n, _)| n.clone()).collect()
    }

    /// Buffered samples of `series` within the trailing window
    /// `[now_ms − window_ms, now_ms]`, oldest first.
    pub fn points(&self, series: &str, window_ms: u64, now_ms: u64) -> Vec<SeriesPoint> {
        let Some(ring) = self.ring(series) else {
            return Vec::new();
        };
        ring.read_range(now_ms.saturating_sub(window_ms), now_ms)
    }

    /// Per-second rate of a counter series over the window, derived
    /// from consecutive-sample deltas with Prometheus-style reset
    /// handling: a decreasing step is treated as a restart from zero
    /// (the new value is the delta), so the rate is never negative.
    /// `None` without at least two samples spanning nonzero time.
    pub fn counter_rate(&self, series: &str, window_ms: u64, now_ms: u64) -> Option<f64> {
        let pts = self.points(series, window_ms, now_ms);
        let (first, last) = (pts.first()?, pts.last()?);
        let elapsed_ms = last.t_ms.saturating_sub(first.t_ms);
        if elapsed_ms == 0 {
            return None;
        }
        let mut total = 0u64;
        for w in pts.windows(2) {
            let (prev, next) = (w[0].value.as_scalar(), w[1].value.as_scalar());
            total += if next >= prev { next - prev } else { next };
        }
        Some(total as f64 / (elapsed_ms as f64 / 1_000.0))
    }

    /// `(min, max)` of a gauge series over the window; `None` when the
    /// window holds no samples.
    pub fn gauge_minmax(&self, series: &str, window_ms: u64, now_ms: u64) -> Option<(u64, u64)> {
        let pts = self.points(series, window_ms, now_ms);
        let mut it = pts.iter().map(|p| p.value.as_scalar());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Bucket-wise histogram delta over the window (`last − first`
    /// sample). A reset (any bucket shrinking) falls back to the last
    /// sample alone — everything observed since the restart. The
    /// returned snapshot's `count` is re-derived from the delta
    /// buckets, so [`HistogramSnapshot::quantile_ns`] yields
    /// per-window percentiles. `None` without at least two samples.
    pub fn hist_delta(
        &self,
        series: &str,
        window_ms: u64,
        now_ms: u64,
    ) -> Option<HistogramSnapshot> {
        let pts = self.points(series, window_ms, now_ms);
        if pts.len() < 2 {
            return None;
        }
        let (first, last) = match (&pts.first()?.value, &pts.last()?.value) {
            (PointValue::Hist(f), PointValue::Hist(l)) => (f, l),
            _ => return None,
        };
        let reset = last.buckets.iter().zip(&first.buckets).any(|(l, f)| l < f);
        let mut delta = HistogramSnapshot::default();
        for (i, d) in delta.buckets.iter_mut().enumerate() {
            *d = if reset {
                last.buckets[i]
            } else {
                last.buckets[i] - first.buckets[i]
            };
        }
        delta.sum_ns = if reset {
            last.sum_ns
        } else {
            last.sum_ns.saturating_sub(first.sum_ns)
        };
        delta.count = delta.buckets.iter().sum();
        Some(delta)
    }

    /// The `k` highest-rate counter series over the window, hottest
    /// first. Series with no measurable rate are skipped.
    pub fn top_rates(&self, window_ms: u64, now_ms: u64, k: usize) -> Vec<(String, f64)> {
        let names: Vec<(String, SeriesKind)> = self
            .lock()
            .iter()
            .map(|(n, r)| (n.clone(), r.kind()))
            .collect();
        let mut out: Vec<(String, f64)> = names
            .into_iter()
            .filter(|(_, kind)| *kind == SeriesKind::Counter)
            .filter_map(|(name, _)| {
                let rate = self.counter_rate(&name, window_ms, now_ms)?;
                (rate > 0.0).then_some((name, rate))
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out.truncate(k);
        out
    }
}

// ── The MQ_SCRAPE_MS gate ───────────────────────────────────────────

/// Lazily cached `MQ_SCRAPE_MS` (+1 so 0 can mean "not yet read";
/// u64::MAX = read, disabled).
static SCRAPE_ENV: AtomicU64 = AtomicU64::new(0);
/// Override: 0 = none, u64::MAX = force off, v+1 = force cadence v.
static SCRAPE_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// The scrape cadence in milliseconds, or `None` when the flight
/// recorder is off (`MQ_SCRAPE_MS=0`). Unset defaults to 1000.
pub fn scrape_ms() -> Option<u64> {
    match SCRAPE_OVERRIDE.load(Ordering::Relaxed) {
        0 => {}
        u64::MAX => return None,
        v => return Some(v - 1),
    }
    match SCRAPE_ENV.load(Ordering::Relaxed) {
        0 => {
            let ms = match std::env::var("MQ_SCRAPE_MS") {
                Ok(v) => v.parse::<u64>().ok().filter(|&v| v > 0),
                Err(_) => Some(1_000),
            };
            SCRAPE_ENV.store(ms.map_or(u64::MAX, |v| v + 1), Ordering::Relaxed);
            ms
        }
        u64::MAX => None,
        v => Some(v - 1),
    }
}

/// Force the scrape cadence (`Some(ms)`), force the recorder off
/// (`Some(0)`), or return to the `MQ_SCRAPE_MS` default (`None`). An
/// atomic override — mutating the environment is unsound under
/// concurrent readers.
pub fn set_scrape_ms_override(ms: Option<u64>) {
    let v = match ms {
        None => 0,
        Some(0) => u64::MAX,
        Some(v) => v + 1,
    };
    SCRAPE_OVERRIDE.store(v, Ordering::Relaxed);
}

// ── The background scraper ──────────────────────────────────────────

/// A background thread invoking a tick callback on a fixed cadence,
/// with prompt shutdown (condvar wakeup, not sleep polling). The
/// callback runs once immediately on spawn so the history has a
/// baseline sample before the first full period elapses.
pub struct Scraper {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Scraper {
    /// Spawn the scraper thread at `period_ms` cadence.
    pub fn spawn(period_ms: u64, mut tick: impl FnMut() + Send + 'static) -> Scraper {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("mq-scraper".into())
            .spawn(move || {
                tick();
                let (lock, cvar) = &*thread_stop;
                loop {
                    let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
                    let (guard, _) = cvar
                        .wait_timeout(guard, std::time::Duration::from_millis(period_ms))
                        .unwrap_or_else(|e| e.into_inner());
                    if *guard {
                        return;
                    }
                    drop(guard);
                    tick();
                }
            })
            .ok();
        Scraper { stop, handle }
    }

    /// Stop the thread and join it (idempotent; also runs on drop).
    pub fn stop(&mut self) {
        {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Scraper {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn scraped_registry() -> (Registry, History) {
        (Registry::new(), History::new())
    }

    #[test]
    fn rings_record_and_read_back_monotone() {
        let (reg, hist) = scraped_registry();
        let c = reg.counter("mq_test_total", "test");
        for t in 0..5u64 {
            c.add(10);
            hist.record(&reg, t * 1_000);
        }
        let pts = hist.points("mq_test_total", 60_000, 4_000);
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].t_ms < w[1].t_ms, "timestamps must be monotone");
        }
        assert_eq!(pts.last().map(|p| p.value.as_scalar()), Some(50));
        assert_eq!(reg.last_scrape_ms(), Some(4_000));
    }

    #[test]
    fn ring_overwrites_oldest_within_capacity() {
        let (reg, hist) = scraped_registry();
        let c = reg.counter("mq_test_total", "test");
        let n = RING_SAMPLES as u64 + 100;
        for t in 0..n {
            c.inc();
            hist.record(&reg, t);
        }
        let ring = hist.ring("mq_test_total").expect("ring exists");
        let pts = ring.read_all();
        assert_eq!(pts.len(), RING_SAMPLES);
        assert_eq!(pts.first().map(|p| p.t_ms), Some(n - RING_SAMPLES as u64));
        assert_eq!(pts.last().map(|p| p.t_ms), Some(n - 1));
    }

    #[test]
    fn read_range_matches_filtered_read_all() {
        let (reg, hist) = scraped_registry();
        let c = reg.counter("mq_test_total", "test");
        let n = RING_SAMPLES as u64 + 50;
        for t in 0..n {
            c.inc();
            hist.record(&reg, t * 100);
        }
        let ring = hist.ring("mq_test_total").expect("ring exists");
        let (lo, hi) = ((n - 20) * 100, (n - 5) * 100);
        let want: Vec<u64> = ring
            .read_all()
            .into_iter()
            .filter(|p| p.t_ms >= lo && p.t_ms <= hi)
            .map(|p| p.t_ms)
            .collect();
        let got: Vec<u64> = ring
            .read_range(lo, hi)
            .into_iter()
            .map(|p| p.t_ms)
            .collect();
        assert_eq!(got, want);
        assert_eq!(got.len(), 16);
        // A window wider than the ring degrades to read_all.
        assert_eq!(ring.read_range(0, u64::MAX).len(), RING_SAMPLES);
    }

    #[test]
    fn counter_rate_is_windowed() {
        let (reg, hist) = scraped_registry();
        let c = reg.counter("mq_test_total", "test");
        // 10 samples 1 s apart, +5 per step → 5/s.
        for t in 0..10u64 {
            hist.record(&reg, t * 1_000);
            c.add(5);
        }
        let rate = hist
            .counter_rate("mq_test_total", 60_000, 9_000)
            .expect("rate");
        assert!((rate - 5.0).abs() < 1e-9, "{rate}");
        // A 2 s window sees only the last 3 samples — same slope.
        let short = hist
            .counter_rate("mq_test_total", 2_000, 9_000)
            .expect("short rate");
        assert!((short - 5.0).abs() < 1e-9, "{short}");
        // One sample in window ⇒ no rate.
        assert!(hist.counter_rate("mq_test_total", 500, 9_000).is_none());
    }

    #[test]
    fn counter_reset_never_yields_negative_rate() {
        let (reg, hist) = scraped_registry();
        let c = reg.counter("mq_test_total", "test");
        c.add(100);
        hist.record(&reg, 0);
        c.add(10);
        hist.record(&reg, 1_000);
        // Simulate a scraper/process restart: a fresh registry whose
        // counter restarts from zero, recorded into the same history.
        let reg2 = Registry::new();
        let c2 = reg2.counter("mq_test_total", "test");
        c2.add(4);
        hist.record(&reg2, 2_000);
        c2.add(6);
        hist.record(&reg2, 3_000);
        let rate = hist
            .counter_rate("mq_test_total", 60_000, 3_000)
            .expect("rate");
        // Deltas: +10, reset→+4, +6 over 3 s.
        assert!((rate - 20.0 / 3.0).abs() < 1e-9, "{rate}");
        assert!(rate >= 0.0);
    }

    #[test]
    fn gauge_minmax_covers_window_only() {
        let (reg, hist) = scraped_registry();
        let g = reg.gauge("mq_test_gauge", "test");
        for (t, v) in [(0u64, 3u64), (1_000, 9), (2_000, 1), (3_000, 5)] {
            g.set(v);
            hist.record(&reg, t);
        }
        assert_eq!(
            hist.gauge_minmax("mq_test_gauge", 60_000, 3_000),
            Some((1, 9))
        );
        assert_eq!(
            hist.gauge_minmax("mq_test_gauge", 1_500, 3_000),
            Some((1, 5))
        );
    }

    #[test]
    fn hist_delta_yields_window_percentiles() {
        let (reg, hist) = scraped_registry();
        let h = reg.histogram("mq_test_ns", "test");
        // Before the window: 100 fast observations.
        for _ in 0..100 {
            h.observe_ns(500);
        }
        hist.record(&reg, 0);
        // Inside the window: 10 slow ones.
        for _ in 0..10 {
            h.observe_ns(2_000_000_000);
        }
        hist.record(&reg, 1_000);
        let delta = hist.hist_delta("mq_test_ns", 60_000, 1_000).expect("delta");
        assert_eq!(delta.count, 10);
        // The since-boot p50 is 500 ns; the windowed p50 is the slow tail.
        assert_eq!(delta.quantile_ns(0.5), 4_000_000_000);
        assert_eq!(h.quantile_ns(0.5), 1_000);
    }

    #[test]
    fn hist_delta_survives_reset() {
        let (reg, hist) = scraped_registry();
        let h = reg.histogram("mq_test_ns", "test");
        for _ in 0..50 {
            h.observe_ns(500);
        }
        hist.record(&reg, 0);
        let reg2 = Registry::new();
        let h2 = reg2.histogram("mq_test_ns", "test");
        for _ in 0..3 {
            h2.observe_ns(2_000);
        }
        hist.record(&reg2, 1_000);
        let delta = hist.hist_delta("mq_test_ns", 60_000, 1_000).expect("delta");
        assert_eq!(delta.count, 3, "reset falls back to the fresh snapshot");
        assert_eq!(delta.quantile_ns(1.0), 4_000);
    }

    #[test]
    fn top_rates_ranks_counters_only() {
        let (reg, hist) = scraped_registry();
        let fast = reg.counter("mq_fast_total", "test");
        let slow = reg.counter("mq_slow_total", "test");
        let g = reg.gauge("mq_test_gauge", "test");
        for t in 0..5u64 {
            fast.add(100);
            slow.add(1);
            g.set(1_000_000);
            hist.record(&reg, t * 1_000);
        }
        let top = hist.top_rates(60_000, 4_000, 10);
        assert_eq!(top.len(), 2, "gauges are excluded: {top:?}");
        assert_eq!(top[0].0, "mq_fast_total");
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn parse_window_tokens() {
        assert_eq!(parse_window("10s"), Some(10_000));
        assert_eq!(parse_window("30s"), Some(30_000));
        assert_eq!(parse_window("1m"), Some(60_000));
        assert_eq!(parse_window("5m"), Some(300_000));
        assert_eq!(parse_window("250ms"), Some(250));
        assert_eq!(parse_window("0s"), None);
        assert_eq!(parse_window("10"), None);
        assert_eq!(parse_window("banana"), None);
    }

    #[test]
    fn scrape_gate_overrides() {
        set_scrape_ms_override(Some(25));
        assert_eq!(scrape_ms(), Some(25));
        set_scrape_ms_override(Some(0));
        assert_eq!(scrape_ms(), None);
        set_scrape_ms_override(None);
    }

    #[test]
    fn scraper_ticks_and_stops_promptly() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let mut s = Scraper::spawn(5, move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while hits.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(hits.load(Ordering::Relaxed) >= 3, "scraper never ticked");
        let start = std::time::Instant::now();
        s.stop();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "stop must not wait out a full period"
        );
    }
}
