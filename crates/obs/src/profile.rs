//! Per-search plan-node profiling.
//!
//! A [`SearchProfile`] rides along one search (`find_rules_*` call) and
//! splits into two tiers:
//!
//! * **Always-on totals** — scheduler tasks claimed, executor node
//!   evaluations, memo hits — are single relaxed atomic increments,
//!   cheap enough for every request. The service layer drains them into
//!   the `mq_sched_*` / `mq_exec_*` metric families.
//! * **Detailed per-node attribution** — wall nanoseconds, execution
//!   count, memo hits, rows in/out per hash-consed `PlanOp` id — only
//!   when the profile was built [`SearchProfile::detailed`]. Executors
//!   accumulate into thread-local `Vec<NodeStat>`s and merge once per
//!   worker ([`SearchProfile::merge_nodes`]), so the hot loop touches no
//!   shared cache line.
//!
//! Wall time per node is **self time**: the clock runs only around a
//! node's own kernel (scan/probe/build), not its children's recursion,
//! so a plan's node times sum to the executor's total instead of
//! multiply-counting shared subtrees.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Accumulated attribution for one hash-consed plan node id.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStat {
    /// Self wall time in nanoseconds (children excluded).
    pub wall_ns: u64,
    /// Times the node was executed (memo misses that ran the kernel).
    pub execs: u64,
    /// Times a memoized result satisfied the node instead.
    pub memo_hits: u64,
    /// Total input rows consumed across executions.
    pub rows_in: u64,
    /// Total output rows produced across executions.
    pub rows_out: u64,
}

impl NodeStat {
    fn absorb(&mut self, other: &NodeStat) {
        self.wall_ns += other.wall_ns;
        self.execs += other.execs;
        self.memo_hits += other.memo_hits;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
    }
}

/// Profile for one search: always-on totals plus (optionally) per-node
/// detail keyed by plan-node id.
#[derive(Debug, Default)]
pub struct SearchProfile {
    detailed: bool,
    /// Scheduler prefix tasks claimed.
    pub tasks: AtomicU64,
    /// Executor node evaluations (kernel actually ran).
    pub node_execs: AtomicU64,
    /// Node evaluations satisfied from a memo instead.
    pub node_memo_hits: AtomicU64,
    /// Per-node detail, indexed by plan-node id (dense — plan arenas
    /// hand out small sequential ids). Merged under a mutex once per
    /// worker, not per node.
    nodes: Mutex<Vec<NodeStat>>,
}

impl SearchProfile {
    /// A profile recording only the always-on totals.
    pub fn new() -> SearchProfile {
        SearchProfile::default()
    }

    /// A profile that also keeps per-node detail (slow-query log,
    /// `bench_report` node tables).
    pub fn detailed() -> SearchProfile {
        SearchProfile {
            detailed: true,
            ..SearchProfile::default()
        }
    }

    /// Whether executors should keep per-node detail for this search.
    pub fn is_detailed(&self) -> bool {
        self.detailed
    }

    /// Record one claimed scheduler task.
    pub fn task_claimed(&self) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge one worker's locally accumulated per-node stats. `local`
    /// is indexed by plan-node id; ignored unless detailed.
    pub fn merge_nodes(&self, local: &[NodeStat]) {
        if !self.detailed {
            return;
        }
        let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
        if nodes.len() < local.len() {
            nodes.resize(local.len(), NodeStat::default());
        }
        for (id, stat) in local.iter().enumerate() {
            if stat != &NodeStat::default() {
                nodes[id].absorb(stat);
            }
        }
    }

    /// Snapshot of the merged per-node stats, indexed by node id.
    pub fn nodes_snapshot(&self) -> Vec<NodeStat> {
        self.nodes.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The `k` hottest nodes by self wall time, `(node_id, stat)` pairs
    /// sorted hottest-first. Nodes that never ran are skipped.
    pub fn top_nodes(&self, k: usize) -> Vec<(usize, NodeStat)> {
        let mut all: Vec<(usize, NodeStat)> = self
            .nodes_snapshot()
            .into_iter()
            .enumerate()
            .filter(|(_, s)| s.execs > 0 || s.memo_hits > 0)
            .collect();
        all.sort_by(|a, b| (b.1.wall_ns, b.1.execs, a.0).cmp(&(a.1.wall_ns, a.1.execs, b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_by_node_id() {
        let p = SearchProfile::detailed();
        let mut a = vec![NodeStat::default(); 3];
        a[1] = NodeStat {
            wall_ns: 100,
            execs: 2,
            memo_hits: 0,
            rows_in: 10,
            rows_out: 4,
        };
        let mut b = vec![NodeStat::default(); 2];
        b[1] = NodeStat {
            wall_ns: 50,
            execs: 1,
            memo_hits: 3,
            rows_in: 5,
            rows_out: 2,
        };
        p.merge_nodes(&a);
        p.merge_nodes(&b);
        let snap = p.nodes_snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[1].wall_ns, 150);
        assert_eq!(snap[1].execs, 3);
        assert_eq!(snap[1].memo_hits, 3);
        assert_eq!(snap[1].rows_in, 15);
        assert_eq!(snap[0], NodeStat::default());
    }

    #[test]
    fn undetailed_profile_drops_node_detail() {
        let p = SearchProfile::new();
        assert!(!p.is_detailed());
        p.merge_nodes(&[NodeStat {
            wall_ns: 9,
            execs: 1,
            ..NodeStat::default()
        }]);
        assert!(p.nodes_snapshot().is_empty());
    }

    #[test]
    fn top_nodes_sorts_by_self_time() {
        let p = SearchProfile::detailed();
        let mut local = vec![NodeStat::default(); 4];
        local[0] = NodeStat {
            wall_ns: 10,
            execs: 1,
            ..NodeStat::default()
        };
        local[2] = NodeStat {
            wall_ns: 300,
            execs: 5,
            ..NodeStat::default()
        };
        local[3] = NodeStat {
            wall_ns: 0,
            execs: 0,
            memo_hits: 7,
            ..NodeStat::default()
        };
        p.merge_nodes(&local);
        let top = p.top_nodes(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 0);
    }
}
