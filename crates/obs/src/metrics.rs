//! The central metrics registry: monotonic counters, gauges, and
//! fixed-bucket latency histograms.
//!
//! A [`Registry`] is owned by one server instance; handles
//! ([`Counter`]/[`Gauge`]/[`Histogram`]) are cheap `Arc` clones created
//! once at construction, so the hot path never touches the registry's
//! lock — recording is a single relaxed atomic op. Snapshots are
//! torn-free in the per-metric sense: every read is an atomic load of a
//! monotonically increasing value, so a reader racing four writers can
//! observe an in-between total but never a decreasing or corrupted one.
//!
//! Metric names are `&'static str` literals by design: the `mq-lint`
//! `metric-registry` rule requires every name to be declared (with a
//! purpose string) in `crates/lint/src/metrics.rs`, exactly like the
//! `MQ_*` knob registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (e.g. active connections).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one (saturating at zero).
    pub fn dec(&self) {
        // fetch_update never poisons; saturate rather than wrap so a
        // double-decrement bug reads as 0, not u64::MAX.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Set to an absolute value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (nanoseconds, inclusive) of the fixed histogram buckets:
/// powers of four from 1µs to 4s, plus an implicit +Inf overflow bucket.
/// One bound set for every latency histogram keeps p50/p95/p99 derivable
/// by a fixed-size cumulative walk — no allocation, no sorting.
pub const BUCKET_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
];

const N_BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1; // + overflow

#[derive(Default)]
struct HistogramCore {
    buckets: [AtomicU64; N_BUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket latency histogram over [`BUCKET_BOUNDS_NS`].
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

/// A torn-free (per-field atomic) histogram snapshot.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Non-cumulative per-bucket counts ([`BUCKET_BOUNDS_NS`] + overflow).
    pub buckets: [u64; N_BUCKETS],
    /// Sum of every observed value, in nanoseconds.
    pub sum_ns: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile (`0.0 < q <= 1.0`) over the snapshot,
    /// reported as the upper bound of the bucket the rank falls in
    /// (`u64::MAX` for the overflow bucket). Allocation-free by
    /// construction; also used on windowed bucket *deltas* by the
    /// flight recorder (`history`), where it yields per-window rather
    /// than since-boot percentiles.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

impl Histogram {
    /// Record one latency observation.
    pub fn observe_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(N_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum_ns.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile of the live histogram (see
    /// [`HistogramSnapshot::quantile_ns`]).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.snapshot().quantile_ns(q)
    }

    /// Atomic-per-field snapshot of the bucket counts.
    ///
    /// `count` is derived from the bucket loads, not read from the
    /// count atomic: observations land bucket-first, so an independent
    /// count read could run ahead of the buckets under concurrent
    /// writers and break the Prometheus invariant that the cumulative
    /// `+Inf` bucket equals `_count`. Deriving it keeps every snapshot
    /// internally consistent; `sum_ns` may trail by in-flight
    /// observations, which nothing validates against the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; N_BUCKETS];
        for (i, b) in self.0.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_ns: self.0.sum_ns.load(Ordering::Relaxed),
            count: buckets.iter().sum(),
        }
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The typed value of one series in a [`Registry::sample`] — unlike
/// [`Registry::snapshot`] (which flattens histograms to their `_count`),
/// this carries the full bucket state so the flight recorder can derive
/// per-window percentiles from bucket deltas.
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// A monotonic counter's current total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(u64),
    /// A histogram's full torn-free snapshot.
    Histogram(HistogramSnapshot),
}

/// One sampled series: the exposition series key (`name` or
/// `name{key="value"}` — the same string [`Registry::snapshot`] uses)
/// plus its typed value.
#[derive(Clone, Debug)]
pub struct SeriesSample {
    /// Series key, stable across samples.
    pub series: String,
    /// Typed value at sample time.
    pub value: SampleValue,
}

struct Entry {
    name: &'static str,
    help: &'static str,
    /// Optional single `key="value"` label pair (e.g. fault sites).
    label: Option<(&'static str, &'static str)>,
    slot: Slot,
}

/// One server instance's metric set. Handle creation (`counter`/`gauge`/
/// `histogram`) is get-or-create on `(name, label)`, so two subsystems
/// naming the same metric share one cell; rendering walks the entries in
/// registration order, grouped by name.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
    /// Trace-clock ms of the latest flight-recorder scrape, +1 so zero
    /// can mean "never scraped". Written by the background scraper,
    /// read by `render_prometheus` for the scrape-age comment.
    last_scrape_ms: AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        // Registration/rendering only — never on a recording path. A
        // poisoned registry lock (a panicking registration) leaves the
        // entry list consistent: pushes are single-step.
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter `name` (no label).
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_labeled(name, help, None)
    }

    /// Get or create the counter `name{key="value"}`. Pass `None` for an
    /// unlabeled series.
    pub fn counter_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, &'static str)>,
    ) -> Counter {
        let mut entries = self.entries();
        for e in entries.iter() {
            if e.name == name && e.label == label {
                if let Slot::Counter(c) = &e.slot {
                    return c.clone();
                }
            }
        }
        let c = Counter::default();
        entries.push(Entry {
            name,
            help,
            label,
            slot: Slot::Counter(c.clone()),
        });
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let mut entries = self.entries();
        for e in entries.iter() {
            if e.name == name && e.label.is_none() {
                if let Slot::Gauge(g) = &e.slot {
                    return g.clone();
                }
            }
        }
        let g = Gauge::default();
        entries.push(Entry {
            name,
            help,
            label: None,
            slot: Slot::Gauge(g.clone()),
        });
        g
    }

    /// Get or create the histogram `name` (buckets [`BUCKET_BOUNDS_NS`]).
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        let mut entries = self.entries();
        for e in entries.iter() {
            if e.name == name && e.label.is_none() {
                if let Slot::Histogram(h) = &e.slot {
                    return h.clone();
                }
            }
        }
        let h = Histogram::default();
        entries.push(Entry {
            name,
            help,
            label: None,
            slot: Slot::Histogram(h.clone()),
        });
        h
    }

    /// Read one counter/gauge value by `(name, label)` — test/diagnostic
    /// accessor; returns `None` for unknown names and histograms.
    pub fn value(&self, name: &str, label: Option<(&str, &str)>) -> Option<u64> {
        let entries = self.entries();
        let e = entries
            .iter()
            .find(|e| e.name == name && e.label.map(|(k, v)| (k, v)) == label)?;
        match &e.slot {
            Slot::Counter(c) => Some(c.get()),
            Slot::Gauge(g) => Some(g.get()),
            Slot::Histogram(_) => None,
        }
    }

    /// A flattened `(series, value)` snapshot of every counter and gauge
    /// (histograms contribute their `_count`), for tests asserting
    /// monotonicity under concurrent writers. Per-series values are
    /// atomic loads — torn-free and monotone for counters.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let entries = self.entries();
        let mut out = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            let series = match e.label {
                Some((k, v)) => format!("{}{{{k}=\"{v}\"}}", e.name),
                None => e.name.to_string(),
            };
            let value = match &e.slot {
                Slot::Counter(c) => c.get(),
                Slot::Gauge(g) => g.get(),
                Slot::Histogram(h) => h.count(),
            };
            out.push((series, value));
        }
        out
    }

    /// Record that the flight-recorder scraper sampled this registry at
    /// trace-clock millisecond `t_ms` (see [`crate::trace::now_ns`]).
    pub fn note_scrape(&self, t_ms: u64) {
        self.last_scrape_ms
            .store(t_ms.saturating_add(1), Ordering::Relaxed);
    }

    /// Trace-clock ms of the latest scrape, `None` when no background
    /// scraper has ever sampled this registry.
    pub fn last_scrape_ms(&self) -> Option<u64> {
        match self.last_scrape_ms.load(Ordering::Relaxed) {
            0 => None,
            v => Some(v - 1),
        }
    }

    /// A typed snapshot of every series — the flight recorder's scrape
    /// entry point. Same series keys and ordering as [`snapshot`], but
    /// histograms carry their full bucket state instead of collapsing
    /// to `_count`.
    ///
    /// [`snapshot`]: Registry::snapshot
    pub fn sample(&self) -> Vec<SeriesSample> {
        let entries = self.entries();
        let mut out = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            let series = match e.label {
                Some((k, v)) => format!("{}{{{k}=\"{v}\"}}", e.name),
                None => e.name.to_string(),
            };
            let value = match &e.slot {
                Slot::Counter(c) => SampleValue::Counter(c.get()),
                Slot::Gauge(g) => SampleValue::Gauge(g.get()),
                Slot::Histogram(h) => SampleValue::Histogram(h.snapshot()),
            };
            out.push(SeriesSample { series, value });
        }
        out
    }

    /// Render every metric in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers per metric name, then one sample per
    /// series (histograms expand to cumulative `_bucket{le=…}` samples
    /// plus `_sum`/`_count`). When a flight-recorder scraper has sampled
    /// this registry, the dump leads with a free-form scrape-age comment
    /// (`parse_prometheus` skips non-TYPE comments by design).
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries();
        let mut out = String::new();
        if let Some(t) = self.last_scrape_ms() {
            let now_ms = crate::trace::now_ns() / 1_000_000;
            out.push_str(&format!(
                "# mq-scrape t_ms={t} age_ms={}\n",
                now_ms.saturating_sub(t)
            ));
        }
        let mut rendered: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if rendered.contains(&e.name) {
                continue;
            }
            rendered.push(e.name);
            let kind = match &e.slot {
                Slot::Counter(_) => "counter",
                Slot::Gauge(_) => "gauge",
                Slot::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            out.push_str(&format!("# TYPE {} {kind}\n", e.name));
            for s in entries.iter().filter(|s| s.name == e.name) {
                match &s.slot {
                    Slot::Counter(c) => match s.label {
                        Some((k, v)) => {
                            out.push_str(&format!("{}{{{k}=\"{v}\"}} {}\n", s.name, c.get()))
                        }
                        None => out.push_str(&format!("{} {}\n", s.name, c.get())),
                    },
                    Slot::Gauge(g) => out.push_str(&format!("{} {}\n", s.name, g.get())),
                    Slot::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, c) in snap.buckets.iter().enumerate() {
                            cum += c;
                            match BUCKET_BOUNDS_NS.get(i) {
                                Some(b) => out
                                    .push_str(&format!("{}_bucket{{le=\"{b}\"}} {cum}\n", s.name)),
                                None => out
                                    .push_str(&format!("{}_bucket{{le=\"+Inf\"}} {cum}\n", s.name)),
                            }
                        }
                        out.push_str(&format!("{}_sum {}\n", s.name, snap.sum_ns));
                        out.push_str(&format!("{}_count {}\n", s.name, snap.count));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = Registry::new();
        let a = reg.counter("mq_test_total", "test");
        let b = reg.counter("mq_test_total", "test");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.value("mq_test_total", None), Some(3));
    }

    #[test]
    fn labeled_series_are_distinct() {
        let reg = Registry::new();
        let a = reg.counter_labeled("mq_test_total", "test", Some(("site", "a")));
        let b = reg.counter_labeled("mq_test_total", "test", Some(("site", "b")));
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(reg.value("mq_test_total", Some(("site", "a"))), Some(2));
        assert_eq!(reg.value("mq_test_total", Some(("site", "b"))), Some(1));
        // One HELP/TYPE header, two samples.
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE mq_test_total").count(), 1);
        assert!(text.contains("mq_test_total{site=\"a\"} 2"));
        assert!(text.contains("mq_test_total{site=\"b\"} 1"));
    }

    #[test]
    fn gauge_saturates_at_zero() {
        let g = Gauge::default();
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_quantiles_walk_buckets() {
        let h = Histogram::default();
        for _ in 0..98 {
            h.observe_ns(500); // ≤ 1µs bucket
        }
        h.observe_ns(2_000_000); // ≤ 4ms bucket
        h.observe_ns(10_000_000_000); // overflow
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.5), 1_000);
        assert_eq!(h.quantile_ns(0.98), 1_000);
        assert_eq!(h.quantile_ns(0.99), 4_000_000);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
    }

    #[test]
    fn typed_sample_carries_full_histogram_state() {
        let reg = Registry::new();
        let c = reg.counter_labeled("mq_test_total", "test", Some(("site", "a")));
        let h = reg.histogram("mq_test_ns", "test");
        c.add(7);
        h.observe_ns(500);
        h.observe_ns(2_000_000);
        let samples = reg.sample();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].series, "mq_test_total{site=\"a\"}");
        assert!(matches!(samples[0].value, SampleValue::Counter(7)));
        match &samples[1].value {
            SampleValue::Histogram(snap) => {
                assert_eq!(snap.count, 2);
                assert_eq!(snap.sum_ns, 2_000_500);
                assert_eq!(snap.buckets[0], 1);
            }
            other => panic!("expected histogram sample, got {other:?}"),
        }
    }

    #[test]
    fn scrape_age_comment_appears_once_noted() {
        let reg = Registry::new();
        reg.counter("mq_test_total", "test");
        assert_eq!(reg.last_scrape_ms(), None);
        assert!(!reg.render_prometheus().contains("# mq-scrape"));
        reg.note_scrape(0); // t_ms 0 is a valid scrape instant
        assert_eq!(reg.last_scrape_ms(), Some(0));
        let text = reg.render_prometheus();
        assert!(text.starts_with("# mq-scrape t_ms=0 age_ms="), "{text}");
        // The scrape comment must not break the strict parser.
        crate::expo::parse_prometheus(&text).expect("scrape comment is free-form");
    }

    #[test]
    fn snapshot_quantiles_work_on_deltas() {
        let mut snap = HistogramSnapshot::default();
        snap.buckets[0] = 9; // ≤ 1µs
        snap.buckets[5] = 1; // ≤ 1ms
        snap.count = 10;
        assert_eq!(snap.quantile_ns(0.5), 1_000);
        assert_eq!(snap.quantile_ns(0.99), 1_000_000);
        assert_eq!(HistogramSnapshot::default().quantile_ns(0.99), 0);
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("mq_test_ns", "test");
        h.observe_ns(500);
        h.observe_ns(2_000);
        let text = reg.render_prometheus();
        assert!(text.contains("mq_test_ns_bucket{le=\"1000\"} 1"));
        assert!(text.contains("mq_test_ns_bucket{le=\"4000\"} 2"));
        assert!(text.contains("mq_test_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("mq_test_ns_sum 2500"));
        assert!(text.contains("mq_test_ns_count 2"));
    }
}
