//! Database constants.
//!
//! The paper's databases range over a countable domain `U` of constants
//! (§2.1). We represent a constant as either a small integer or an interned
//! symbol; both fit in 8 bytes, so a tuple is a flat `[Value]` slice.

use crate::symbol::{Symbol, SymbolTable};
use std::fmt;

/// A single database constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer constant (used heavily by generators and reductions).
    Int(i64),
    /// An interned string constant (used by named data such as Figure 1).
    Sym(Symbol),
}

impl Value {
    /// Convenience constructor for integer values.
    #[inline]
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Sym(_) => None,
        }
    }

    /// Returns the symbol payload if this is a [`Value::Sym`].
    #[inline]
    pub fn as_sym(self) -> Option<Symbol> {
        match self {
            Value::Sym(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Render the value using `symbols` to resolve interned strings.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Value, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Value::Int(v) => write!(f, "{v}"),
                    Value::Sym(s) => write!(f, "{}", self.1.resolve(*s)),
                }
            }
        }
        D(self, symbols)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Sym(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Sym(s)
    }
}

/// A tuple of constants, stored as a boxed slice to keep rows at two words.
pub type Tuple = Box<[Value]>;

/// Build a tuple from integer literals; handy in tests and generators.
pub fn ints(vals: &[i64]) -> Tuple {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_is_small() {
        // Two-word tuples rely on `Value` staying pointer-sized-ish.
        assert!(std::mem::size_of::<Value>() <= 16);
    }

    #[test]
    fn accessors() {
        let mut t = SymbolTable::new();
        let s = t.intern("a");
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_sym(), None);
        assert_eq!(Value::Sym(s).as_sym(), Some(s));
        assert_eq!(Value::Sym(s).as_int(), None);
    }

    #[test]
    fn display_resolves_symbols() {
        let mut t = SymbolTable::new();
        let s = t.intern("Omnitel");
        assert_eq!(Value::Sym(s).display(&t).to_string(), "Omnitel");
        assert_eq!(Value::Int(42).display(&t).to_string(), "42");
    }

    #[test]
    fn ints_builder() {
        let tup = ints(&[1, 2, 3]);
        assert_eq!(tup.len(), 3);
        assert_eq!(tup[1], Value::Int(2));
    }
}
