//! Exact rational arithmetic for plausibility indices and thresholds.
//!
//! Indices are ratios of tuple counts and must be compared *exactly*
//! against user thresholds: the NP^PP reduction of Theorem 3.28 sets the
//! threshold to `(k'-1)/2^h`, where an off-by-one-ULP float comparison
//! would flip the answer. The paper requires thresholds to be "finitely
//! represented rationals" — [`Frac`] is that representation.

use std::cmp::Ordering;
use std::fmt;

/// A non-negative rational `num/den` with `den > 0`, kept in lowest terms.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frac {
    num: u64,
    den: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Frac {
    /// Zero.
    pub const ZERO: Frac = Frac { num: 0, den: 1 };
    /// One.
    pub const ONE: Frac = Frac { num: 1, den: 1 };

    /// Build `num/den`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den);
        Frac {
            num: num / g,
            den: den / g,
        }
    }

    /// `0/1` if `den == 0`, else `num/den` — matching Definition 2.6's
    /// convention that an empty numerator yields fraction 0 and the indices'
    /// treatment of empty joins.
    pub fn ratio_or_zero(num: u64, den: u64) -> Self {
        if den == 0 {
            Frac::ZERO
        } else {
            Frac::new(num, den)
        }
    }

    /// Numerator (lowest terms).
    pub fn num(self) -> u64 {
        self.num
    }

    /// Denominator (lowest terms).
    pub fn den(self) -> u64 {
        self.den
    }

    /// Value as `f64` (display / plotting only — never for comparisons).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `⌊self · n⌋` — used by the certificate of Theorem 3.24, which guesses
    /// `⌊k·|B|⌋ + 1` witnesses.
    pub fn floor_mul(self, n: u64) -> u64 {
        ((self.num as u128 * n as u128) / self.den as u128) as u64
    }

    /// Whether the fraction lies in `[0, 1]`.
    pub fn is_probability(self) -> bool {
        self.num <= self.den
    }
}

impl PartialOrd for Frac {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frac {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiply in u128: no overflow for u64 operands.
        let lhs = self.num as u128 * other.den as u128;
        let rhs = other.num as u128 * self.den as u128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error parsing a [`Frac`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFracError(String);

impl fmt::Display for ParseFracError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fraction: {}", self.0)
    }
}

impl std::error::Error for ParseFracError {}

impl std::str::FromStr for Frac {
    type Err = ParseFracError;

    /// Accepts `a/b`, integers (`0`, `1`), and decimals (`0.93` becomes
    /// `93/100` exactly).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let err = || ParseFracError(s.to_string());
        if let Some((a, b)) = s.split_once('/') {
            let num: u64 = a.trim().parse().map_err(|_| err())?;
            let den: u64 = b.trim().parse().map_err(|_| err())?;
            if den == 0 {
                return Err(err());
            }
            return Ok(Frac::new(num, den));
        }
        if let Some((whole, frac)) = s.split_once('.') {
            let whole: u64 = if whole.is_empty() {
                0
            } else {
                whole.parse().map_err(|_| err())?
            };
            if frac.is_empty() || frac.len() > 18 || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err());
            }
            let digits: u64 = frac.parse().map_err(|_| err())?;
            let scale = 10u64.pow(frac.len() as u32);
            let num = whole
                .checked_mul(scale)
                .and_then(|w| w.checked_add(digits))
                .ok_or_else(err)?;
            return Ok(Frac::new(num, scale));
        }
        let num: u64 = s.parse().map_err(|_| err())?;
        Ok(Frac::new(num, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let f = Frac::new(6, 8);
        assert_eq!((f.num(), f.den()), (3, 4));
        assert_eq!(Frac::new(0, 5), Frac::ZERO);
    }

    #[test]
    fn ordering_is_exact() {
        // 1/3 < 0.333333334 as rationals
        let third = Frac::new(1, 3);
        let approx = Frac::new(333_333_334, 1_000_000_000);
        assert!(third < approx);
        assert!(Frac::new(2, 4) == Frac::new(1, 2));
        // large cross-multiplication exercising u128 path
        let a = Frac::new(u64::MAX - 1, u64::MAX);
        let b = Frac::ONE;
        assert!(a < b);
    }

    #[test]
    fn floor_mul() {
        let k = Frac::new(93, 100);
        assert_eq!(k.floor_mul(100), 93);
        assert_eq!(k.floor_mul(10), 9);
        assert_eq!(Frac::ZERO.floor_mul(1000), 0);
    }

    #[test]
    fn ratio_or_zero_handles_empty_join() {
        assert_eq!(Frac::ratio_or_zero(3, 0), Frac::ZERO);
        assert_eq!(Frac::ratio_or_zero(3, 4), Frac::new(3, 4));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn new_rejects_zero_den() {
        let _ = Frac::new(1, 0);
    }

    #[test]
    fn probability_check() {
        assert!(Frac::new(1, 1).is_probability());
        assert!(Frac::new(0, 7).is_probability());
        assert!(!Frac::new(7, 3).is_probability());
    }

    #[test]
    fn parse_fraction_forms() {
        let parse = |s: &str| s.parse::<Frac>();
        assert_eq!(parse("1/2").unwrap(), Frac::new(1, 2));
        assert_eq!(parse(" 3 / 4 ").unwrap(), Frac::new(3, 4));
        assert_eq!(parse("0.93").unwrap(), Frac::new(93, 100));
        assert_eq!(parse(".5").unwrap(), Frac::new(1, 2));
        assert_eq!(parse("0").unwrap(), Frac::ZERO);
        assert_eq!(parse("1").unwrap(), Frac::ONE);
        assert!(parse("1/0").is_err());
        assert!(parse("-1/2").is_err());
        assert!(parse("abc").is_err());
        assert!(parse("1.").is_err());
    }

    #[test]
    fn nppp_threshold_is_exact() {
        // (k'-1)/2^h with h = 40: far beyond f64-safe integer comparisons
        // when embedded in larger arithmetic.
        let h = 40u32;
        let kp = 1_099_511_627_776u64 / 3; // some k'
        let k = Frac::new(kp - 1, 1u64 << h);
        let just_above = Frac::new(kp, 1u64 << h);
        assert!(k < just_above);
        assert!(Frac::new(kp - 1, 1u64 << h) == k);
    }
}
