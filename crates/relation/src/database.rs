//! Databases: a finite domain plus a collection of named relations (§2.1).

use crate::relation::Relation;
use crate::symbol::{Symbol, SymbolTable};
use crate::value::{Tuple, Value};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Identifier of a relation inside a [`Database`], stable across lookups.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

impl RelId {
    /// Raw index into the database's relation list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A database instance `DB = (D, R1, ..., Rn)`.
///
/// The active domain `D` is derived from the stored tuples; [`Database`]
/// additionally owns the [`SymbolTable`] used to intern string constants so
/// that values can be rendered back to text.
#[derive(Clone, Default)]
pub struct Database {
    symbols: SymbolTable,
    relations: Vec<Relation>,
    by_name: HashMap<String, RelId>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string constant.
    pub fn sym(&mut self, name: &str) -> Value {
        Value::Sym(self.symbols.intern(name))
    }

    /// Access the symbol table (for display).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Resolve a symbol to its string.
    pub fn resolve(&self, s: Symbol) -> &str {
        self.symbols.resolve(s)
    }

    /// Add an empty relation; returns its id.
    ///
    /// # Panics
    /// Panics if a relation with the same name already exists.
    pub fn add_relation(&mut self, name: impl Into<String>, arity: usize) -> RelId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "relation `{name}` already exists"
        );
        let id = RelId(u32::try_from(self.relations.len()).expect("too many relations"));
        self.by_name.insert(name.clone(), id);
        self.relations.push(Relation::new(name, arity));
        id
    }

    /// Add a relation with the given rows.
    pub fn add_relation_with_rows(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        rows: Vec<Tuple>,
    ) -> RelId {
        let id = self.add_relation(name, arity);
        for row in rows {
            self.relations[id.index()].insert(row);
        }
        id
    }

    /// Insert a tuple into an existing relation; returns `true` if new.
    pub fn insert(&mut self, rel: RelId, row: Tuple) -> bool {
        self.relations[rel.index()].insert(row)
    }

    /// Look up a relation id by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Access a relation by id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Mutable access to a relation by id (used by semijoin reduction).
    pub fn relation_mut(&mut self, id: RelId) -> &mut Relation {
        &mut self.relations[id.index()]
    }

    /// Access a relation by name.
    ///
    /// # Panics
    /// Panics if no relation has that name.
    pub fn rel(&self, name: &str) -> &Relation {
        let id = self
            .rel_id(name)
            .unwrap_or_else(|| panic!("no relation named `{name}`"));
        self.relation(id)
    }

    /// All relation ids, in creation order.
    pub fn rel_ids(&self) -> impl ExactSizeIterator<Item = RelId> {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// All relations, in creation order.
    pub fn relations(&self) -> impl ExactSizeIterator<Item = &Relation> {
        self.relations.iter()
    }

    /// Number of relations `n`.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across relations (a size measure for data
    /// complexity experiments).
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Size `d` of the largest relation (the `d` of Theorem 4.12).
    pub fn max_relation_size(&self) -> usize {
        self.relations.iter().map(|r| r.len()).max().unwrap_or(0)
    }

    /// Maximum arity `b` over all relations.
    pub fn max_arity(&self) -> usize {
        self.relations.iter().map(|r| r.arity()).max().unwrap_or(0)
    }

    /// The active domain: every constant appearing in some tuple.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for rel in &self.relations {
            for row in rel.rows() {
                dom.extend(row.iter().copied());
            }
        }
        dom
    }

    /// Render the database as text tables (for examples and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for rel in &self.relations {
            out.push_str(&format!("{} (arity {}):\n", rel.name(), rel.arity()));
            for row in rel.rows() {
                let cells: Vec<String> = row
                    .iter()
                    .map(|v| v.display(&self.symbols).to_string())
                    .collect();
                out.push_str(&format!("  ({})\n", cells.join(", ")));
            }
        }
        out
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.relations.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ints;

    #[test]
    fn add_and_lookup() {
        let mut db = Database::new();
        let e = db.add_relation("e", 2);
        db.insert(e, ints(&[1, 2]));
        assert_eq!(db.rel("e").len(), 1);
        assert_eq!(db.rel_id("e"), Some(e));
        assert_eq!(db.rel_id("missing"), None);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_name_panics() {
        let mut db = Database::new();
        db.add_relation("e", 2);
        db.add_relation("e", 3);
    }

    #[test]
    fn size_measures() {
        let mut db = Database::new();
        db.add_relation_with_rows("a", 1, vec![ints(&[1]), ints(&[2])]);
        db.add_relation_with_rows("b", 3, vec![ints(&[1, 2, 3])]);
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.max_relation_size(), 2);
        assert_eq!(db.max_arity(), 3);
    }

    #[test]
    fn active_domain_collects_constants() {
        let mut db = Database::new();
        let v = db.sym("x");
        db.add_relation_with_rows("a", 2, vec![vec![v, Value::Int(7)].into_boxed_slice()]);
        let dom = db.active_domain();
        assert_eq!(dom.len(), 2);
        assert!(dom.contains(&v));
        assert!(dom.contains(&Value::Int(7)));
    }

    #[test]
    fn symbols_render() {
        let mut db = Database::new();
        let v = db.sym("Omnitel");
        db.add_relation_with_rows("ca", 1, vec![vec![v].into_boxed_slice()]);
        let text = db.render();
        assert!(text.contains("Omnitel"));
        assert!(text.contains("ca (arity 1)"));
    }
}
